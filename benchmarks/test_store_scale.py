"""Columnar sorted-run storage vs the dict layout at million-triple scale.

The storage tentpole's acceptance gate.  A synthetic statistical KG —
observations with a type triple, four dimension links into member pools
of very different cardinalities, and two measure literals — is ingested
into both physical layouts, then three things are measured:

* **scan throughput** — the IndexScan workhorse: delivering every
  ``(s, o)`` row from ``predicate_pairs(p)`` for every dimension
  predicate.  Columnar runs answer this with a contiguous column zip;
  the dict layout walks a nested hash.
* **join throughput** — the IndexScan → NestedProbe shape behind every
  REOLAP candidate: an outer scan over one dimension joined with an
  inner ``scan_objects(s, p)`` probe per row.
* **bootstrap** — ``Graph.load_snapshot`` (mmap, lazy term decode)
  against re-ingesting the same triples, which is what every server
  start used to cost.

Result equivalence across layouts is asserted before any timing gate.
Scan and join carry a hard 1.5x floor (regression trip-wire) and a 3x
advisory target; snapshot bootstrap carries a hard 10x floor.  Peak /
per-layout RSS figures are reported in ``BENCH_store.json``, not gated.

Scale is environment-tunable so CI can run a reduced gate quickly::

    REPRO_BENCH_STORE_OBS=100000 pytest benchmarks/test_store_scale.py
"""

from __future__ import annotations

import gc
import os
import resource
import time
import warnings
from collections import deque

from repro.rdf import IRI, Literal
from repro.rdf.triple import Triple
from repro.store import Graph

from .helpers import emit, emit_json, fmt_ms, format_table

N_OBSERVATIONS = int(os.environ.get("REPRO_BENCH_STORE_OBS", "1000000"))
N_REPETITIONS = int(os.environ.get("REPRO_BENCH_STORE_REPS", "3"))
#: Advisory target — a shortfall emits a warning, not a failure.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_STORE_MIN_SPEEDUP", "3.0"))
#: Hard floor for scan and join — only a real regression dips under it.
HARD_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_STORE_HARD_MIN_SPEEDUP", "1.5"))
#: Hard floor for snapshot load vs re-ingest.
HARD_MIN_BOOTSTRAP = float(os.environ.get("REPRO_BENCH_STORE_HARD_MIN_BOOTSTRAP", "10.0"))

NS = "http://example.org/store-bench/"
TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
OBSERVATION = IRI(NS + "Observation")

#: (predicate, pool size) per dimension — cardinalities spanning the
#: range real cubes show, from a handful of regions to entity-like ids.
DIMENSIONS = [
    (IRI(NS + "dim/region"), 20),
    (IRI(NS + "dim/product"), 400),
    (IRI(NS + "dim/partner"), 5000),
    (IRI(NS + "dim/site"), 50000),
]
MEASURES = [IRI(NS + "measure/amount"), IRI(NS + "measure/weight")]
TRIPLES_PER_OBSERVATION = 1 + len(DIMENSIONS) + len(MEASURES)


def synth_triples(n_observations: int) -> list[Triple]:
    """A deterministic observation stream with shared member/literal pools."""
    pools = [
        [IRI(f"{predicate.value}/m{i}") for i in range(size)]
        for predicate, size in DIMENSIONS
    ]
    amounts = [Literal(str(i)) for i in range(997)]
    weights = [Literal(f"{i / 7:.3f}") for i in range(1009)]
    triples: list[Triple] = []
    append = triples.append
    for i in range(n_observations):
        subject = IRI(f"{NS}obs/{i}")
        append(Triple(subject, TYPE, OBSERVATION))
        for (predicate, _size), pool in zip(DIMENSIONS, pools):
            append(Triple(subject, predicate, pool[(i * 2654435761) % len(pool)]))
        append(Triple(subject, MEASURES[0], amounts[i % len(amounts)]))
        append(Triple(subject, MEASURES[1], weights[i % len(weights)]))
    return triples


def _rss_kb() -> int:
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    return 0


def _ingest(layout: str, triples) -> tuple[Graph, float, int]:
    """Build a graph of the given layout; returns (graph, seconds, rss_kb)."""
    gc.collect()
    before = _rss_kb()
    start = time.perf_counter()
    graph = Graph(layout=layout)
    graph.add_all(triples)
    index = graph.triple_index
    if hasattr(index, "flush"):
        index.flush()  # settle the delta: scans measure steady state
    elapsed = time.perf_counter() - start
    gc.collect()
    return graph, elapsed, _rss_kb() - before


def _scan_rows(index, predicate_ids) -> int:
    """Untimed equivalence check: materialize every (s, o) pair."""
    rows = 0
    for pid in predicate_ids:
        rows += len(list(index.predicate_pairs(pid)))
    return rows


def _scan_workload(index, predicate_ids) -> None:
    """IndexScan emulation: deliver every (s, o) row per dimension.

    Rows are drained at C speed (``deque(..., maxlen=0)``) so the gate
    measures the storage layer's per-row delivery cost, not the
    layout-neutral cost of holding four million result tuples alive at
    once.  Row counts are verified by ``_scan_rows`` outside the timed
    region; downstream-materialization behaviour is covered by the join
    workload and the operator-pipeline gate.
    """
    for pid in predicate_ids:
        deque(index.predicate_pairs(pid), maxlen=0)


def _join_workload(index, outer_pid: int, inner_pid: int) -> int:
    """IndexScan → NestedProbe emulation over two dimension predicates."""
    scan_objects = index.scan_objects
    out = []
    append = out.append
    for s, o in index.predicate_pairs(outer_pid):
        for o2 in scan_objects(s, inner_pid):
            append((s, o, o2))
    return len(out)


def _best(fn, reps: int) -> tuple[object, float]:
    best = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_columnar_store_scale(benchmark, tmp_path):
    triples = synth_triples(N_OBSERVATIONS)
    n_triples = len(triples)
    assert n_triples == N_OBSERVATIONS * TRIPLES_PER_OBSERVATION

    columnar, columnar_ingest_s, columnar_rss_kb = _ingest("columnar", triples)
    dict_graph, dict_ingest_s, dict_rss_kb = _ingest("dict", triples)

    # Equivalence before any timing: same size, same per-predicate catalog.
    assert len(columnar) == len(dict_graph) == n_triples
    for predicate, _size in DIMENSIONS:
        assert columnar.predicate_stats(predicate) == dict_graph.predicate_stats(predicate)

    dims = [predicate for predicate, _size in DIMENSIONS]
    col_index = columnar.triple_index
    dict_index = dict_graph.triple_index
    col_ids = [columnar.term_dictionary.lookup(p) for p in dims]
    dict_ids = [dict_graph.term_dictionary.lookup(p) for p in dims]

    expected_rows = N_OBSERVATIONS * len(dims)
    assert _scan_rows(col_index, col_ids) == expected_rows
    assert _scan_rows(dict_index, dict_ids) == expected_rows

    # The source triple list (~7M Triple objects) has served its purpose;
    # free it so timed regions see only the layouts under test, and keep
    # the collector quiet while timing — gen2 scans over a multi-GB heap
    # otherwise dominate sub-second workloads (pytest-benchmark applies
    # the same hygiene via its own ``disable_gc`` calibration).
    del triples
    gc.collect()
    gc.disable()
    try:
        _, col_scan_s = _best(
            lambda: _scan_workload(col_index, col_ids), N_REPETITIONS
        )
        _, dict_scan_s = _best(
            lambda: _scan_workload(dict_index, dict_ids), N_REPETITIONS
        )

        col_join_rows, col_join_s = _best(
            lambda: _join_workload(col_index, col_ids[0], col_ids[2]),
            N_REPETITIONS,
        )
        dict_join_rows, dict_join_s = _best(
            lambda: _join_workload(dict_index, dict_ids[0], dict_ids[2]),
            N_REPETITIONS,
        )
    finally:
        gc.enable()
    assert col_join_rows == dict_join_rows == N_OBSERVATIONS

    benchmark.pedantic(
        _scan_workload, args=(col_index, col_ids), rounds=1, iterations=1
    )

    path = str(tmp_path / "store_bench.snap")
    _, save_s = _best(lambda: columnar.save_snapshot(path), 1)
    snapshot_bytes = os.path.getsize(path)
    loaded, load_s = _best(lambda: Graph.load_snapshot(path), N_REPETITIONS)
    assert len(loaded) == n_triples

    scan_speedup = dict_scan_s / col_scan_s
    join_speedup = dict_join_s / col_join_s
    bootstrap_speedup = columnar_ingest_s / load_s
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    emit(
        "store_scale",
        f"Columnar sorted runs vs dict layout "
        f"({N_OBSERVATIONS} observations, {n_triples} triples)",
        format_table(
            ["workload", "dict", "columnar", "speedup"],
            [
                ["ingest", f"{dict_ingest_s:.1f}s", f"{columnar_ingest_s:.1f}s",
                 f"{dict_ingest_s / columnar_ingest_s:.2f}x"],
                ["scan (rows/dim)", fmt_ms(dict_scan_s), fmt_ms(col_scan_s),
                 f"{scan_speedup:.2f}x"],
                ["join (scan+probe)", fmt_ms(dict_join_s), fmt_ms(col_join_s),
                 f"{join_speedup:.2f}x"],
                ["bootstrap", f"{columnar_ingest_s:.1f}s (re-ingest)",
                 fmt_ms(load_s) + " (mmap load)", f"{bootstrap_speedup:.0f}x"],
                ["resident set", f"{dict_rss_kb // 1024}MB",
                 f"{columnar_rss_kb // 1024}MB",
                 f"{dict_rss_kb / max(columnar_rss_kb, 1):.1f}x"],
            ],
        ),
    )
    emit_json(
        "store",
        {
            "benchmark": "store_scale",
            "observations": N_OBSERVATIONS,
            "triples": n_triples,
            "repetitions": N_REPETITIONS,
            "ingest_dict_s": dict_ingest_s,
            "ingest_columnar_s": columnar_ingest_s,
            "scan_dict_s": dict_scan_s,
            "scan_columnar_s": col_scan_s,
            "scan_speedup": scan_speedup,
            "join_dict_s": dict_join_s,
            "join_columnar_s": col_join_s,
            "join_speedup": join_speedup,
            "snapshot_save_s": save_s,
            "snapshot_load_s": load_s,
            "snapshot_bytes": snapshot_bytes,
            "bootstrap_speedup": bootstrap_speedup,
            "rss_dict_kb": dict_rss_kb,
            "rss_columnar_kb": columnar_rss_kb,
            "peak_rss_kb": peak_rss_kb,
            "advisory_target": MIN_SPEEDUP,
            "hard_floor": HARD_MIN_SPEEDUP,
            "hard_floor_bootstrap": HARD_MIN_BOOTSTRAP,
        },
    )

    assert scan_speedup >= HARD_MIN_SPEEDUP, (
        f"columnar scan only {scan_speedup:.2f}x faster "
        f"(hard floor: {HARD_MIN_SPEEDUP}x)"
    )
    assert join_speedup >= HARD_MIN_SPEEDUP, (
        f"columnar join only {join_speedup:.2f}x faster "
        f"(hard floor: {HARD_MIN_SPEEDUP}x)"
    )
    assert bootstrap_speedup >= HARD_MIN_BOOTSTRAP, (
        f"snapshot load only {bootstrap_speedup:.1f}x faster than re-ingest "
        f"(hard floor: {HARD_MIN_BOOTSTRAP}x)"
    )
    for label, speedup in (("scan", scan_speedup), ("join", join_speedup)):
        if speedup < MIN_SPEEDUP:
            warnings.warn(
                f"columnar {label} {speedup:.2f}x faster, under the "
                f"{MIN_SPEEDUP}x advisory target",
                stacklevel=2,
            )
