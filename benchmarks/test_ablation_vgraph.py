"""Ablation: the Virtual Schema Graph (Section 5.2's claimed optimization).

The paper's claim: the in-memory virtual graph lets query synthesis
produce BGPs "by depth-first traversals of this graph ... instead of
querying the triplestore".  Without it, every synthesis would have to
re-discover the hierarchy structure from the endpoint.  We compare:

* **with vgraph** — REOLAP against the bootstrapped structure (the system);
* **without vgraph** — the same synthesis but re-crawling the schema from
  the endpoint on every call (what a stateless implementation pays).

The shape: amortized synthesis with the virtual graph is an order of
magnitude faster than re-crawling per request.
"""

import statistics

from repro.core import VirtualSchemaGraph, reolap
from repro.qb import OBSERVATION_CLASS

from .conftest import sample_inputs
from .helpers import emit, fmt_ms, format_table, timed


def test_ablation_virtual_graph(benchmark, datasets, endpoints, vgraphs):
    endpoint = endpoints["eurostat"]
    vgraph = vgraphs["eurostat"]
    inputs = sample_inputs(datasets["eurostat"], 2, count=4, seed=4000)

    def with_vgraph():
        for example in inputs:
            reolap(endpoint, vgraph, example)

    def without_vgraph():
        for example in inputs:
            fresh = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
            reolap(endpoint, fresh, example)

    _, cached_time = timed(with_vgraph)
    _, naive_time = timed(without_vgraph)
    benchmark.pedantic(with_vgraph, rounds=1, iterations=1)

    emit(
        "ablation_vgraph",
        "Ablation: synthesis with vs without the virtual schema graph "
        f"({len(inputs)} inputs)",
        format_table(
            ["variant", "total time", "per input"],
            [
                ["with virtual graph", fmt_ms(cached_time), fmt_ms(cached_time / len(inputs))],
                ["re-crawl per synthesis", fmt_ms(naive_time), fmt_ms(naive_time / len(inputs))],
                ["speedup", f"{naive_time / cached_time:.1f}x", ""],
            ],
        ),
    )
    assert naive_time > cached_time * 2
