"""Table 2: the result set for the example ("Germany", "2014"-analogue).

Reproduces the paper's Table 2: given the running-example input with
"Germany" interpreted as Country of Destination, show the aggregate
applicant sums per destination country for the example year — with the
example row (Germany) guaranteed present.  The benchmark year is 2010
(the scaled Eurostat instance covers 2010-2013).
"""

from repro.core import reolap
from repro.rdf import Literal

from .helpers import emit, format_table

EXAMPLE = ("Germany", "2010")


def synthesize_and_run(endpoint, vgraph):
    queries = reolap(endpoint, vgraph, EXAMPLE)
    destination = next(
        q for q in queries
        if any("Destination" in d.label for d in q.dimensions)
    )
    results = endpoint.select(destination.to_select())
    return destination, results


def test_table2_example_result(benchmark, endpoints, vgraphs, datasets):
    endpoint, vgraph = endpoints["eurostat"], vgraphs["eurostat"]
    query, results = benchmark.pedantic(
        synthesize_and_run, args=(endpoint, vgraph), rounds=1, iterations=1
    )

    # Assemble the Table 2 view: destination label, year label, SUM for the
    # example's year only (the paper's table shows the 2014 slice), sorted
    # descending by the aggregate.
    kg = datasets["eurostat"]
    labels = {m.iri: m.label for m in kg.members_of("destination", "country")}
    labels.update({m.iri: m.label for m in kg.members_of("ref_period", "year")})
    year_var = next(v for v in query.group_variables if "year" in v.name)
    dest_var = next(v for v in query.group_variables if "destination" in v.name)
    sum_var = query.measures[0].alias("SUM")
    anchor_year = next(a.member for a in query.anchors if a.keyword == "2010")
    table_rows = []
    for row in results.rows:
        year = row[results.index_of(year_var)]
        if year != anchor_year:
            continue
        dest = row[results.index_of(dest_var)]
        total = row[results.index_of(sum_var)]
        table_rows.append([labels.get(dest, dest.local_name()),
                           labels.get(year, year.local_name()), int(total.lexical)])
    table_rows.sort(key=lambda r: -r[2])
    emit(
        "table2",
        'Table 2: resultset for ("Germany", "2010"), '
        '"Germany" as Country of Destination',
        format_table(["Country of Destination", "Year", "SUM(# Applicants)"],
                     table_rows[:12] + [["...", "...", "..."]]),
    )

    # The example row is present (containment) and the columns match the
    # paper's: destination x year x aggregated measure.
    assert query.anchor_row_indexes(results)
    destination_labels = [r[0] for r in table_rows]
    assert "Germany" in destination_labels
    assert all(r[1] == "2010" for r in table_rows)  # one year, as in Table 2
    assert len(destination_labels) == len(set(destination_labels)) > 1
