"""Figure 6: dataset sizes (a: observations, b: triples) and bootstrap (c).

Paper shapes to reproduce:

* (a, b) Eurostat and Production have comparable observation counts but
  Eurostat has roughly twice the triples (richer observation attributes);
  DBpedia has far fewer observations yet a high triples-per-observation
  ratio from its complex hierarchies.
* (c) bootstrap time is driven by schema complexity and store scan cost,
  not by the number of observations alone.
"""

import pytest

from repro.core import VirtualSchemaGraph
from repro.qb import OBSERVATION_CLASS

from .conftest import DATASET_NAMES
from .helpers import emit, fmt_ms, format_table, timed


def test_fig6ab_dataset_sizes(benchmark, datasets):
    def measure():
        return {
            name: (kg.n_observations, kg.n_triples)
            for name, kg in datasets.items()
        }

    sizes = benchmark(measure)
    rows = [
        [name, sizes[name][0], sizes[name][1],
         f"{sizes[name][1] / sizes[name][0]:.1f}"]
        for name in DATASET_NAMES
    ]
    emit(
        "fig6ab",
        "Figure 6a/b: observations and triples per dataset",
        format_table(["dataset", "observations", "triples", "triples/obs"], rows),
    )
    eurostat_density = sizes["eurostat"][1] / sizes["eurostat"][0]
    production_density = sizes["production"][1] / sizes["production"][0]
    dbpedia_density = sizes["dbpedia"][1] / sizes["dbpedia"][0]
    # Eurostat is denser than Production (paper: ~160M vs ~90M triples at
    # similar observation counts); DBpedia has the highest density of all
    # (hierarchy-heavy: ~20M triples for 541K observations).
    assert eurostat_density > production_density
    assert dbpedia_density > eurostat_density


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_fig6c_bootstrap_time(benchmark, name, endpoints):
    endpoint = endpoints[name]

    def bootstrap():
        return VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)

    vgraph = benchmark.pedantic(bootstrap, rounds=2, iterations=1, warmup_rounds=0)
    _, elapsed = timed(bootstrap)
    emit(
        f"fig6c_{name}",
        f"Figure 6c: bootstrap time — {name}",
        format_table(
            ["dataset", "levels", "members", "bootstrap"],
            [[name, vgraph.n_levels, vgraph.n_members, fmt_ms(elapsed)]],
        ),
    )
    assert vgraph.n_levels > 0
