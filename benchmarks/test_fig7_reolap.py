"""Figure 7: REOLAP synthesis time (a) and number of output queries (b).

Workload: 10 random example tuples per input size 1–4 per dataset,
sampled from actual dimension members (as in the paper).  Shapes to hold:

* (a) time grows with input size, and depends on the number of dimension
  members (|N_D|) rather than on the number of observations;
* (b) small inputs produce fewer than ~10 candidate queries on average;
  shared member pools (DBpedia) inflate the count.
"""

import statistics

import pytest

from repro.core import SynthesisReport, reolap
from repro.errors import SynthesisError

from .conftest import DATASET_NAMES, sample_inputs
from .helpers import emit, fmt_ms, format_table, timed

INPUT_SIZES = (1, 2, 3, 4)
INPUTS_PER_SIZE = 10

_series: dict[tuple[str, int], dict] = {}


def run_workload(endpoint, vgraph, inputs):
    """Synthesize every input; returns (per-input times, query counts)."""
    times, counts = [], []
    for example in inputs:
        report = SynthesisReport()

        def synthesize():
            try:
                return reolap(endpoint, vgraph, example, report=report)
            except SynthesisError:
                return []

        queries, elapsed = timed(synthesize)
        times.append(elapsed)
        counts.append(len(queries))
    return times, counts


@pytest.mark.parametrize("name", DATASET_NAMES)
@pytest.mark.parametrize("size", INPUT_SIZES)
def test_fig7_reolap(benchmark, name, size, datasets, endpoints, vgraphs):
    kg = datasets[name]
    inputs = sample_inputs(kg, size, count=INPUTS_PER_SIZE, seed=1000 + size)

    def workload():
        return run_workload(endpoints[name], vgraphs[name], inputs)

    times, counts = benchmark.pedantic(workload, rounds=1, iterations=1)
    _series[(name, size)] = {
        "mean_time": statistics.mean(times),
        "max_time": max(times),
        "mean_queries": statistics.mean(counts),
        "max_queries": max(counts),
    }
    assert all(c >= 0 for c in counts)

    if len(_series) == len(DATASET_NAMES) * len(INPUT_SIZES):
        _emit_series()


def _emit_series():
    rows_a, rows_b = [], []
    for name in DATASET_NAMES:
        for size in INPUT_SIZES:
            cell = _series[(name, size)]
            rows_a.append([name, size, fmt_ms(cell["mean_time"]), fmt_ms(cell["max_time"])])
            rows_b.append([name, size, f"{cell['mean_queries']:.1f}", cell["max_queries"]])
    emit(
        "fig7a",
        "Figure 7a: REOLAP running time vs input size (10 inputs each)",
        format_table(["dataset", "input size", "mean time", "max time"], rows_a),
    )
    emit(
        "fig7b",
        "Figure 7b: number of synthesized queries vs input size",
        format_table(["dataset", "input size", "mean #queries", "max #queries"], rows_b),
    )
    # Shape assertions: time grows with input size on every dataset...
    for name in DATASET_NAMES:
        assert (_series[(name, 4)]["mean_time"]
                > _series[(name, 1)]["mean_time"])
    # ...and small inputs stay below ~10 queries on average (Fig. 7b).
    for name in DATASET_NAMES:
        assert _series[(name, 1)]["mean_queries"] < 10
        assert _series[(name, 2)]["mean_queries"] < 10
