"""Id-space expression operators vs the term-space interpreter.

PR 10 retired the last expression-shaped compiler declines: BIND now
lowers to a register-program operator (minting pseudo-ids for computed
terms), and EXISTS/NOT EXISTS to a correlated semi/anti-join.  This
benchmark times the two workloads those shapes dominate, with **cold
caches** (fresh evaluators, no plan or result cache) so the measured gap
is pure execution:

* **BIND-heavy drill-down**: every observation joined to its dimension
  and measure, two chained BINDs deriving computed columns, and a FILTER
  over the derived value — the decorated drill-down REOLAP emits when a
  refinement adds computed columns.  The interpreter evaluates both
  expressions per solution over term-space Binding dicts; the compiled
  engine runs one register program per *distinct* input id and scatters.
* **NOT EXISTS filtered rollup**: a grouped SUM over observations that
  lack an audit flag — the Algorithm 1 candidate-elimination shape.  The
  interpreter re-evaluates the nested group per row; the compiled engine
  runs the inner pipeline once per batch and folds groups in id space.

Result equivalence and a conservative wall-clock floor are hard
assertions; the >= 3x acceptance target is advisory (a warning), because
best-of-N timing ratios are noisy under shared-CI runner contention and a
hard 3x gate would fail pipelines for reasons unrelated to the code.

Sizes and bars are environment-tunable so CI can re-run the gate quickly,
or enforce the full target on quiet machines::

    REPRO_BENCH_EXPR_OBS=20000 pytest benchmarks/test_expression_speedup.py
    REPRO_BENCH_EXPR_HARD_MIN_SPEEDUP=3.0 pytest benchmarks/test_expression_speedup.py
"""

from __future__ import annotations

import os
import time
import warnings

from repro.rdf.terms import IRI, Literal, XSD_INTEGER
from repro.rdf.triple import Triple
from repro.sparql import Evaluator, parse_query
from repro.store.graph import Graph

from .helpers import RESULTS_DIR, emit, emit_json, fmt_ms, format_table

N_OBSERVATIONS = int(os.environ.get("REPRO_BENCH_EXPR_OBS", "60000"))
N_REPETITIONS = int(os.environ.get("REPRO_BENCH_EXPR_REPS", "3"))
#: Advisory target — a shortfall emits a warning, not a failure.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_EXPR_MIN_SPEEDUP", "3.0"))
#: Hard floor — low enough that only a real regression (not runner
#: contention) can dip under it.
HARD_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_EXPR_HARD_MIN_SPEEDUP", "1.5"))

_EX = "http://example.org/cube/"
_REGION = IRI(_EX + "region")
_VALUE = IRI(_EX + "value")
_FLAGGED = IRI(_EX + "flagged")


def _flagged_cube(n_observations: int) -> Graph:
    """A star cube where ~1/4 of the observations carry an audit flag, so
    NOT EXISTS genuinely splits the rows.  The measure pool is small
    (1000 distinct literals) so the distinct-id expression tables pay
    off; deterministic modular mixing, no RNG.
    """
    graph = Graph()
    regions = [IRI(f"{_EX}region/R{i}") for i in range(20)]
    values = [
        Literal(str((i * 37) % 1000), datatype=XSD_INTEGER) for i in range(1000)
    ]
    flag = Literal("1", datatype=XSD_INTEGER)
    add = graph.add
    for i in range(n_observations):
        obs = IRI(f"{_EX}obs/{i}")
        add(Triple(obs, _REGION, regions[(i * 7919) % len(regions)]))
        add(Triple(obs, _VALUE, values[(i * 15485863) % len(values)]))
        if i % 4 == 0:
            add(Triple(obs, _FLAGGED, flag))
    return graph


BIND_QUERY = f"""
SELECT ?o ?region ?scaled ?adjusted
WHERE {{
  ?o <{_REGION.value}> ?region .
  ?o <{_VALUE.value}> ?v .
  BIND(?v * 3 AS ?scaled)
  BIND(?scaled + 100 AS ?adjusted)
  FILTER(?adjusted >= 600)
}}
"""

ROLLUP_QUERY = f"""
SELECT ?region (SUM(?v) AS ?total) (COUNT(?o) AS ?n)
WHERE {{
  ?o <{_REGION.value}> ?region .
  ?o <{_VALUE.value}> ?v .
  FILTER NOT EXISTS {{ ?o <{_FLAGGED.value}> ?f . }}
}}
GROUP BY ?region
"""


def _best_time(evaluator_factory, query, reps: int):
    """Best-of-N wall clock with a fresh evaluator per run (cold plans)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        evaluator = evaluator_factory()
        start = time.perf_counter()
        result = evaluator.select(query)
        best = min(best, time.perf_counter() - start)
    return result, best


def test_expression_operator_speedup(benchmark):
    graph = _flagged_cube(N_OBSERVATIONS)
    bind_query = parse_query(BIND_QUERY)
    rollup_query = parse_query(ROLLUP_QUERY)

    # The compiled paths must actually engage — otherwise this measures
    # nothing but the interpreter against itself.
    from repro.sparql.aggregator import compile_aggregate_ex
    from repro.sparql.operators import compile_where

    plan, reason = compile_where(graph, bind_query.where)
    assert plan is not None, reason
    agg_plan, agg_reason = compile_aggregate_ex(graph, rollup_query)
    assert agg_plan is not None, agg_reason

    bind_result, bind_time = _best_time(
        lambda: Evaluator(graph, compile=True), bind_query, N_REPETITIONS
    )
    bind_legacy, bind_legacy_time = _best_time(
        lambda: Evaluator(graph, compile=False), bind_query, N_REPETITIONS
    )
    rollup_result, rollup_time = _best_time(
        lambda: Evaluator(graph, compile=True), rollup_query, N_REPETITIONS
    )
    rollup_legacy, rollup_legacy_time = _best_time(
        lambda: Evaluator(graph, compile=False), rollup_query, N_REPETITIONS
    )
    benchmark.pedantic(
        Evaluator(graph, compile=True).select, args=(bind_query,),
        rounds=1, iterations=1,
    )

    # Equivalence first: the expression operators must not change semantics.
    assert bind_result == bind_legacy
    assert len(bind_result) > 0
    assert rollup_result == rollup_legacy
    # Region index is (i*7919) % 20 == (-i) % 20 and flags land on
    # i % 4 == 0, so regions with index % 4 == 0 are entirely flagged:
    # NOT EXISTS keeps 15 of the 20 groups.
    assert len(rollup_result) == 15

    bind_speedup = bind_legacy_time / bind_time
    rollup_speedup = rollup_legacy_time / rollup_time
    emit(
        "expression_speedup",
        f"Id-space expression operators vs term-space interpreter "
        f"({N_OBSERVATIONS} observations, cold cache)",
        format_table(
            ["query", "engine", "best time", "speedup"],
            [
                ["bind drill-down", "term-space", fmt_ms(bind_legacy_time), "1.0x"],
                ["bind drill-down", "compiled", fmt_ms(bind_time),
                 f"{bind_speedup:.1f}x"],
                ["not-exists rollup", "term-space", fmt_ms(rollup_legacy_time),
                 "1.0x"],
                ["not-exists rollup", "compiled", fmt_ms(rollup_time),
                 f"{rollup_speedup:.1f}x"],
            ],
        ),
    )
    json_path = emit_json(
        "expressions",
        {
            "benchmark": "expression_speedup",
            "observations": N_OBSERVATIONS,
            "repetitions": N_REPETITIONS,
            "bind_drilldown": {
                "compiled_best_s": bind_time,
                "legacy_best_s": bind_legacy_time,
                "speedup": bind_speedup,
                "result_rows": len(bind_result),
            },
            "not_exists_rollup": {
                "compiled_best_s": rollup_time,
                "legacy_best_s": rollup_legacy_time,
                "speedup": rollup_speedup,
                "result_rows": len(rollup_result),
            },
            "advisory_target": MIN_SPEEDUP,
            "hard_floor": HARD_MIN_SPEEDUP,
        },
    )
    assert json_path.exists()
    assert json_path == RESULTS_DIR / "BENCH_expressions.json"

    for label, speedup in (
        ("BIND drill-down", bind_speedup),
        ("NOT EXISTS rollup", rollup_speedup),
    ):
        assert speedup >= HARD_MIN_SPEEDUP, (
            f"{label} only {speedup:.2f}x faster (hard floor: "
            f"{HARD_MIN_SPEEDUP}x)"
        )
        if speedup < MIN_SPEEDUP:
            warnings.warn(
                f"{label} {speedup:.2f}x faster, under the {MIN_SPEEDUP}x "
                f"target — likely CI runner contention; re-run on a quiet "
                f"machine",
                stacklevel=2,
            )
