"""Batched execution vs tuple-at-a-time over the compiled id-space engine.

PR 9's vectorized layer (repro.sparql.vectorized) executes compiled
plans block-at-a-time: the driving IndexScan emits integer-array batches
straight from the columnar run, probes gather via searchsorted, numeric
filters compare whole columns, and aggregate accumulators fold
``np.unique`` summaries instead of row loops.  This benchmark times both
executors over the same compiled plans with **cold caches**, so the
measured gap is pure execution discipline:

* **group-by rollup**: COUNT(*)/SUM per region over every observation —
  the REOLAP disaggregate workload, where batched group partitioning and
  bulk folds dominate.
* **filtered drill-down**: join two dimensions and a measure, numeric
  FILTER over the value — the decorated-query shape, where batched
  probes and the vectorized comparison dominate.

A separate test measures morsel-driven scan parallelism (parallel=0 →
one worker per CPU) and only runs where it can mean anything: hosts
with at least 4 cores.

Result equivalence and a conservative wall-clock floor are hard
assertions; the >= 3x acceptance target is advisory (a warning) because
best-of-N ratios are noisy under shared-CI contention.  Sizes and bars
are environment-tunable::

    REPRO_BENCH_VEC_OBS=1000000 pytest benchmarks/test_vectorized_speedup.py
    REPRO_BENCH_VEC_HARD_MIN_SPEEDUP=3.0 pytest benchmarks/test_vectorized_speedup.py
"""

from __future__ import annotations

import os
import time
import warnings

import pytest

from repro.rdf.terms import IRI, Literal, XSD_INTEGER
from repro.rdf.triple import Triple
from repro.sparql import Evaluator, parse_query
from repro.store.graph import Graph

from .helpers import RESULTS_DIR, emit, emit_json, fmt_ms, format_table

N_OBSERVATIONS = int(os.environ.get("REPRO_BENCH_VEC_OBS", "120000"))
N_REPETITIONS = int(os.environ.get("REPRO_BENCH_VEC_REPS", "3"))
#: Advisory target — a shortfall emits a warning, not a failure.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_VEC_MIN_SPEEDUP", "3.0"))
#: Hard floor — low enough that only a real regression (not runner
#: contention) can dip under it.
HARD_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_VEC_HARD_MIN_SPEEDUP", "1.5"))
#: Morsel-parallel scan scaling targets (advisory / hard), measured only
#: on hosts with >= 4 cores.
MIN_SCALING = float(os.environ.get("REPRO_BENCH_VEC_MIN_SCALING", "2.0"))
HARD_MIN_SCALING = float(os.environ.get("REPRO_BENCH_VEC_HARD_MIN_SCALING", "1.3"))

_EX = "http://example.org/cube/"
_REGION = IRI(_EX + "region")
_MONTH = IRI(_EX + "month")
_VALUE = IRI(_EX + "value")


def _dense_cube(n_observations: int) -> Graph:
    """A star cube with every observation carrying a measure, flushed so
    the columnar runs are pure and the morsel driver engages.
    Deterministic modular mixing, no RNG.
    """
    graph = Graph()
    regions = [IRI(f"{_EX}region/R{i}") for i in range(20)]
    months = [IRI(f"{_EX}month/M{i:02d}") for i in range(12)]
    values = [
        Literal(str((i * 37) % 1000), datatype=XSD_INTEGER) for i in range(1000)
    ]
    add = graph.add
    for i in range(n_observations):
        obs = IRI(f"{_EX}obs/{i}")
        add(Triple(obs, _REGION, regions[(i * 7919) % len(regions)]))
        add(Triple(obs, _MONTH, months[(i * 104729) % len(months)]))
        add(Triple(obs, _VALUE, values[(i * 15485863) % len(values)]))
    graph.triple_index.flush()
    return graph


ROLLUP_QUERY = f"""
SELECT ?region (COUNT(*) AS ?n) (SUM(?v) AS ?total)
WHERE {{
  ?o <{_REGION.value}> ?region .
  ?o <{_VALUE.value}> ?v .
}}
GROUP BY ?region
"""

DRILLDOWN_QUERY = f"""
SELECT ?o ?region ?month ?v
WHERE {{
  ?o <{_REGION.value}> ?region .
  ?o <{_MONTH.value}> ?month .
  ?o <{_VALUE.value}> ?v .
  FILTER(?v >= 500)
}}
"""


def _best_time(evaluator_factory, query, reps: int):
    """Best-of-N wall clock with a fresh evaluator per run (cold plans)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        evaluator = evaluator_factory()
        start = time.perf_counter()
        result = evaluator.select(query)
        best = min(best, time.perf_counter() - start)
    return result, best


def test_vectorized_speedup(benchmark):
    graph = _dense_cube(N_OBSERVATIONS)
    rollup = parse_query(ROLLUP_QUERY)
    drilldown = parse_query(DRILLDOWN_QUERY)

    # The compiled engine must actually engage for both shapes —
    # otherwise this measures the interpreter against itself.
    from repro.sparql.aggregator import compile_aggregate_ex
    from repro.sparql.operators import compile_where

    agg_plan, reason = compile_aggregate_ex(graph, rollup)
    assert agg_plan is not None, reason
    where_plan, reason = compile_where(graph, drilldown.where)
    assert where_plan is not None, reason

    roll_vec, roll_vec_time = _best_time(
        lambda: Evaluator(graph, compile=True, vectorize=True),
        rollup, N_REPETITIONS,
    )
    roll_tuple, roll_tuple_time = _best_time(
        lambda: Evaluator(graph, compile=True, vectorize=False),
        rollup, N_REPETITIONS,
    )
    drill_vec, drill_vec_time = _best_time(
        lambda: Evaluator(graph, compile=True, vectorize=True),
        drilldown, N_REPETITIONS,
    )
    drill_tuple, drill_tuple_time = _best_time(
        lambda: Evaluator(graph, compile=True, vectorize=False),
        drilldown, N_REPETITIONS,
    )
    benchmark.pedantic(
        Evaluator(graph, compile=True, vectorize=True).select, args=(rollup,),
        rounds=1, iterations=1,
    )

    # Equivalence first: the batched executor must not change semantics.
    assert sorted(map(tuple, roll_vec.rows)) == sorted(map(tuple, roll_tuple.rows))
    assert len(roll_vec) == 20
    assert drill_vec == drill_tuple
    assert len(drill_vec) > 0

    roll_speedup = roll_tuple_time / roll_vec_time
    drill_speedup = drill_tuple_time / drill_vec_time
    emit(
        "vectorized_speedup",
        f"Batched execution vs tuple-at-a-time compiled plans "
        f"({N_OBSERVATIONS} observations, cold cache)",
        format_table(
            ["query", "executor", "best time", "speedup"],
            [
                ["group-by rollup", "tuple", fmt_ms(roll_tuple_time), "1.0x"],
                ["group-by rollup", "batched", fmt_ms(roll_vec_time),
                 f"{roll_speedup:.1f}x"],
                ["filtered drill-down", "tuple", fmt_ms(drill_tuple_time), "1.0x"],
                ["filtered drill-down", "batched", fmt_ms(drill_vec_time),
                 f"{drill_speedup:.1f}x"],
            ],
        ),
    )
    json_path = emit_json(
        "vectorized",
        {
            "benchmark": "vectorized_speedup",
            "observations": N_OBSERVATIONS,
            "repetitions": N_REPETITIONS,
            "rollup": {
                "batched_best_s": roll_vec_time,
                "tuple_best_s": roll_tuple_time,
                "speedup": roll_speedup,
                "result_rows": len(roll_vec),
            },
            "drilldown": {
                "batched_best_s": drill_vec_time,
                "tuple_best_s": drill_tuple_time,
                "speedup": drill_speedup,
                "result_rows": len(drill_vec),
            },
            "advisory_target": MIN_SPEEDUP,
            "hard_floor": HARD_MIN_SPEEDUP,
        },
    )
    assert json_path.exists()
    assert json_path == RESULTS_DIR / "BENCH_vectorized.json"

    for label, speedup in (
        ("group-by rollup", roll_speedup),
        ("filtered drill-down", drill_speedup),
    ):
        assert speedup >= HARD_MIN_SPEEDUP, (
            f"{label} only {speedup:.2f}x faster (hard floor: "
            f"{HARD_MIN_SPEEDUP}x)"
        )
        if speedup < MIN_SPEEDUP:
            warnings.warn(
                f"{label} {speedup:.2f}x faster, under the {MIN_SPEEDUP}x "
                f"target — likely CI runner contention; re-run on a quiet "
                f"machine",
                stacklevel=2,
            )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="morsel scaling needs >= 4 cores to mean anything",
)
def test_morsel_scaling(benchmark):
    graph = _dense_cube(N_OBSERVATIONS)
    drilldown = parse_query(DRILLDOWN_QUERY)

    serial, serial_time = _best_time(
        lambda: Evaluator(graph, compile=True, vectorize=True, parallel=1),
        drilldown, N_REPETITIONS,
    )
    parallel, parallel_time = _best_time(
        lambda: Evaluator(graph, compile=True, vectorize=True, parallel=0),
        drilldown, N_REPETITIONS,
    )
    benchmark.pedantic(
        Evaluator(graph, compile=True, vectorize=True, parallel=0).select,
        args=(drilldown,), rounds=1, iterations=1,
    )

    assert parallel == serial  # morsel merge must preserve row order

    scaling = serial_time / parallel_time
    emit(
        "morsel_scaling",
        f"Morsel-driven scan parallelism ({N_OBSERVATIONS} observations, "
        f"{os.cpu_count()} cores)",
        format_table(
            ["workers", "best time", "scaling"],
            [
                ["1", fmt_ms(serial_time), "1.0x"],
                [str(os.cpu_count()), fmt_ms(parallel_time), f"{scaling:.1f}x"],
            ],
        ),
    )
    emit_json(
        "morsel_scaling",
        {
            "benchmark": "morsel_scaling",
            "observations": N_OBSERVATIONS,
            "serial_best_s": serial_time,
            "parallel_best_s": parallel_time,
            "scaling": scaling,
            "advisory_target": MIN_SCALING,
            "hard_floor": HARD_MIN_SCALING,
        },
    )

    assert scaling >= HARD_MIN_SCALING, (
        f"morsel scan only {scaling:.2f}x faster with "
        f"{os.cpu_count()} workers (hard floor: {HARD_MIN_SCALING}x)"
    )
    if scaling < MIN_SCALING:
        warnings.warn(
            f"morsel scaling {scaling:.2f}x, under the {MIN_SCALING}x "
            f"target — likely CI runner contention",
            stacklevel=2,
        )
