"""Durability overhead: WAL-protected ingest vs plain in-memory ingest.

The durability tentpole's acceptance gate.  The same synthetic
observation stream as the storage benchmark is ingested twice —

* **WAL off** — a plain in-memory ``Graph`` (crash loses everything);
* **WAL on** — a ``DurableGraph`` in chunked batches (group commit:
  one log sync per ``add_all`` call, the fsync-batched policy).

The gate: WAL-on ingest must stay within **1.5x** of WAL-off at 100k
observations (700k triples).  Physical-fsync cost is hardware, not code,
so the gated run uses ``fsync=False`` — the full WAL protocol (encode,
frame, CRC, write, flush into the OS) minus the disk barrier; a
``fsync=True`` run is also reported, ungated, for the operator's eyes.

Checkpoint and recovery timings ride along in ``BENCH_durability.json``
(informational): snapshot dump cost, boot-from-snapshot cost, and WAL
tail replay rate.

Scale is environment-tunable so CI can run a reduced gate quickly::

    REPRO_BENCH_DUR_OBS=20000 pytest benchmarks/test_durability.py
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from repro.store import DurableGraph, Graph

from .helpers import emit, emit_json, fmt_ms, format_table
from .test_store_scale import TRIPLES_PER_OBSERVATION, synth_triples

N_OBSERVATIONS = int(os.environ.get("REPRO_BENCH_DUR_OBS", "100000"))
#: Triples per ``add_all`` call — one group-commit sync each.
CHUNK = int(os.environ.get("REPRO_BENCH_DUR_CHUNK", "4096"))
#: Hard ceiling on WAL-on / WAL-off ingest time.
MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_DUR_MAX_OVERHEAD", "1.5"))


def _chunks(items, size):
    for start in range(0, len(items), size):
        yield items[start : start + size]


def _ingest_plain(triples) -> tuple[Graph, float]:
    start = time.perf_counter()
    graph = Graph()
    for chunk in _chunks(triples, CHUNK):
        graph.add_all(chunk)
    return graph, time.perf_counter() - start


def _ingest_durable(triples, directory, fsync) -> tuple[DurableGraph, float]:
    start = time.perf_counter()
    graph = DurableGraph.open(directory, fsync=fsync)
    for chunk in _chunks(triples, CHUNK):
        graph.add_all(chunk)
    return graph, time.perf_counter() - start


def test_wal_ingest_overhead():
    triples = synth_triples(N_OBSERVATIONS)
    base = tempfile.mkdtemp(prefix="repro-dur-bench-")
    try:
        plain, plain_s = _ingest_plain(triples)
        durable, wal_s = _ingest_durable(
            triples, os.path.join(base, "nofsync"), fsync=False
        )
        assert len(durable) == len(plain)
        overhead = wal_s / plain_s

        # Real disk barriers, reported but not gated (hardware-bound).
        fsync_dir = os.path.join(base, "fsync")
        durable_f, fsync_s = _ingest_durable(triples, fsync_dir, fsync=True)
        assert len(durable_f) == len(plain)

        # Checkpoint: WAL tail -> snapshot generation, then prune.
        start = time.perf_counter()
        snapshot_path = durable.checkpoint()
        checkpoint_s = time.perf_counter() - start
        snapshot_mb = os.path.getsize(snapshot_path) / 1e6
        durable.close()
        durable_f.close()

        # Recovery split: snapshot-only boot vs WAL-tail replay.
        start = time.perf_counter()
        booted = DurableGraph.open(os.path.join(base, "nofsync"), fsync=False)
        boot_s = time.perf_counter() - start
        assert len(booted) == len(plain)
        assert booted.recovery.replayed_records == 0  # all in the snapshot
        booted.close()

        start = time.perf_counter()
        replayed = DurableGraph.open(fsync_dir, fsync=False)
        replay_s = time.perf_counter() - start
        n_records = replayed.recovery.replayed_records
        assert n_records == len(triples)  # never checkpointed: full replay
        assert len(replayed) == len(plain)
        replayed.close()

        rows = [
            ["WAL off (in-memory)", fmt_ms(plain_s), "1.00x", "-"],
            ["WAL on (group commit)", fmt_ms(wal_s), f"{overhead:.2f}x",
             f"gate <= {MAX_OVERHEAD:.1f}x"],
            ["WAL on + fsync", fmt_ms(fsync_s), f"{fsync_s / plain_s:.2f}x",
             "informational"],
            ["checkpoint (snapshot)", fmt_ms(checkpoint_s),
             f"{snapshot_mb:.1f} MB", "informational"],
            ["boot from snapshot", fmt_ms(boot_s), "-", "informational"],
            ["boot via WAL replay", fmt_ms(replay_s),
             f"{n_records / max(replay_s, 1e-9) / 1e3:.0f}k rec/s",
             "informational"],
        ]
        emit(
            "durability",
            f"Durable ingest at {N_OBSERVATIONS} observations "
            f"({N_OBSERVATIONS * TRIPLES_PER_OBSERVATION} triples, "
            f"chunks of {CHUNK})",
            format_table(["path", "time", "ratio", "gate"], rows),
        )
        emit_json("durability", {
            "observations": N_OBSERVATIONS,
            "triples": N_OBSERVATIONS * TRIPLES_PER_OBSERVATION,
            "chunk": CHUNK,
            "ingest_plain_s": plain_s,
            "ingest_wal_s": wal_s,
            "ingest_wal_fsync_s": fsync_s,
            "wal_overhead": overhead,
            "wal_overhead_gate": MAX_OVERHEAD,
            "checkpoint_s": checkpoint_s,
            "snapshot_mb": snapshot_mb,
            "boot_snapshot_s": boot_s,
            "boot_replay_s": replay_s,
            "replayed_records": n_records,
        })
        assert overhead <= MAX_OVERHEAD, (
            f"WAL ingest overhead {overhead:.2f}x exceeds the "
            f"{MAX_OVERHEAD:.1f}x gate at {N_OBSERVATIONS} observations"
        )
    finally:
        shutil.rmtree(base, ignore_errors=True)
