"""Figure 9: refinement generation time (a) and number of proposals (b).

For queries at the Orig / Dis.1 / Dis.2 stages, measure each ExRef method:
Disaggregate generation, Top-K, Percentile (both on the already-fetched
results), and Similarity Search.  Shapes to hold:

* Disaggregate generation is O(|L|): far below query-execution cost;
* Top-K and Percentile scale with the number of result tuples and stay
  well under a second;
* Similarity is the most expensive method, growing with the total tuples;
* Top-K proposes (up to) a fixed 2 x measures x aggregates refinements,
  Similarity a fixed measures x aggregates, Percentile a variable count.
"""

import statistics

import pytest

from repro.core import Disaggregate, Percentile, SimilaritySearch, TopK, reolap

from .conftest import DATASET_NAMES, sample_inputs
from .helpers import emit, fmt_ms, format_table, timed

STAGES = ("orig", "dis1", "dis2")
METHODS = ("disaggregate", "topk", "percentile", "similarity")
_cells: dict[tuple[str, str], dict] = {}


def staged_queries(endpoint, vgraph, kg, seed):
    """A few (stage -> query) chains from synthesized queries."""
    disaggregate = Disaggregate(vgraph)
    chains = []
    for example in sample_inputs(kg, 1, count=4, seed=seed):
        try:
            queries = reolap(endpoint, vgraph, example)[:1]
        except Exception:
            continue
        for query in queries:
            chain = [query]
            current = query
            for _ in range(2):
                proposals = disaggregate.propose(current)
                if not proposals:
                    break
                current = proposals[0].query
                chain.append(current)
            if len(chain) == 3:
                chains.append(chain)
    return chains


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_fig9_refinements(benchmark, name, datasets, endpoints, vgraphs):
    endpoint, vgraph = endpoints[name], vgraphs[name]
    chains = staged_queries(endpoint, vgraph, datasets[name], seed=3000)
    assert chains, "no query chains available"
    methods = {
        "disaggregate": Disaggregate(vgraph),
        "topk": TopK(),
        "percentile": Percentile(),
        "similarity": SimilaritySearch(k=3),
    }

    def run_all():
        times = {(m, s): [] for m in METHODS for s in STAGES}
        counts = {(m, s): [] for m in METHODS for s in STAGES}
        for chain in chains:
            for stage, query in zip(STAGES, chain):
                results = endpoint.select(query.to_select())
                for method_name, method in methods.items():
                    proposals, elapsed = timed(method.propose, query, results)
                    times[(method_name, stage)].append(elapsed)
                    counts[(method_name, stage)].append(len(proposals))
        return times, counts

    times, counts = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for method_name in METHODS:
        _cells[(name, method_name)] = {
            stage: (
                statistics.mean(times[(method_name, stage)]),
                statistics.mean(counts[(method_name, stage)]),
            )
            for stage in STAGES
        }

    n_measures = len(vgraph.measures)
    for stage in STAGES:
        # Fig. 9b fixed counts: TopK <= 2 per measure x aggregate,
        # Similarity <= 1 per measure x aggregate.
        assert all(c <= 8 * n_measures for c in counts[("topk", stage)])
        assert all(c <= 4 * n_measures for c in counts[("similarity", stage)])

    if len(_cells) == len(DATASET_NAMES) * len(METHODS):
        _emit_tables()


def _emit_tables():
    rows_a, rows_b = [], []
    for name in DATASET_NAMES:
        for method_name in METHODS:
            cell = _cells[(name, method_name)]
            rows_a.append([name, method_name] + [fmt_ms(cell[s][0]) for s in STAGES])
            rows_b.append([name, method_name] + [f"{cell[s][1]:.1f}" for s in STAGES])
    emit(
        "fig9a",
        "Figure 9a: refinement generation time (Orig / Dis.1 / Dis.2)",
        format_table(["dataset", "method", "orig", "dis.1", "dis.2"], rows_a),
    )
    emit(
        "fig9b",
        "Figure 9b: number of refinements produced (Orig / Dis.1 / Dis.2)",
        format_table(["dataset", "method", "orig", "dis.1", "dis.2"], rows_b),
    )
    # Shape: disaggregate generation stays in the sub-10ms regime on all
    # datasets (it never touches the endpoint).
    for name in DATASET_NAMES:
        for stage_mean, _count in _cells[(name, "disaggregate")].values():
            assert stage_mean < 0.1
