"""Shared benchmark utilities: timing, table rendering, result persistence.

Every benchmark prints the table or series it regenerates (the same rows
the paper's figure reports) and also appends it to
``benchmarks/results/<name>.txt`` so a full run leaves an inspectable
record next to the pytest-benchmark timings.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def env_metadata() -> dict:
    """The execution environment facts a perf number is meaningless without.

    Recorded into every ``emit_json`` payload: cpu count (morsel scaling
    depends on it), numpy presence/version (the vectorized backend), and
    PYTHONHASHSEED (hash randomization perturbs dict-heavy paths).
    """
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    if os.environ.get("REPRO_NO_NUMPY"):
        numpy_version = None
    return {
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
        "pythonhashseed": os.environ.get("PYTHONHASHSEED"),
    }


def timed(fn, *args, **kwargs):
    """Run ``fn`` and return (result, elapsed seconds)."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def format_table(headers: list[str], rows: list[list]) -> str:
    """Fixed-width table rendering used by all harness outputs."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines.extend(" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells)
    return "\n".join(lines)


def emit(name: str, title: str, table: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"\n### {title}\n{table}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(f"{title}\n\n{table}\n")


def emit_json(name: str, payload: dict) -> Path:
    """Persist machine-readable benchmark results.

    Writes ``benchmarks/results/BENCH_<name>.json`` so the perf trajectory
    can be tracked across PRs (CI uploads these as artifacts).  The payload
    should carry timings in seconds, speedups as plain ratios, and row /
    observation counts — whatever a later run needs to compare against.
    Returns the written path.  An ``env`` block (cpu count, numpy
    version, PYTHONHASHSEED) is added automatically unless the payload
    already carries one.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"env": env_metadata(), **payload}
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}ms"
