"""Ablation: selectivity-based join ordering in the SPARQL engine.

The engine orders BGP patterns greedily by estimated cardinality before
joining (repro.sparql.optimizer).  Join ordering pays off exactly on the
queries REOLAP issues constantly: *anchored probes* where one pattern is
pinned to a constant member (the ASK validations of Algorithm 1 and the
VALUES-restricted similarity refinements).  Written textually, such a
query starts from the unselective ``?o a qb:Observation`` scan; the
optimizer instead starts from the member constant.

The ablation runs the member-anchored probe workload with the optimizer
on and off, asserts identical answers, and reports the speedup.
"""

import random

from repro.sparql import Evaluator, parse_query

from .helpers import emit, fmt_ms, format_table, timed


def _anchored_probes(kg, vgraph, count=30, seed=5000):
    """SELECT probes pinning a deep-level member, textual worst-case order."""
    rng = random.Random(seed)
    probes = []
    deep_levels = [lvl for lvl in vgraph.all_levels() if lvl.depth >= 2] or vgraph.all_levels()
    for _ in range(count):
        level = deep_levels[rng.randrange(len(deep_levels))]
        member = level.sample_members[rng.randrange(len(level.sample_members))]
        chain_vars = []
        patterns = [f"?o a {vgraph.observation_class.n3()} ."]
        subject = "?o"
        for depth, predicate in enumerate(level.path):
            target = member.n3() if depth == len(level.path) - 1 else f"?v{depth}"
            patterns.append(f"{subject} {predicate.n3()} {target} .")
            subject = target
        probes.append(
            "SELECT (COUNT(?o) AS ?n) WHERE { " + " ".join(patterns) + " }"
        )
    return [parse_query(p) for p in probes]


def test_ablation_join_ordering(benchmark, datasets, endpoints, vgraphs):
    kg = datasets["eurostat"]
    vgraph = vgraphs["eurostat"]
    probes = _anchored_probes(kg, vgraph)
    # Both engine modes, so the ordering ablation stays meaningful now that
    # compiled id-space execution is the default: ordering must pay off in
    # id space too, and the compiled/term-space gap is visible per variant.
    variants = {
        ("on", "compiled"): Evaluator(kg.graph, optimize=True, compile=True),
        ("off", "compiled"): Evaluator(kg.graph, optimize=False, compile=True),
        ("on", "term-space"): Evaluator(kg.graph, optimize=True, compile=False),
        ("off", "term-space"): Evaluator(kg.graph, optimize=False, compile=False),
    }

    def run(evaluator):
        return [evaluator.select(probe) for probe in probes]

    results = {}
    times = {}
    for key, evaluator in variants.items():
        results[key], times[key] = timed(run, evaluator)
    benchmark.pedantic(run, args=(variants[("on", "compiled")],),
                       rounds=1, iterations=1)

    # Correctness: neither the optimizer nor the compiled engine may
    # change query semantics.
    reference = results[("on", "compiled")]
    for key, result in results.items():
        for got, expected in zip(result, reference):
            assert got == expected, key

    rows = [
        [f"optimizer {onoff}, {engine}", fmt_ms(times[(onoff, engine)])]
        for onoff in ("on", "off")
        for engine in ("compiled", "term-space")
    ]
    rows.append([
        "ordering speedup (compiled engine)",
        f"{times[('off', 'compiled')] / times[('on', 'compiled')]:.1f}x",
    ])
    rows.append([
        "ordering speedup (term-space)",
        f"{times[('off', 'term-space')] / times[('on', 'term-space')]:.1f}x",
    ])
    emit(
        "ablation_optimizer",
        f"Ablation: BGP join ordering over {len(probes)} member-anchored probes",
        format_table(["variant", "total time"], rows),
    )
    assert times[("off", "compiled")] > times[("on", "compiled")]
    assert times[("off", "term-space")] > times[("on", "term-space")]
