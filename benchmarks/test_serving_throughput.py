"""Serving-layer throughput: cached vs uncached, 1 vs N workers.

Exploratory sessions re-issue near-identical queries constantly (REOLAP
probes, refinement menus), so the result cache should dominate on repeated
workloads — the acceptance bar is a ≥5x speedup over the uncached
endpoint.  Worker scaling is reported for the record: with a pure-Python
evaluator the GIL caps parallel speedup, so the interesting number is that
N workers with a shared cache stay *at least* in the same league as one
(the cache, not the pool, carries the win until evaluation releases the
GIL — the sharding/async PRs this subsystem exists for).

Sizes are environment-tunable so CI can smoke the benchmark quickly::

    REPRO_BENCH_SERVING_OBS=150 REPRO_BENCH_SERVING_REPS=3 \
        pytest benchmarks/test_serving_throughput.py
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import wait

import pytest

from repro.datasets import generate_eurostat
from repro.serving import QueryCache, QueryService
from repro.store import Endpoint

from .helpers import emit, fmt_ms, format_table, timed

N_OBSERVATIONS = int(os.environ.get("REPRO_BENCH_SERVING_OBS", "800"))
N_REPETITIONS = int(os.environ.get("REPRO_BENCH_SERVING_REPS", "25"))

# Distinct query shapes an exploration front end keeps re-issuing: full
# scans, grouped aggregates, existence probes.
QUERY_SHAPES = (
    "SELECT ?p (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p",
    "SELECT DISTINCT ?p WHERE { ?s ?p ?o }",
    "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s "
    "ORDER BY DESC(?n) LIMIT 10",
    "ASK { ?s ?p ?o }",
)


@pytest.fixture(scope="module")
def graph():
    kg = generate_eurostat(n_observations=N_OBSERVATIONS, scale=0.3, seed=7)
    return kg.graph


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(7)
    queries = [q for q in QUERY_SHAPES for _ in range(N_REPETITIONS)]
    rng.shuffle(queries)
    return queries


def run_serial(endpoint: Endpoint, queries) -> float:
    _, elapsed = timed(lambda: [endpoint.query(q) for q in queries])
    return elapsed


def test_cached_vs_uncached_speedup(graph, workload):
    """The acceptance bar: ≥5x on a repeated-query workload."""
    uncached = Endpoint(graph)
    cold = Endpoint(graph, cache=QueryCache())

    uncached_s = run_serial(uncached, workload)
    cached_s = run_serial(cold, workload)
    speedup = uncached_s / cached_s

    stats = cold.cache.results.stats
    table = format_table(
        ["configuration", "queries", "wall time", "per query", "speedup"],
        [
            ["uncached", len(workload), fmt_ms(uncached_s),
             fmt_ms(uncached_s / len(workload)), "1.0x"],
            ["cached", len(workload), fmt_ms(cached_s),
             fmt_ms(cached_s / len(workload)), f"{speedup:.1f}x"],
            [f"(cache: {stats.hits} hits / {stats.misses} misses)",
             "", "", "", ""],
        ],
    )
    emit("serving_cache_speedup",
         f"Serving cache speedup ({N_OBSERVATIONS} observations, "
         f"{len(QUERY_SHAPES)} shapes x {N_REPETITIONS} reps)", table)

    assert stats.hits == len(workload) - len(QUERY_SHAPES)
    # A workload with R repetitions per shape can speed up at most Rx (the
    # cold misses still evaluate), so only hold the 5x acceptance bar when
    # repetition makes it reachable; tiny smoke runs get a scaled bar.
    ceiling = len(workload) / len(QUERY_SHAPES)
    bar = 5.0 if ceiling >= 10 else 0.6 * ceiling
    assert speedup >= bar, (
        f"cache speedup {speedup:.1f}x below the {bar:.1f}x acceptance bar "
        f"(uncached {uncached_s:.3f}s vs cached {cached_s:.3f}s)"
    )


def test_worker_scaling(graph, workload):
    """Throughput of 1 vs N workers pushing the workload through a service."""
    rows = []
    reference = None
    for workers in (1, 4, 8):
        service = QueryService(graph, workers=workers,
                               max_pending=len(workload))
        try:
            start = time.perf_counter()
            futures = [service.submit(q) for q in workload]
            done, not_done = wait(futures, timeout=600)
            elapsed = time.perf_counter() - start
            assert not not_done
            results = sorted(
                str(f.result()) for f in done
            )
            if reference is None:
                reference = results
            else:
                assert results == reference, "worker count changed results"
            throughput = len(workload) / elapsed
            rows.append([f"{workers} worker(s)", len(workload),
                         fmt_ms(elapsed), f"{throughput:.0f} q/s"])
        finally:
            service.shutdown()
    emit("serving_worker_scaling",
         f"Worker scaling, shared cache ({N_OBSERVATIONS} observations)",
         format_table(["configuration", "queries", "wall time", "throughput"],
                      rows))
