"""Figure 10: queries obtained from ("Asia", "2011") — SPARQLByE vs REOLAP.

Prints both systems' outputs for the same input and asserts the
qualitative differences the figure illustrates:

* SPARQLByE recognizes the example entities' level memberships but emits
  a flat ``SELECT *`` with no aggregation and no connection to
  observations;
* REOLAP emits ``SELECT ... SUM(...)`` queries whose BGPs navigate from
  the observation variable through the hierarchy to the matched levels,
  with a GROUP BY over them.
"""

from repro.baselines import SPARQLByE
from repro.core import reolap

from .helpers import emit

EXAMPLE = ("Asia", "2011")


def run_both(endpoint, vgraph):
    baseline = SPARQLByE(endpoint).reverse_engineer(EXAMPLE)
    queries = reolap(endpoint, vgraph, EXAMPLE)
    return baseline, queries


def test_fig10_sparqlbye_vs_reolap(benchmark, endpoints, vgraphs):
    endpoint, vgraph = endpoints["eurostat"], vgraphs["eurostat"]
    baseline, queries = benchmark.pedantic(
        run_both, args=(endpoint, vgraph), rounds=1, iterations=1
    )

    assert baseline.query is not None
    assert not baseline.has_aggregation
    assert not baseline.mentions_observations
    assert queries
    reolap_query = queries[0].to_select()
    assert reolap_query.group_by
    assert reolap_query.is_aggregate_query

    body = (
        "(a) SPARQLByE:\n" + baseline.query.to_sparql()
        + "\n\n(b) REOLAP (first of {n}):\n".format(n=len(queries))
        + queries[0].sparql()
    )
    emit("fig10", 'Figure 10: queries for ("Asia", "2011")', body)
