"""Ablation: full-text index vs linear literal scan for keyword matching.

The paper relies on the triplestore's full-text index for resolving
example values to IRIs (Section 7.1).  This ablation resolves the same
keyword workload through the inverted index and through a linear scan of
all literals, asserting identical hits and reporting the speedup — the
gap widens with |N_D|, so it runs on the member-heaviest dataset.
"""

from .conftest import sample_inputs
from .helpers import emit, fmt_ms, format_table, timed


def test_ablation_text_index(benchmark, datasets, endpoints):
    kg = datasets["dbpedia"]
    endpoint = endpoints["dbpedia"]
    keywords = [label for (label,) in sample_inputs(kg, 1, count=20, seed=6000)]
    index = endpoint.text_index

    def indexed():
        return [index.search(keyword) for keyword in keywords]

    def scanned():
        return [index.scan_search(endpoint.graph, keyword) for keyword in keywords]

    indexed_hits, indexed_time = timed(indexed)
    scanned_hits, scanned_time = timed(scanned)
    benchmark.pedantic(indexed, rounds=3, iterations=1)

    assert indexed_hits == scanned_hits  # same resolution semantics

    emit(
        "ablation_textindex",
        f"Ablation: keyword resolution over {len(keywords)} keywords (DBpedia)",
        format_table(
            ["variant", "total time", "per keyword"],
            [
                ["full-text index", fmt_ms(indexed_time), fmt_ms(indexed_time / len(keywords))],
                ["linear literal scan", fmt_ms(scanned_time), fmt_ms(scanned_time / len(keywords))],
                ["speedup", f"{scanned_time / max(indexed_time, 1e-9):.0f}x", ""],
            ],
        ),
    )
    assert scanned_time > indexed_time
