"""Scalability: REOLAP cost vs observation count (Section 5.3's claim).

The paper's central performance claim: REOLAP's "time complexity is
independent of the actual number of observations" — it scales with the
schema (|L|, |N_D|), which is why 15M-observation KGs answer in seconds.
This benchmark holds the Eurostat schema fixed and grows only the
observation count; synthesis time must grow far slower than the store
(sub-linear), while a full-scan control query grows linearly.
"""

import statistics

from repro.core import VirtualSchemaGraph, reolap
from repro.datasets import generate_eurostat
from repro.qb import OBSERVATION_CLASS

from .helpers import emit, fmt_ms, format_table, timed

OBSERVATION_COUNTS = (500, 2000, 8000)
EXAMPLES = [("Germany", "2010"), ("Asia",), ("France", "Male")]


def test_scalability_in_observations(benchmark):
    rows = []
    synth_means = {}
    scan_means = {}
    for n_obs in OBSERVATION_COUNTS:
        kg = generate_eurostat(n_observations=n_obs, scale=0.4, seed=77)
        endpoint = kg.endpoint()
        _ = endpoint.text_index
        vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)

        times = []
        for example in EXAMPLES:
            _, elapsed = timed(reolap, endpoint, vgraph, example)
            times.append(elapsed)
        synth_means[n_obs] = statistics.mean(times)

        # Control: a query whose cost IS linear in the observations.
        _, scan_time = timed(
            endpoint.select,
            "SELECT (COUNT(?o) AS ?n) WHERE { ?o a "
            + OBSERVATION_CLASS.n3() + " . ?o ?p ?x }",
        )
        scan_means[n_obs] = scan_time
        rows.append([n_obs, len(kg.graph), fmt_ms(synth_means[n_obs]), fmt_ms(scan_time)])

    def rerun_largest():
        kg = generate_eurostat(n_observations=OBSERVATION_COUNTS[-1], scale=0.4, seed=77)
        endpoint = kg.endpoint()
        vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
        return reolap(endpoint, vgraph, EXAMPLES[0])

    benchmark.pedantic(rerun_largest, rounds=1, iterations=1)

    emit(
        "scalability",
        "Scalability: REOLAP synthesis vs observation count (fixed schema)",
        format_table(
            ["observations", "triples", "mean REOLAP time", "full-scan control"],
            rows,
        ),
    )
    growth = OBSERVATION_COUNTS[-1] / OBSERVATION_COUNTS[0]  # 16x data
    synth_growth = synth_means[OBSERVATION_COUNTS[-1]] / synth_means[OBSERVATION_COUNTS[0]]
    scan_growth = scan_means[OBSERVATION_COUNTS[-1]] / scan_means[OBSERVATION_COUNTS[0]]
    # Synthesis grows much slower than the data and than the scan control.
    assert synth_growth < growth / 2
    assert synth_growth < scan_growth
