"""Figure 8c: evolution of an exploration workflow (Eurostat).

Reproduces the paper's example workflow — REOLAP from a single example,
then Disaggregate twice, then Similarity Search, then Top-K — and reports
at each interaction the number of offered options, the result tuples, and
the cumulative exploration paths/tuples the system gives access to.  The
shape to hold: path counts grow multiplicatively, reaching thousands of
distinct exploration paths within five interactions.
"""

from repro.core import ExplorationSession, account_paths

from .helpers import emit, format_table

WORKFLOW = ("disaggregate", "disaggregate", "similarity", "topk")


def run_workflow(endpoint, vgraph, example):
    session = ExplorationSession(endpoint, vgraph, similarity_k=3)
    session.synthesize(*example)
    session.choose(0)
    for kind in WORKFLOW:
        proposals = session.refinements(kind)
        if not proposals:
            continue
        session.apply(proposals[0], options_offered=len(proposals))
    return session


def test_fig8c_workflow(benchmark, endpoints, vgraphs):
    endpoint, vgraph = endpoints["eurostat"], vgraphs["eurostat"]

    session = benchmark.pedantic(
        run_workflow, args=(endpoint, vgraph, ("Germany",)),
        rounds=1, iterations=1,
    )
    accounting = account_paths(session.history)
    rows = [
        [r["interaction"], r["kind"], r["options"], r["tuples"],
         r["cumulative_paths"], r["cumulative_tuples"]]
        for r in accounting.rows()
    ]
    emit(
        "fig8c",
        "Figure 8c: exploration workflow evolution (Eurostat, example 'Germany')",
        format_table(
            ["interaction", "kind", "options", "tuples",
             "cumulative paths", "cumulative tuples"],
            rows,
        ),
    )
    assert len(session.history) >= 4
    # Paths grow multiplicatively into the thousands within the workflow.
    final_paths = accounting.cumulative_paths[-1]
    assert final_paths > 100
    assert accounting.cumulative_paths == tuple(sorted(accounting.cumulative_paths))
