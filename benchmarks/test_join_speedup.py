"""Compiled id-space join execution vs the term-space interpreter.

The engine's default execution path compiles ordered BGPs to id-space
plans (repro.sparql.compiler): constants are encoded once at compile
time, bindings flow as flat integer register rows probing the triple
index's permutation maps directly, and terms are decoded only at the
projection boundary.  The term-space interpreter — still the fallback
for property paths and multi-graph unions — re-encodes and re-decodes
every term at every extension step.

This benchmark times the dimension-chain join workload (the shape behind
every REOLAP candidate and refinement query) on the mid-size synthetic
Eurostat cube with **cold caches**: fresh evaluators, no result or plan
cache, so the measured gap is pure execution.

Result equivalence and a conservative wall-clock floor are hard
assertions; the >= 3x acceptance target is advisory (a warning), because
best-of-N timing ratios are noisy under shared-CI runner contention and
a hard 3x gate would fail pipelines for reasons unrelated to the code.

Sizes and bars are environment-tunable so CI can re-run the gate
quickly, or enforce the full target on quiet machines::

    REPRO_BENCH_JOIN_OBS=4000 pytest benchmarks/test_join_speedup.py
    REPRO_BENCH_JOIN_HARD_MIN_SPEEDUP=3.0 pytest benchmarks/test_join_speedup.py
"""

from __future__ import annotations

import os
import time
import warnings

from repro.core import VirtualSchemaGraph
from repro.datasets import generate_eurostat
from repro.qb import OBSERVATION_CLASS
from repro.sparql import Evaluator, parse_query

from .helpers import emit, emit_json, fmt_ms, format_table

N_OBSERVATIONS = int(os.environ.get("REPRO_BENCH_JOIN_OBS", "4000"))
N_REPETITIONS = int(os.environ.get("REPRO_BENCH_JOIN_REPS", "5"))
#: Advisory target — a shortfall emits a warning, not a failure.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_JOIN_MIN_SPEEDUP", "3.0"))
#: Hard floor — low enough that only a real regression (not runner
#: contention) can dip under it; typical measured speedup is ~4-5x.
HARD_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_JOIN_HARD_MIN_SPEEDUP", "1.5"))


def _chain_query(vgraph, n_chains: int) -> str:
    """A SELECT * joining the observation type with n dimension chains."""
    patterns = [f"?o a {vgraph.observation_class.n3()} ."]
    levels = list(vgraph.all_levels())[:n_chains]
    for index, level in enumerate(levels):
        subject = "?o"
        for depth, predicate in enumerate(level.path):
            target = f"?v{index}_{depth}"
            patterns.append(f"{subject} {predicate.n3()} {target} .")
            subject = target
    return "SELECT * WHERE { " + " ".join(patterns) + " }"


def _best_time(evaluator_factory, query, reps: int):
    """Best-of-N wall clock with a fresh evaluator per run (cold plans)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        evaluator = evaluator_factory()
        start = time.perf_counter()
        result = evaluator.select(query)
        best = min(best, time.perf_counter() - start)
    return result, best


def test_compiled_join_speedup(benchmark):
    kg = generate_eurostat(n_observations=N_OBSERVATIONS, scale=0.4, seed=101)
    graph = kg.graph
    vgraph = VirtualSchemaGraph.bootstrap(kg.endpoint(), OBSERVATION_CLASS)
    query = parse_query(_chain_query(vgraph, n_chains=3))

    compiled_result, compiled_time = _best_time(
        lambda: Evaluator(graph, compile=True), query, N_REPETITIONS
    )
    legacy_result, legacy_time = _best_time(
        lambda: Evaluator(graph, compile=False), query, N_REPETITIONS
    )
    benchmark.pedantic(
        Evaluator(graph, compile=True).select, args=(query,), rounds=1, iterations=1
    )

    # Equivalence first: the compiled engine must not change semantics.
    assert compiled_result == legacy_result
    assert len(compiled_result) > 0

    speedup = legacy_time / compiled_time
    emit(
        "join_speedup",
        f"Compiled id-space joins vs term-space interpreter "
        f"({N_OBSERVATIONS} observations, {len(compiled_result)} rows, cold cache)",
        format_table(
            ["engine", "best time", "speedup"],
            [
                ["term-space interpreter", fmt_ms(legacy_time), "1.0x"],
                ["compiled id-space", fmt_ms(compiled_time), f"{speedup:.1f}x"],
            ],
        ),
    )
    emit_json(
        "join_speedup",
        {
            "benchmark": "join_speedup",
            "observations": N_OBSERVATIONS,
            "repetitions": N_REPETITIONS,
            "result_rows": len(compiled_result),
            "compiled_best_s": compiled_time,
            "legacy_best_s": legacy_time,
            "speedup": speedup,
            "advisory_target": MIN_SPEEDUP,
            "hard_floor": HARD_MIN_SPEEDUP,
        },
    )
    assert speedup >= HARD_MIN_SPEEDUP, (
        f"compiled execution only {speedup:.2f}x faster (hard floor: {HARD_MIN_SPEEDUP}x)"
    )
    if speedup < MIN_SPEEDUP:
        warnings.warn(
            f"compiled execution {speedup:.2f}x faster, under the {MIN_SPEEDUP}x "
            f"target — likely CI runner contention; re-run on a quiet machine",
            stacklevel=2,
        )
