"""Table 3: dataset characteristics (|D|, |M|, |H|, |L|, |N_D|, sizes).

Regenerates the paper's dataset-characteristics table twice: once for the
full-scale schemas (exactly the paper's |M|, |L|, |N_D| — the D/H counting
conventions differ, see repro.qb.schema) and once for the benchmark-scale
instances the remaining experiments actually run on.
"""

from repro.datasets import dbpedia_schema, eurostat_schema, production_schema

from .conftest import DATASET_NAMES
from .helpers import emit, format_table

PAPER_TABLE3 = {
    # dataset: (D, M, H, L, N_D)
    "eurostat": (4, 1, 8, 9, 373),
    "production": (7, 1, 5, 9, 6444),
    "dbpedia": (5, 1, 14, 23, 87160),
}

FULL_SCHEMAS = {
    "eurostat": lambda: eurostat_schema(scale=1.0),
    "production": lambda: production_schema(scale=1.0),
    "dbpedia": lambda: dbpedia_schema(scale=1.0),
}


def test_table3_full_scale_schemas(benchmark):
    def build():
        return {name: FULL_SCHEMAS[name]().describe() for name in DATASET_NAMES}

    stats = benchmark(build)
    rows = []
    for name in DATASET_NAMES:
        ours = stats[name]
        paper = PAPER_TABLE3[name]
        rows.append([
            name,
            f"{ours['D']} (paper {paper[0]})",
            f"{ours['M']} (paper {paper[1]})",
            f"{ours['H']} (paper {paper[2]})",
            f"{ours['L']} (paper {paper[3]})",
            f"{ours['N_D']} (paper {paper[4]})",
        ])
    emit(
        "table3",
        "Table 3: dataset characteristics at full scale (ours vs paper)",
        format_table(["dataset", "|D|", "|M|", "|H|", "|L|", "|N_D|"], rows),
    )
    # The shape the table supports: measure/level/member counts match the
    # paper exactly; member population ordering is preserved.
    for name in DATASET_NAMES:
        assert stats[name]["M"] == PAPER_TABLE3[name][1]
        assert stats[name]["L"] == PAPER_TABLE3[name][3]
        assert stats[name]["N_D"] == PAPER_TABLE3[name][4]
    assert (stats["eurostat"]["N_D"] < stats["production"]["N_D"]
            < stats["dbpedia"]["N_D"])


def test_table3_benchmark_scale_instances(benchmark, datasets, vgraphs):
    def describe():
        return {name: datasets[name].describe() for name in DATASET_NAMES}

    stats = benchmark(describe)
    rows = []
    for name in DATASET_NAMES:
        ours = stats[name]
        vgraph = vgraphs[name]
        rows.append([
            name, ours["D"], ours["M"], ours["H"], ours["L"], ours["N_D"],
            ours["observations"], ours["triples"],
            vgraph.n_levels, vgraph.n_members,
        ])
    emit(
        "table3_bench_scale",
        "Table 3 (benchmark scale): generated instances + crawled virtual graph",
        format_table(
            ["dataset", "|D|", "|M|", "|H|", "|L|", "|N_D|",
             "obs", "triples", "vgraph L", "vgraph N_D"],
            rows,
        ),
    )
    for name in DATASET_NAMES:
        # The crawler must rediscover exactly the declared levels.
        assert vgraphs[name].n_levels == stats[name]["L"]
