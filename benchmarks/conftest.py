"""Benchmark fixtures: the three datasets at benchmark scale.

Scales are chosen so the whole suite regenerates every table and figure in
minutes on a laptop while preserving the paper's *relative* dataset
characteristics: Eurostat is triple-dense with few members, Production has
an order of magnitude more members, DBpedia has the most levels, shares
member values across dimensions, and is M-to-N.  Absolute numbers differ
from the paper (its substrate was Virtuoso on a 62 GB VM; ours is a pure
Python store), which EXPERIMENTS.md discusses.
"""

from __future__ import annotations

import random

import pytest

from repro.core import VirtualSchemaGraph
from repro.datasets import generate_dbpedia, generate_eurostat, generate_production
from repro.qb import OBSERVATION_CLASS, StatisticalKG

BENCH_SETTINGS = {
    "eurostat": dict(n_observations=4000, scale=0.4, seed=101),
    "production": dict(n_observations=3000, scale=0.02, seed=102),
    "dbpedia": dict(n_observations=1500, scale=0.03, seed=103),
}

_GENERATORS = {
    "eurostat": generate_eurostat,
    "production": generate_production,
    "dbpedia": generate_dbpedia,
}

DATASET_NAMES = tuple(BENCH_SETTINGS)


def build_dataset(name: str) -> StatisticalKG:
    return _GENERATORS[name](**BENCH_SETTINGS[name])


@pytest.fixture(scope="session")
def datasets() -> dict[str, StatisticalKG]:
    """All three benchmark KGs, generated once per session."""
    return {name: build_dataset(name) for name in DATASET_NAMES}


@pytest.fixture(scope="session")
def endpoints(datasets):
    endpoints = {}
    for name, kg in datasets.items():
        endpoint = kg.endpoint()
        _ = endpoint.text_index  # build the text index up front
        endpoints[name] = endpoint
    return endpoints


@pytest.fixture(scope="session")
def vgraphs(endpoints):
    return {
        name: VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
        for name, endpoint in endpoints.items()
    }


def sample_inputs(
    kg: StatisticalKG, size: int, count: int = 10, seed: int = 0
) -> list[tuple[str, ...]]:
    """Random example tuples: ``size`` member labels from distinct dimensions.

    This is the Fig. 7 workload: "we randomly selected dimension members
    from each dimension and combined them", 10 inputs per size.
    """
    rng = random.Random(seed)
    dimension_names = sorted({dim for dim, _level in kg.members})
    if size > len(dimension_names):
        raise ValueError(f"size {size} exceeds {len(dimension_names)} dimensions")
    inputs: list[tuple[str, ...]] = []
    for _ in range(count):
        chosen_dims = rng.sample(dimension_names, size)
        labels = []
        for dim in chosen_dims:
            levels = sorted(level for d, level in kg.members if d == dim)
            level = levels[rng.randrange(len(levels))]
            members = kg.members[(dim, level)]
            labels.append(members[rng.randrange(len(members))].label)
        inputs.append(tuple(labels))
    return inputs
