"""Unified operator pipeline vs the term-space interpreter.

PR 5's physical-operator layer (repro.sparql.operators) lets the shapes
the paper's exploration loop leans on — OPTIONAL-decorated drill-downs and
UNION'd candidate validation — run in id space instead of falling back to
the term-space interpreter.  This benchmark times both workloads with
**cold caches**: fresh evaluators, no plan or result cache, so the
measured gap is pure execution.

* **OPTIONAL drill-down**: every observation joined to its dimensions,
  with the (sparsely present) measure attached via OPTIONAL and a FILTER
  over it — the SPARQLByE-style decorated query REOLAP's drill-downs
  produce.  The interpreter re-evaluates the nested group per outer row;
  the LeftJoin operator probes the integer indexes directly.
* **UNION candidate validation**: two interpretation branches UNION'd and
  joined against the measure — the Algorithm 1 candidate-combination
  shape.  The interpreter decodes every branch solution into Binding
  dicts; the Union operator streams register rows.

Result equivalence and a conservative wall-clock floor are hard
assertions; the >= 3x acceptance target is advisory (a warning), because
best-of-N timing ratios are noisy under shared-CI runner contention and a
hard 3x gate would fail pipelines for reasons unrelated to the code.

Sizes and bars are environment-tunable so CI can re-run the gate quickly,
or enforce the full target on quiet machines::

    REPRO_BENCH_OPS_OBS=20000 pytest benchmarks/test_operator_speedup.py
    REPRO_BENCH_OPS_HARD_MIN_SPEEDUP=3.0 pytest benchmarks/test_operator_speedup.py
"""

from __future__ import annotations

import os
import time
import warnings

from repro.rdf.terms import IRI, Literal, XSD_INTEGER
from repro.rdf.triple import Triple
from repro.sparql import Evaluator, parse_query
from repro.store.graph import Graph

from .helpers import RESULTS_DIR, emit, emit_json, fmt_ms, format_table

N_OBSERVATIONS = int(os.environ.get("REPRO_BENCH_OPS_OBS", "60000"))
N_REPETITIONS = int(os.environ.get("REPRO_BENCH_OPS_REPS", "3"))
#: Advisory target — a shortfall emits a warning, not a failure.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_OPS_MIN_SPEEDUP", "3.0"))
#: Hard floor — low enough that only a real regression (not runner
#: contention) can dip under it.
HARD_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_OPS_HARD_MIN_SPEEDUP", "1.5"))

_EX = "http://example.org/cube/"
_REGION = IRI(_EX + "region")
_MONTH = IRI(_EX + "month")
_VALUE = IRI(_EX + "value")


def _sparse_cube(n_observations: int) -> Graph:
    """A star cube whose measure is present on ~2/3 of the observations,
    so OPTIONAL genuinely splits into matched and unmatched rows.
    Deterministic modular mixing, no RNG.
    """
    graph = Graph()
    regions = [IRI(f"{_EX}region/R{i}") for i in range(20)]
    months = [IRI(f"{_EX}month/M{i:02d}") for i in range(12)]
    values = [
        Literal(str((i * 37) % 1000), datatype=XSD_INTEGER) for i in range(1000)
    ]
    add = graph.add
    for i in range(n_observations):
        obs = IRI(f"{_EX}obs/{i}")
        add(Triple(obs, _REGION, regions[(i * 7919) % len(regions)]))
        add(Triple(obs, _MONTH, months[(i * 104729) % len(months)]))
        if i % 3:
            add(Triple(obs, _VALUE, values[(i * 15485863) % len(values)]))
    return graph


OPTIONAL_QUERY = f"""
SELECT ?o ?region ?month ?v
WHERE {{
  ?o <{_REGION.value}> ?region .
  ?o <{_MONTH.value}> ?month .
  OPTIONAL {{ ?o <{_VALUE.value}> ?v . FILTER(?v >= 500) }}
}}
"""

UNION_QUERY = f"""
SELECT ?o ?region ?v
WHERE {{
  {{ ?o <{_REGION.value}> <{_EX}region/R3> . }}
  UNION
  {{ ?o <{_REGION.value}> <{_EX}region/R7> . }}
  ?o <{_REGION.value}> ?region .
  ?o <{_VALUE.value}> ?v .
  FILTER(?v < 800)
}}
"""


def _best_time(evaluator_factory, query, reps: int):
    """Best-of-N wall clock with a fresh evaluator per run (cold plans)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        evaluator = evaluator_factory()
        start = time.perf_counter()
        result = evaluator.select(query)
        best = min(best, time.perf_counter() - start)
    return result, best


def test_operator_pipeline_speedup(benchmark):
    graph = _sparse_cube(N_OBSERVATIONS)
    optional_query = parse_query(OPTIONAL_QUERY)
    union_query = parse_query(UNION_QUERY)

    # The compiled engine must actually engage — otherwise this measures
    # nothing but the interpreter against itself.
    from repro.sparql.operators import compile_where

    for query in (optional_query, union_query):
        plan, reason = compile_where(graph, query.where)
        assert plan is not None, reason

    opt_result, opt_time = _best_time(
        lambda: Evaluator(graph, compile=True), optional_query, N_REPETITIONS
    )
    opt_legacy, opt_legacy_time = _best_time(
        lambda: Evaluator(graph, compile=False), optional_query, N_REPETITIONS
    )
    union_result, union_time = _best_time(
        lambda: Evaluator(graph, compile=True), union_query, N_REPETITIONS
    )
    union_legacy, union_legacy_time = _best_time(
        lambda: Evaluator(graph, compile=False), union_query, N_REPETITIONS
    )
    benchmark.pedantic(
        Evaluator(graph, compile=True).select, args=(optional_query,),
        rounds=1, iterations=1,
    )

    # Equivalence first: the operator layer must not change semantics.
    assert opt_result == opt_legacy
    assert len(opt_result) == N_OBSERVATIONS
    assert union_result == union_legacy
    assert len(union_result) > 0

    opt_speedup = opt_legacy_time / opt_time
    union_speedup = union_legacy_time / union_time
    emit(
        "operator_speedup",
        f"Unified operator pipeline vs term-space interpreter "
        f"({N_OBSERVATIONS} observations, cold cache)",
        format_table(
            ["query", "engine", "best time", "speedup"],
            [
                ["optional drill-down", "term-space", fmt_ms(opt_legacy_time), "1.0x"],
                ["optional drill-down", "compiled", fmt_ms(opt_time),
                 f"{opt_speedup:.1f}x"],
                ["union validation", "term-space", fmt_ms(union_legacy_time), "1.0x"],
                ["union validation", "compiled", fmt_ms(union_time),
                 f"{union_speedup:.1f}x"],
            ],
        ),
    )
    json_path = emit_json(
        "operators",
        {
            "benchmark": "operator_speedup",
            "observations": N_OBSERVATIONS,
            "repetitions": N_REPETITIONS,
            "optional_drilldown": {
                "compiled_best_s": opt_time,
                "legacy_best_s": opt_legacy_time,
                "speedup": opt_speedup,
                "result_rows": len(opt_result),
            },
            "union_validation": {
                "compiled_best_s": union_time,
                "legacy_best_s": union_legacy_time,
                "speedup": union_speedup,
                "result_rows": len(union_result),
            },
            "advisory_target": MIN_SPEEDUP,
            "hard_floor": HARD_MIN_SPEEDUP,
        },
    )
    assert json_path.exists()
    assert json_path == RESULTS_DIR / "BENCH_operators.json"

    for label, speedup in (
        ("OPTIONAL drill-down", opt_speedup),
        ("UNION validation", union_speedup),
    ):
        assert speedup >= HARD_MIN_SPEEDUP, (
            f"{label} only {speedup:.2f}x faster (hard floor: "
            f"{HARD_MIN_SPEEDUP}x)"
        )
        if speedup < MIN_SPEEDUP:
            warnings.warn(
                f"{label} {speedup:.2f}x faster, under the {MIN_SPEEDUP}x "
                f"target — likely CI runner contention; re-run on a quiet "
                f"machine",
                stacklevel=2,
            )
