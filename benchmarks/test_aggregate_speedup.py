"""Fused id-space aggregation vs the term-space GROUP BY path.

The dominant workload of the paper — REOLAP candidates, every refinement
probe, the figure benchmarks — is an aggregate ``SELECT … GROUP BY`` over
observations.  The fused pipeline (repro.sparql.aggregator) hash-groups on
integer register tuples streaming out of the compiled join and folds each
row into per-group accumulators, never materializing solutions or
term-space bindings; the term-space path materializes every solution as a
Binding dict, re-hashes them into groups, buffers full member lists, and
re-evaluates aggregate arguments row by row.

This benchmark times a two-key GROUP BY with SUM/COUNT/AVG over a synthetic
star-shaped cube (default 100k observations, ~300k triples) with **cold
caches**: fresh evaluators, no plan or result cache, so the measured gap is
pure execution.  A second timed query adds HAVING + ORDER BY + LIMIT to
exercise the bounded top-k heap end to end.

Result equivalence and a conservative wall-clock floor are hard
assertions; the >= 3x acceptance target is advisory (a warning), because
best-of-N timing ratios are noisy under shared-CI runner contention and a
hard 3x gate would fail pipelines for reasons unrelated to the code.

Sizes and bars are environment-tunable so CI can re-run the gate quickly,
or enforce the full target on quiet machines::

    REPRO_BENCH_AGG_OBS=20000 pytest benchmarks/test_aggregate_speedup.py
    REPRO_BENCH_AGG_HARD_MIN_SPEEDUP=3.0 pytest benchmarks/test_aggregate_speedup.py
"""

from __future__ import annotations

import os
import time
import warnings

from repro.rdf.terms import IRI, Literal, XSD_INTEGER
from repro.rdf.triple import Triple
from repro.sparql import Evaluator, parse_query
from repro.store.graph import Graph

from .helpers import RESULTS_DIR, emit, emit_json, fmt_ms, format_table

N_OBSERVATIONS = int(os.environ.get("REPRO_BENCH_AGG_OBS", "100000"))
N_REPETITIONS = int(os.environ.get("REPRO_BENCH_AGG_REPS", "3"))
#: Advisory target — a shortfall emits a warning, not a failure.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_AGG_MIN_SPEEDUP", "3.0"))
#: Hard floor — low enough that only a real regression (not runner
#: contention) can dip under it.
HARD_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_AGG_HARD_MIN_SPEEDUP", "1.5"))

_EX = "http://example.org/cube/"
_REGION = IRI(_EX + "region")
_MONTH = IRI(_EX + "month")
_VALUE = IRI(_EX + "value")


def _star_cube(n_observations: int) -> Graph:
    """A flat star cube: every observation carries two dimensions and one
    measure.  Dimension members and measure literals are drawn from small
    pools (deterministic modular mixing, no RNG), so the cube has realistic
    repetition — many observations per group, many repeated literals.
    """
    graph = Graph()
    regions = [IRI(f"{_EX}region/R{i}") for i in range(20)]
    months = [IRI(f"{_EX}month/M{i:02d}") for i in range(12)]
    values = [
        Literal(str((i * 37) % 1000), datatype=XSD_INTEGER) for i in range(1000)
    ]
    add = graph.add
    for i in range(n_observations):
        obs = IRI(f"{_EX}obs/{i}")
        add(Triple(obs, _REGION, regions[(i * 7919) % len(regions)]))
        add(Triple(obs, _MONTH, months[(i * 104729) % len(months)]))
        add(Triple(obs, _VALUE, values[(i * 15485863) % len(values)]))
    return graph


GROUP_QUERY = f"""
SELECT ?region ?month (SUM(?v) AS ?total) (COUNT(*) AS ?n) (AVG(?v) AS ?mean)
WHERE {{
  ?o <{_REGION.value}> ?region .
  ?o <{_MONTH.value}> ?month .
  ?o <{_VALUE.value}> ?v .
}}
GROUP BY ?region ?month
"""

TOPK_QUERY = f"""
SELECT ?region (SUM(?v) AS ?total)
WHERE {{
  ?o <{_REGION.value}> ?region .
  ?o <{_VALUE.value}> ?v .
}}
GROUP BY ?region
HAVING (COUNT(*) > 10)
ORDER BY DESC(?total)
LIMIT 5
"""


def _best_time(evaluator_factory, query, reps: int):
    """Best-of-N wall clock with a fresh evaluator per run (cold plans)."""
    best = float("inf")
    result = None
    for _ in range(reps):
        evaluator = evaluator_factory()
        start = time.perf_counter()
        result = evaluator.select(query)
        best = min(best, time.perf_counter() - start)
    return result, best


def test_fused_aggregate_speedup(benchmark):
    graph = _star_cube(N_OBSERVATIONS)
    group_query = parse_query(GROUP_QUERY)
    topk_query = parse_query(TOPK_QUERY)

    # The fused path must actually engage — otherwise this measures nothing.
    from repro.sparql import compile_aggregate

    assert compile_aggregate(graph, group_query) is not None
    assert compile_aggregate(graph, topk_query) is not None

    fused_result, fused_time = _best_time(
        lambda: Evaluator(graph, compile=True), group_query, N_REPETITIONS
    )
    legacy_result, legacy_time = _best_time(
        lambda: Evaluator(graph, compile=False), group_query, N_REPETITIONS
    )
    fused_topk, fused_topk_time = _best_time(
        lambda: Evaluator(graph, compile=True), topk_query, N_REPETITIONS
    )
    legacy_topk, legacy_topk_time = _best_time(
        lambda: Evaluator(graph, compile=False), topk_query, N_REPETITIONS
    )
    benchmark.pedantic(
        Evaluator(graph, compile=True).select, args=(group_query,),
        rounds=1, iterations=1,
    )

    # Equivalence first: the fused engine must not change semantics.
    assert fused_result == legacy_result
    assert len(fused_result) > 0
    assert fused_topk == legacy_topk
    assert len(fused_topk) == 5

    speedup = legacy_time / fused_time
    topk_speedup = legacy_topk_time / fused_topk_time
    emit(
        "aggregate_speedup",
        f"Fused id-space aggregation vs term-space GROUP BY "
        f"({N_OBSERVATIONS} observations, {len(fused_result)} groups, cold cache)",
        format_table(
            ["query", "engine", "best time", "speedup"],
            [
                ["group-by", "term-space", fmt_ms(legacy_time), "1.0x"],
                ["group-by", "fused id-space", fmt_ms(fused_time), f"{speedup:.1f}x"],
                ["top-k", "term-space", fmt_ms(legacy_topk_time), "1.0x"],
                ["top-k", "fused id-space", fmt_ms(fused_topk_time),
                 f"{topk_speedup:.1f}x"],
            ],
        ),
    )
    json_path = emit_json(
        "aggregate",
        {
            "benchmark": "aggregate_speedup",
            "observations": N_OBSERVATIONS,
            "repetitions": N_REPETITIONS,
            "groups": len(fused_result),
            "group_by": {
                "fused_best_s": fused_time,
                "legacy_best_s": legacy_time,
                "speedup": speedup,
            },
            "topk": {
                "fused_best_s": fused_topk_time,
                "legacy_best_s": legacy_topk_time,
                "speedup": topk_speedup,
                "result_rows": len(fused_topk),
            },
            "advisory_target": MIN_SPEEDUP,
            "hard_floor": HARD_MIN_SPEEDUP,
        },
    )
    assert json_path.exists()
    assert json_path == RESULTS_DIR / "BENCH_aggregate.json"

    assert speedup >= HARD_MIN_SPEEDUP, (
        f"fused aggregation only {speedup:.2f}x faster (hard floor: "
        f"{HARD_MIN_SPEEDUP}x)"
    )
    if speedup < MIN_SPEEDUP:
        warnings.warn(
            f"fused aggregation {speedup:.2f}x faster, under the {MIN_SPEEDUP}x "
            f"target — likely CI runner contention; re-run on a quiet machine",
            stacklevel=2,
        )
