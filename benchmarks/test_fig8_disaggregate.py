"""Figure 8a/b: query execution time and result counts for Orig/Dis.1/Dis.2.

Takes the queries synthesized by the Fig. 7 workload (sizes 1 and 2),
applies one and two Disaggregate refinements, and measures for each stage
the endpoint execution time and the number of result tuples.  Shapes:

* refinement *generation* is fast (well under the query execution cost,
  asserted in Fig. 9's generation benchmark) while *execution* grows as
  dimensions are added;
* queries from larger inputs are more selective, hence relatively cheaper;
* result counts grow (or saturate) with each disaggregation step.
"""

import statistics

import pytest

from repro.core import Disaggregate, reolap

from .conftest import DATASET_NAMES, sample_inputs
from .helpers import emit, fmt_ms, format_table, timed

STAGES = ("orig", "dis1", "dis2")
_cells: dict[tuple[str, int], dict] = {}
INPUT_SIZES = (1, 2)
INPUTS_PER_SIZE = 5
MAX_QUERIES_PER_INPUT = 2


def build_stage_queries(vgraph, queries):
    """For each base query: (orig, after Dis.1, after Dis.2)."""
    disaggregate = Disaggregate(vgraph)
    staged = []
    for query in queries:
        stages = [query]
        current = query
        for _ in range(2):
            proposals = disaggregate.propose(current)
            if not proposals:
                break
            current = proposals[0].query
            stages.append(current)
        if len(stages) == 3:
            staged.append(tuple(stages))
    return staged


@pytest.mark.parametrize("name", DATASET_NAMES)
@pytest.mark.parametrize("size", INPUT_SIZES)
def test_fig8ab_disaggregation(benchmark, name, size, datasets, endpoints, vgraphs):
    endpoint, vgraph = endpoints[name], vgraphs[name]
    inputs = sample_inputs(datasets[name], size, count=INPUTS_PER_SIZE, seed=2000 + size)
    base_queries = []
    for example in inputs:
        try:
            base_queries.extend(reolap(endpoint, vgraph, example)[:MAX_QUERIES_PER_INPUT])
        except Exception:
            continue
    staged = build_stage_queries(vgraph, base_queries)
    assert staged, "no 3-stage query chains could be built"

    def execute_all():
        times = {stage: [] for stage in STAGES}
        tuples = {stage: [] for stage in STAGES}
        for chain in staged:
            for stage, query in zip(STAGES, chain):
                results, elapsed = timed(endpoint.select, query.to_select())
                times[stage].append(elapsed)
                tuples[stage].append(len(results))
        return times, tuples

    times, tuples = benchmark.pedantic(execute_all, rounds=1, iterations=1)
    _cells[(name, size)] = {
        stage: (statistics.mean(times[stage]), statistics.mean(tuples[stage]))
        for stage in STAGES
    }
    # Result counts never shrink under disaggregation (Problem 2a adds a
    # grouping dimension; groups can only split or stay).
    for orig_n, dis1_n, dis2_n in zip(tuples["orig"], tuples["dis1"], tuples["dis2"]):
        assert dis1_n >= orig_n
        assert dis2_n >= dis1_n

    if len(_cells) == len(DATASET_NAMES) * len(INPUT_SIZES):
        _emit_tables()


def _emit_tables():
    rows_a, rows_b = [], []
    for name in DATASET_NAMES:
        for size in INPUT_SIZES:
            cell = _cells[(name, size)]
            rows_a.append([name, size] + [fmt_ms(cell[s][0]) for s in STAGES])
            rows_b.append([name, size] + [f"{cell[s][1]:.0f}" for s in STAGES])
    emit(
        "fig8a",
        "Figure 8a: query execution time (Orig / Dis.1 / Dis.2)",
        format_table(["dataset", "input size", "orig", "dis.1", "dis.2"], rows_a),
    )
    emit(
        "fig8b",
        "Figure 8b: result tuples per query (Orig / Dis.1 / Dis.2)",
        format_table(["dataset", "input size", "orig", "dis.1", "dis.2"], rows_b),
    )
