"""Table 1: capability comparison of related approaches.

Spade and REGAL are closed systems we cannot run; their rows are the
paper's published claims.  The RE2xOLAP and SPARQLByE rows, however, are
*demonstrated*: each checkmark for the two systems we implement is backed
by an executable assertion against the Eurostat benchmark KG.
"""

from repro.baselines import SPARQLByE
from repro.core import Disaggregate, reolap

from .helpers import emit, format_table

CAPABILITIES = (
    "RDF", "Large KGs", "Aggregations", "Reformulations",
    "User Input", "Partial Input",
)

PAPER_CLAIMS = {
    "RE2xOLAP": (True, True, True, True, True, True),
    "SPARQLByE": (True, True, False, False, True, True),
    "Spade": (True, False, True, False, False, False),
    "REGAL": (False, False, True, False, True, False),
}


def demonstrate_capabilities(endpoint, vgraph):
    """Executable evidence for the RE2xOLAP and SPARQLByE rows."""
    example = ("Germany", "2010")
    queries = reolap(endpoint, vgraph, example)
    baseline = SPARQLByE(endpoint).reverse_engineer(example)
    demonstrated = {
        # RDF: both operate on an RDF graph through a SPARQL endpoint.
        ("RE2xOLAP", "RDF"): bool(queries),
        ("SPARQLByE", "RDF"): baseline.query is not None,
        # Aggregations: REOLAP emits GROUP BY + aggregates, SPARQLByE never.
        ("RE2xOLAP", "Aggregations"): all(q.to_select().is_aggregate_query for q in queries),
        ("SPARQLByE", "Aggregations"): baseline.has_aggregation,
        # Reformulations: ExRef refines; SPARQLByE has no refinement step.
        ("RE2xOLAP", "Reformulations"): bool(
            Disaggregate(vgraph).propose(queries[0])
        ),
        ("SPARQLByE", "Reformulations"): False,
        # User/Partial input: both accept bare example values without
        # measures (partial tuples).
        ("RE2xOLAP", "User Input"): True,
        ("SPARQLByE", "User Input"): True,
        ("RE2xOLAP", "Partial Input"): all(
            q.anchor_row_indexes(endpoint.select(q.to_select())) for q in queries
        ),
        ("SPARQLByE", "Partial Input"): baseline.query is not None,
    }
    return demonstrated


def test_table1_capabilities(benchmark, endpoints, vgraphs):
    endpoint, vgraph = endpoints["eurostat"], vgraphs["eurostat"]
    demonstrated = benchmark.pedantic(
        demonstrate_capabilities, args=(endpoint, vgraph), rounds=1, iterations=1
    )

    # Every demonstrable cell must agree with the paper's claims.
    for (system, capability), observed in demonstrated.items():
        claimed = PAPER_CLAIMS[system][CAPABILITIES.index(capability)]
        assert observed == claimed, (system, capability)

    rows = []
    for system, claims in PAPER_CLAIMS.items():
        cells = []
        for capability, claimed in zip(CAPABILITIES, claims):
            mark = "yes" if claimed else "-"
            if (system, capability) in demonstrated:
                mark += "*"
            cells.append(mark)
        rows.append([system] + cells)
    emit(
        "table1",
        "Table 1: capability comparison (* = demonstrated by this run)",
        format_table(["system"] + list(CAPABILITIES), rows),
    )
