"""Extension operators: Slice and Roll-up cost and output counts.

Not in the paper's figures (the operators complete the OLAP algebra of
Section 4.2 beyond the shipped ExRef suite); benchmarked with the same
protocol as Figure 9 so the numbers are comparable: generation time and
number of proposals at the Orig / Dis.1 stages, plus the executed size of
the refined queries relative to the base.
"""

import statistics

import pytest

from repro.core import Disaggregate, Rollup, Slice, reolap

from .conftest import DATASET_NAMES, sample_inputs
from .helpers import emit, fmt_ms, format_table, timed


@pytest.mark.parametrize("name", ["eurostat", "production"])
def test_extension_refinements(benchmark, name, datasets, endpoints, vgraphs):
    endpoint, vgraph = endpoints[name], vgraphs[name]
    base_queries = []
    for example in sample_inputs(datasets[name], 2, count=4, seed=7000):
        try:
            base_queries.extend(reolap(endpoint, vgraph, example)[:1])
        except Exception:
            continue
    assert base_queries
    disaggregate = Disaggregate(vgraph)
    methods = {"slice": Slice(), "rollup": Rollup(vgraph, endpoint)}

    def run():
        measurements = {m: {"times": [], "counts": [], "shrink": []} for m in methods}
        for base in base_queries:
            proposals = disaggregate.propose(base)
            staged = [base] + ([proposals[0].query] if proposals else [])
            for query in staged:
                results = endpoint.select(query.to_select())
                for method_name, method in methods.items():
                    refinements, elapsed = timed(method.propose, query, results)
                    measurements[method_name]["times"].append(elapsed)
                    measurements[method_name]["counts"].append(len(refinements))
                    for refinement in refinements[:1]:
                        refined = endpoint.select(refinement.query.to_select())
                        if len(results):
                            measurements[method_name]["shrink"].append(
                                len(refined) / len(results)
                            )
        return measurements

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for method_name, cells in measurements.items():
        rows.append([
            name,
            method_name,
            fmt_ms(statistics.mean(cells["times"])),
            f"{statistics.mean(cells['counts']):.1f}",
            (f"{statistics.mean(cells['shrink']):.2f}x"
             if cells["shrink"] else "n/a"),
        ])
    emit(
        f"extension_refinements_{name}",
        f"Extension operators (Slice / Roll-up) — {name}",
        format_table(
            ["dataset", "method", "mean gen time", "mean #proposals",
             "result size vs base"],
            rows,
        ),
    )
    # Slice always shrinks or keeps; generation stays interactive.
    for cells in measurements.values():
        assert statistics.mean(cells["times"]) < 0.5
    if measurements["slice"]["shrink"]:
        assert statistics.mean(measurements["slice"]["shrink"]) <= 1.0
