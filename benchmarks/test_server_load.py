"""HTTP serving under multi-tenant load: latency percentiles, zero wrong answers.

Drives the :mod:`repro.server` front-end the way the paper's "many
analysts, one store" deployment would be driven: ``N_TENANTS`` (≥ 8)
concurrent tenants, each with its own keep-alive HTTP connection, issuing
a mixed SELECT/ASK workload whose correct bodies are precomputed from a
clean endpoint.  The acceptance bar is *correct-or-error*: a response is
either byte-identical to the precomputed truth or a mapped error status —
a 200 carrying a wrong body fails the run immediately, under clean serving
and under seeded chaos alike.

Emits ``benchmarks/results/BENCH_server.json`` with per-tenant and overall
p50/p95 latency, throughput, and the error breakdown, so the serving
trajectory is tracked across PRs.

Sizes are environment-tunable so CI can smoke the benchmark quickly::

    REPRO_BENCH_SERVER_TENANTS=8 REPRO_BENCH_SERVER_REQS=20 \
        pytest benchmarks/test_server_load.py
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
import urllib.parse

import pytest

from repro.datasets import generate_eurostat
from repro.resilience import FaultInjector, FaultPlan
from repro.server import serve_in_thread
from repro.serving import QueryService
from repro.sparql.results import to_sparql_json

from .helpers import emit, emit_json, fmt_ms, format_table

N_TENANTS = max(8, int(os.environ.get("REPRO_BENCH_SERVER_TENANTS", "8")))
N_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVER_REQS", "60"))
N_OBSERVATIONS = int(os.environ.get("REPRO_BENCH_SERVER_OBS", "800"))
N_WORKERS = int(os.environ.get("REPRO_BENCH_SERVER_WORKERS", "4"))
CHAOS_SEED = int(os.environ.get("REPRO_BENCH_SERVER_SEED", "13"))

QUERY_SHAPES = (
    "SELECT ?p (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p ORDER BY ?p",
    "SELECT DISTINCT ?p WHERE { ?s ?p ?o } ORDER BY ?p",
    "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s "
    "ORDER BY DESC(?n) ?s LIMIT 10",
    "ASK { ?s ?p ?o }",
)

#: statuses the error-mapping table allows under load/chaos
ERROR_STATUSES = (400, 429, 503, 504)


@pytest.fixture(scope="module")
def kg():
    return generate_eurostat(n_observations=N_OBSERVATIONS, scale=0.3, seed=7)


@pytest.fixture(scope="module")
def truth(kg):
    """Precomputed correct body per query, from a clean endpoint."""
    endpoint = kg.endpoint()
    return {
        query: to_sparql_json(endpoint.query(query)).encode()
        for query in QUERY_SHAPES
    }


def percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def drive(handle, truth, label: str) -> dict:
    """Run the tenant fleet; returns the stats payload, fails on wrong 200s."""
    results: dict[str, dict] = {}
    errors: list[str] = []
    lock = threading.Lock()

    def tenant_worker(tenant: str) -> None:
        connection = http.client.HTTPConnection(
            handle.server.host, handle.server.port, timeout=60)
        latencies: list[float] = []
        answered = errored = 0
        try:
            for i in range(N_REQUESTS):
                query = QUERY_SHAPES[(hash(tenant) + i) % len(QUERY_SHAPES)]
                target = "/sparql?" + urllib.parse.urlencode({"query": query})
                start = time.perf_counter()
                try:
                    connection.request("GET", target,
                                       headers={"X-Repro-Tenant": tenant})
                    response = connection.getresponse()
                    body = response.read()
                except (http.client.HTTPException, OSError):
                    # keep-alive connection dropped; reconnect and retry once
                    connection.close()
                    connection = http.client.HTTPConnection(
                        handle.server.host, handle.server.port, timeout=60)
                    connection.request("GET", target,
                                       headers={"X-Repro-Tenant": tenant})
                    response = connection.getresponse()
                    body = response.read()
                latencies.append(time.perf_counter() - start)
                if response.status == 200:
                    if body != truth[query]:
                        with lock:
                            errors.append(
                                f"{tenant}: wrong 200 body for {query!r}")
                    answered += 1
                elif response.status in ERROR_STATUSES:
                    errored += 1
                else:
                    with lock:
                        errors.append(
                            f"{tenant}: unexpected status {response.status}")
        finally:
            connection.close()
        with lock:
            results[tenant] = {
                "answered": answered,
                "errored": errored,
                "p50": percentile(latencies, 0.50),
                "p95": percentile(latencies, 0.95),
            }

    tenants = [f"tenant-{i:02d}" for i in range(N_TENANTS)]
    threads = [threading.Thread(target=tenant_worker, args=(t,))
               for t in tenants]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    assert not errors, errors[:5]
    all_latencies = [entry[key] for entry in results.values()
                     for key in ("p50", "p95")]
    total = N_TENANTS * N_REQUESTS
    answered = sum(entry["answered"] for entry in results.values())
    errored = sum(entry["errored"] for entry in results.values())
    assert answered + errored == total
    return {
        "label": label,
        "tenants": N_TENANTS,
        "requests_per_tenant": N_REQUESTS,
        "workers": N_WORKERS,
        "observations": N_OBSERVATIONS,
        "answered": answered,
        "errored": errored,
        "incorrect": 0,  # a wrong body would have failed the assert above
        "elapsed": elapsed,
        "throughput": total / elapsed,
        "p50": percentile([e["p50"] for e in results.values()], 0.50),
        "p95": max(e["p95"] for e in results.values()),
        "per_tenant": results,
    }


def test_multi_tenant_load(kg, truth):
    """Clean serving: every tenant gets every answer, zero errors allowed."""
    service = QueryService(kg.endpoint(), workers=N_WORKERS)
    handle = serve_in_thread(service, own_service=True)
    try:
        payload = drive(handle, truth, "clean")
    finally:
        handle.close()
    # The clean run has a hard zero-error floor: nothing is shed, nothing
    # times out, nothing is quota-denied (tenants are unmetered here).
    assert payload["errored"] == 0
    rows = [[t, e["answered"], e["errored"], fmt_ms(e["p50"]),
             fmt_ms(e["p95"])] for t, e in sorted(payload["per_tenant"].items())]
    table = format_table(["tenant", "answered", "errors", "p50", "p95"], rows)
    emit("server_load", f"{N_TENANTS} tenants x {N_REQUESTS} reqs over HTTP "
         f"({payload['throughput']:.0f} req/s)", table)

    chaos_payload = _chaos_run(kg, truth)
    emit_json("server", {
        "clean": payload,
        "chaos": chaos_payload,
        "config": {
            "tenants": N_TENANTS,
            "requests_per_tenant": N_REQUESTS,
            "observations": N_OBSERVATIONS,
            "workers": N_WORKERS,
            "chaos_seed": CHAOS_SEED,
        },
    })


def _chaos_run(kg, truth) -> dict:
    """Chaos variant: seeded faults; correct-or-error, some answers survive."""
    injector = FaultInjector(
        kg.endpoint(),
        FaultPlan.random(CHAOS_SEED, timeout_rate=0.05, transient_rate=0.08,
                         latency_rate=0.10, max_latency=0.002),
    )
    service = QueryService(injector, workers=N_WORKERS, cache_size=0)
    handle = serve_in_thread(service, own_service=True, retries=1)
    try:
        payload = drive(handle, truth, f"chaos(seed={CHAOS_SEED})")
    finally:
        handle.close()
    assert payload["answered"] > 0  # retries must pull some answers through
    return payload
