"""RE2xOLAP reproduction: example-driven exploratory analytics over KGs.

Reproduction of "Example-Driven Exploratory Analytics over Knowledge
Graphs" (Lissandrini, Hose, Pedersen; EDBT 2023).  The package is layered
bottom-up:

* :mod:`repro.rdf` — RDF data model and serializations;
* :mod:`repro.store` — indexed triple store, text index, SPARQL endpoint;
* :mod:`repro.sparql` — SPARQL subset parser / evaluator / builder;
* :mod:`repro.qb` — RDF Data Cube schema descriptors and cube builder;
* :mod:`repro.datasets` — schema-faithful synthetic dataset generators;
* :mod:`repro.core` — the paper's contribution: virtual schema graph,
  REOLAP synthesis, ExRef refinements, and the interactive session;
* :mod:`repro.baselines` — the SPARQLByE comparator;
* :mod:`repro.serving` — concurrent, cache-accelerated query service layer
  (multi-tier result cache, bounded worker pool, session multiplexing);
* :mod:`repro.resilience` — fault injection, retry policy, circuit
  breaker, and graceful degradation for the whole query path.

Quickstart::

    from repro.datasets import generate_eurostat
    from repro.core import ExplorationSession, VirtualSchemaGraph
    from repro.qb import OBSERVATION_CLASS

    kg = generate_eurostat(n_observations=2000, scale=0.2)
    endpoint = kg.endpoint()
    vgraph = VirtualSchemaGraph.bootstrap(endpoint, OBSERVATION_CLASS)
    session = ExplorationSession(endpoint, vgraph)
    for candidate in session.synthesize("Germany", "2014"):
        print(candidate.description)
"""

from .core import (
    AnalyticalView,
    ExplorationSession,
    OLAPQuery,
    Refinement,
    VirtualSchemaGraph,
    contrast,
    insight_summary,
    labeled_results,
    profile,
    reolap,
    reolap_multi,
    reolap_with_negatives,
    suggest,
)
from .errors import (
    AdmissionError,
    BootstrapError,
    CircuitOpenError,
    EndpointUnavailableError,
    QueryEvaluationError,
    QueryTimeoutError,
    RDFSyntaxError,
    RefinementError,
    ReproError,
    RequestShedError,
    SchemaError,
    ServiceShutdownError,
    ServingError,
    SPARQLSyntaxError,
    SynthesisError,
    TransientError,
)
from .resilience import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    ResilientEndpoint,
    RetryPolicy,
)
from .serving import QueryCache, QueryService
from .store import DEFAULT_TIMEOUT, Endpoint, Graph

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ExplorationSession",
    "VirtualSchemaGraph",
    "OLAPQuery",
    "Refinement",
    "AnalyticalView",
    "reolap",
    "reolap_multi",
    "reolap_with_negatives",
    "contrast",
    "suggest",
    "insight_summary",
    "labeled_results",
    "profile",
    "DEFAULT_TIMEOUT",
    "Endpoint",
    "Graph",
    "QueryCache",
    "QueryService",
    "RetryPolicy",
    "CircuitBreaker",
    "ResilientEndpoint",
    "FaultInjector",
    "FaultPlan",
    "ReproError",
    "RDFSyntaxError",
    "SPARQLSyntaxError",
    "QueryEvaluationError",
    "QueryTimeoutError",
    "TransientError",
    "EndpointUnavailableError",
    "CircuitOpenError",
    "RequestShedError",
    "SchemaError",
    "BootstrapError",
    "SynthesisError",
    "RefinementError",
    "ServingError",
    "AdmissionError",
    "ServiceShutdownError",
]
