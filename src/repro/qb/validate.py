"""Integrity validation for statistical knowledge graphs.

Before bootstrapping against an unknown endpoint, a deployment wants to
know whether the data actually forms a well-formed RDF cube: every
observation carries every dimension and measure, members are labelled
(otherwise keyword matching cannot reach them), and rollup edges do not
dangle.  The validator reports violations instead of raising, so callers
can decide whether a partially-broken KG is still explorable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rdf.terms import IRI, Literal
from ..store.graph import Graph
from .cube import CubeBuilder
from .schema import CubeSchema
from .vocabulary import LABEL, OBSERVATION_CLASS, TYPE

__all__ = ["Violation", "ValidationReport", "validate_cube"]


@dataclass(frozen=True)
class Violation:
    """One integrity violation: its kind, subject, and explanation."""

    kind: str
    subject: IRI
    message: str

    def __repr__(self) -> str:
        return f"<Violation {self.kind}: {self.message}>"


@dataclass
class ValidationReport:
    """Collected violations plus summary counters."""

    observations_checked: int = 0
    members_checked: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.kind] = counts.get(violation.kind, 0) + 1
        return counts

    def summary(self) -> str:
        if self.ok:
            return (
                f"OK: {self.observations_checked} observations and "
                f"{self.members_checked} members validated, no violations"
            )
        parts = ", ".join(f"{kind}: {n}" for kind, n in sorted(self.by_kind().items()))
        return (
            f"{len(self.violations)} violations over "
            f"{self.observations_checked} observations ({parts})"
        )


def validate_cube(graph: Graph, schema: CubeSchema, max_violations: int = 1000) -> ValidationReport:
    """Check ``graph`` against the structural expectations of ``schema``.

    Checks, per observation: typing, one member per dimension predicate,
    one numeric literal per measure.  Per member: an ``rdfs:label`` and —
    for non-top hierarchy levels — at least one rollup edge per declared
    step.  Stops collecting after ``max_violations`` (the counters keep
    counting).
    """
    builder = CubeBuilder(schema)
    report = ValidationReport()

    def record(kind: str, subject: IRI, message: str) -> None:
        if len(report.violations) < max_violations:
            report.violations.append(Violation(kind, subject, message))

    dim_predicates = [
        (dimension, builder.dimension_predicate(dimension))
        for dimension in schema.dimensions
    ]
    measure_predicates = [
        (measure, builder.measure_predicate(measure)) for measure in schema.measures
    ]

    for obs in graph.subjects(TYPE, OBSERVATION_CLASS):
        report.observations_checked += 1
        for dimension, predicate in dim_predicates:
            members = list(graph.objects(obs, predicate))
            if not members:
                record("missing-dimension", obs,
                       f"{obs.local_name()} lacks dimension {dimension.name}")
            for member in members:
                if isinstance(member, Literal):
                    record("literal-member", obs,
                           f"{obs.local_name()} points {dimension.name} at a literal")
        for measure, predicate in measure_predicates:
            values = list(graph.objects(obs, predicate))
            if not values:
                record("missing-measure", obs,
                       f"{obs.local_name()} lacks measure {measure.name}")
            for value in values:
                if not (isinstance(value, Literal) and value.is_numeric):
                    record("non-numeric-measure", obs,
                           f"{obs.local_name()} has non-numeric {measure.name}")

    # Checks are deduplicated by (member, required rollup): pools shared
    # between dimensions are validated once per distinct requirement.
    seen_checks: set[tuple[IRI, IRI | None]] = set()
    counted_members: set[IRI] = set()
    for dimension in schema.dimensions:
        for hierarchy in dimension.hierarchies:
            for step in range(len(hierarchy.levels)):
                level = hierarchy.levels[step]
                rollup = (
                    builder.rollup_predicate(hierarchy.rollup_names[step])
                    if step < len(hierarchy.levels) - 1
                    else None
                )
                for index in range(level.size):
                    member = builder.member_iri(level.pool_key, index)
                    check = (member, rollup)
                    if check in seen_checks:
                        continue
                    seen_checks.add(check)
                    if member not in counted_members:
                        counted_members.add(member)
                        report.members_checked += 1
                        if graph.value(member, LABEL, None) is None:
                            record("unlabelled-member", member,
                                   f"{member.local_name()} has no rdfs:label")
                    if rollup is not None and graph.value(member, rollup, None) is None:
                        record("dangling-rollup", member,
                               f"{member.local_name()} lacks {rollup.local_name()}")
    return report
