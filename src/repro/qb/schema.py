"""Cube schema descriptors: dimensions, hierarchies, levels, measures.

These dataclasses describe the multi-dimensional *shape* of a statistical
KG (Section 3 of the paper): a set of dimensions, each composed of one or
more hierarchies of levels, plus a set of numeric measures.  The
:class:`~repro.qb.cube.CubeBuilder` materializes a schema into RDF triples;
the dataset generators instantiate schemas mirroring the paper's three
evaluation datasets.

Conventions used for the paper's Table 3 statistics:

* ``|D|``  — number of dimensions;
* ``|H|``  — number of maximal hierarchy chains over all dimensions;
* ``|L|``  — number of distinct (dimension, level) pairs, i.e. virtual
  schema graph nodes excluding the observation root;
* ``|N_D|`` — total member count summed over all levels (members shared
  between dimensions, e.g. countries of origin and destination, are counted
  once per level they appear in, matching the virtual graph's view).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchemaError

__all__ = ["LevelSpec", "HierarchySpec", "DimensionSpec", "MeasureSpec", "CubeSchema"]


@dataclass(frozen=True)
class LevelSpec:
    """One hierarchy level.

    ``size`` is the number of members the generator creates at this level.
    ``pool`` names a shared member pool: levels in different dimensions
    with the same pool reuse the same member entities (e.g. the *country*
    entities serve both Country of Origin and Country of Destination) —
    this sharing is what makes a user keyword ambiguous and forces REOLAP
    to enumerate multiple interpretations.
    ``parents_per_member`` > 1 produces M-to-N rollups (the DBpedia
    worst case: a song with several genres).
    """

    name: str
    size: int
    pool: str | None = None
    parents_per_member: int = 1
    label_values: tuple[str, ...] | None = None

    def __post_init__(self):
        if self.size < 1:
            raise SchemaError(f"level {self.name!r} must have at least one member")
        if self.parents_per_member < 1:
            raise SchemaError(f"level {self.name!r}: parents_per_member must be >= 1")
        if self.label_values is not None and len(self.label_values) < self.size:
            raise SchemaError(
                f"level {self.name!r}: {len(self.label_values)} labels for {self.size} members"
            )

    @property
    def pool_key(self) -> str:
        """The member-pool identifier (defaults to the level name)."""
        return self.pool or self.name


@dataclass(frozen=True)
class HierarchySpec:
    """A maximal chain of levels, ordered bottom-up (finest first).

    ``rollup_names`` are the predicate local-names linking level *i* to
    level *i + 1*; they default to ``in_<upper level name>``.
    """

    name: str
    levels: tuple[LevelSpec, ...]
    rollup_names: tuple[str, ...] = ()

    def __post_init__(self):
        if not self.levels:
            raise SchemaError(f"hierarchy {self.name!r} has no levels")
        names = [level.name for level in self.levels]
        if len(set(names)) != len(names):
            raise SchemaError(f"hierarchy {self.name!r} repeats a level name")
        expected = len(self.levels) - 1
        if self.rollup_names and len(self.rollup_names) != expected:
            raise SchemaError(
                f"hierarchy {self.name!r}: {len(self.rollup_names)} rollup names "
                f"for {expected} steps"
            )
        if not self.rollup_names and expected:
            object.__setattr__(
                self,
                "rollup_names",
                tuple(f"in_{upper.name}" for upper in self.levels[1:]),
            )

    @property
    def base_level(self) -> LevelSpec:
        return self.levels[0]

    @property
    def depth(self) -> int:
        return len(self.levels)


@dataclass(frozen=True)
class DimensionSpec:
    """A dimension: its observation predicate and its hierarchies.

    All hierarchies of a dimension must share the same base level (the
    standard OLAP constraint: alternative rollup paths from one set of
    members).
    """

    name: str
    hierarchies: tuple[HierarchySpec, ...]
    predicate_name: str | None = None

    def __post_init__(self):
        if not self.hierarchies:
            raise SchemaError(f"dimension {self.name!r} has no hierarchies")
        bases = {h.base_level.name for h in self.hierarchies}
        if len(bases) != 1:
            raise SchemaError(
                f"dimension {self.name!r}: hierarchies disagree on the base level ({bases})"
            )
        base_sizes = {h.base_level.size for h in self.hierarchies}
        if len(base_sizes) != 1:
            raise SchemaError(f"dimension {self.name!r}: base level sizes disagree")

    @property
    def predicate_local_name(self) -> str:
        return self.predicate_name or self.name

    @property
    def base_level(self) -> LevelSpec:
        return self.hierarchies[0].base_level

    def levels(self) -> list[tuple[HierarchySpec, LevelSpec]]:
        """All (hierarchy, level) pairs, deduplicating the shared base."""
        result = [(self.hierarchies[0], self.base_level)]
        for hierarchy in self.hierarchies:
            for level in hierarchy.levels[1:]:
                result.append((hierarchy, level))
        return result


@dataclass(frozen=True)
class MeasureSpec:
    """One numeric measure attached to every observation.

    ``low``/``high`` bound the generated values; ``integral`` controls the
    literal datatype.
    """

    name: str
    low: float = 0.0
    high: float = 1000.0
    integral: bool = True

    def __post_init__(self):
        if self.low > self.high:
            raise SchemaError(f"measure {self.name!r}: low > high")


@dataclass(frozen=True)
class CubeSchema:
    """The complete multi-dimensional schema of a statistical KG."""

    name: str
    dimensions: tuple[DimensionSpec, ...]
    measures: tuple[MeasureSpec, ...]
    namespace: str = "http://example.org/cube/"
    observation_attributes: int = 0

    def __post_init__(self):
        if not self.dimensions:
            raise SchemaError("a cube needs at least one dimension")
        if not self.measures:
            raise SchemaError("a cube needs at least one measure")
        names = [d.name for d in self.dimensions]
        if len(set(names)) != len(names):
            raise SchemaError("dimension names must be unique")
        measure_names = [m.name for m in self.measures]
        if len(set(measure_names)) != len(measure_names):
            raise SchemaError("measure names must be unique")
        if self.observation_attributes < 0:
            raise SchemaError("observation_attributes must be >= 0")

    # -- Table 3 statistics --------------------------------------------------

    @property
    def n_dimensions(self) -> int:
        return len(self.dimensions)

    @property
    def n_measures(self) -> int:
        return len(self.measures)

    @property
    def n_hierarchies(self) -> int:
        return sum(len(d.hierarchies) for d in self.dimensions)

    @property
    def n_levels(self) -> int:
        return sum(len(d.levels()) for d in self.dimensions)

    @property
    def n_members(self) -> int:
        """Total |N_D|: members summed per (dimension, level) pair."""
        return sum(level.size for d in self.dimensions for _, level in d.levels())

    def describe(self) -> dict[str, int]:
        """The Table 3 row for this schema."""
        return {
            "D": self.n_dimensions,
            "M": self.n_measures,
            "H": self.n_hierarchies,
            "L": self.n_levels,
            "N_D": self.n_members,
        }
