"""Materializing a cube schema into RDF triples.

:class:`CubeBuilder` turns a :class:`~repro.qb.schema.CubeSchema` plus an
observation count into a statistical knowledge graph laid out exactly as
Section 3 describes (and Figure 1 depicts):

* one node per observation, typed ``qb:Observation``;
* a dimension-predicate edge from each observation to a base-level member
  per dimension;
* rollup edges between members of adjacent hierarchy levels (M-to-N when
  the schema asks for it);
* an ``rdfs:label`` literal on every member and predicate — the attribute
  predicates REOLAP's keyword matching resolves against;
* one numeric measure literal per measure per observation;
* QB / QB4OLAP annotation triples (``qb4o:memberOf`` etc.) that the
  SPARQLByE baseline uses and the virtual-graph crawler ignores.

Generation is fully deterministic for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import SchemaError
from ..rdf.namespace import Namespace
from ..rdf.terms import IRI, Literal, XSD_DOUBLE, XSD_INTEGER
from ..rdf.triple import Triple
from ..store.endpoint import Endpoint
from ..store.graph import Graph
from .schema import CubeSchema, DimensionSpec, HierarchySpec, LevelSpec, MeasureSpec
from .vocabulary import (
    DIMENSION_PROPERTY,
    LABEL,
    LEVEL_CLASS,
    MEASURE_PROPERTY,
    MEMBER_OF,
    OBSERVATION_CLASS,
    ROLLS_UP_TO,
    TYPE,
)

__all__ = ["CubeBuilder", "StatisticalKG", "Member"]


@dataclass(frozen=True)
class Member:
    """One generated dimension member: its IRI and display label."""

    iri: IRI
    label: str


@dataclass
class StatisticalKG:
    """A generated statistical knowledge graph plus its bookkeeping.

    ``members`` maps ``(dimension name, level name)`` to the generated
    members of that level — the ground truth benchmarks sample example
    tuples from.  ``level_iri`` maps the same key to the level's schema
    IRI (used by annotations and the SPARQLByE baseline).
    """

    schema: CubeSchema
    graph: Graph
    n_observations: int
    members: dict[tuple[str, str], list[Member]] = field(default_factory=dict)
    level_iri: dict[tuple[str, str], IRI] = field(default_factory=dict)

    def endpoint(self, **kwargs) -> Endpoint:
        """A SPARQL endpoint over this KG's graph."""
        return Endpoint(self.graph, **kwargs)

    def members_of(self, dimension: str, level: str) -> list[Member]:
        key = (dimension, level)
        if key not in self.members:
            raise KeyError(f"no level {level!r} in dimension {dimension!r}")
        return list(self.members[key])

    def sample_member(self, rng: random.Random, dimension: str | None = None) -> tuple[str, str, Member]:
        """A random (dimension, level, member) triple, for workload generation."""
        keys = sorted(k for k in self.members if dimension is None or k[0] == dimension)
        if not keys:
            raise KeyError(f"no members for dimension {dimension!r}")
        dim, level = keys[rng.randrange(len(keys))]
        candidates = self.members[(dim, level)]
        return dim, level, candidates[rng.randrange(len(candidates))]

    @property
    def n_triples(self) -> int:
        return len(self.graph)

    def describe(self) -> dict[str, int]:
        """Dataset characteristics in the shape of the paper's Table 3."""
        stats = self.schema.describe()
        stats["observations"] = self.n_observations
        stats["triples"] = self.n_triples
        return stats


class CubeBuilder:
    """Generates a :class:`StatisticalKG` from a schema, deterministically."""

    def __init__(self, schema: CubeSchema, seed: int = 0, annotate: bool = True):
        self.schema = schema
        self.seed = seed
        self.annotate = annotate
        self.ns = Namespace(schema.namespace)

    # -- IRI layout -----------------------------------------------------------

    def dimension_predicate(self, dimension: DimensionSpec) -> IRI:
        return self.ns.term(f"prop/{dimension.predicate_local_name}")

    def rollup_predicate(self, name: str) -> IRI:
        return self.ns.term(f"prop/{name}")

    def measure_predicate(self, measure: MeasureSpec) -> IRI:
        return self.ns.term(f"measure/{measure.name}")

    def attribute_predicate(self, index: int) -> IRI:
        return self.ns.term(f"prop/attr_{index}")

    def member_iri(self, pool: str, index: int) -> IRI:
        return self.ns.term(f"member/{pool}/{index}")

    def observation_iri(self, index: int) -> IRI:
        return self.ns.term(f"obs/{index}")

    def level_schema_iri(self, dimension: DimensionSpec, level: LevelSpec) -> IRI:
        return self.ns.term(f"level/{dimension.name}/{level.name}")

    # -- generation ---------------------------------------------------------

    def build(self, n_observations: int, graph: Graph | None = None) -> StatisticalKG:
        """Generate the full KG with ``n_observations`` observations."""
        if n_observations < 0:
            raise SchemaError("n_observations must be >= 0")
        rng = random.Random(self.seed)
        graph = graph if graph is not None else Graph()
        kg = StatisticalKG(self.schema, graph, n_observations)
        pools = self._build_member_pools(rng, graph, kg)
        self._build_hierarchy_edges(rng, graph, pools)
        self._annotate_schema(graph, kg)
        self._build_observations(rng, graph, kg, pools, n_observations)
        return kg

    def _build_member_pools(
        self, rng: random.Random, graph: Graph, kg: StatisticalKG
    ) -> dict[str, list[Member]]:
        """Create the member entities, one pool per distinct pool key."""
        pools: dict[str, list[Member]] = {}
        for dimension in self.schema.dimensions:
            for hierarchy, level in dimension.levels():
                key = level.pool_key
                if key in pools:
                    if len(pools[key]) != level.size:
                        raise SchemaError(
                            f"pool {key!r} used with sizes {len(pools[key])} and {level.size}"
                        )
                else:
                    pools[key] = self._generate_pool(rng, graph, key, level)
                kg.members[(dimension.name, level.name)] = pools[key]
        return pools

    def _generate_pool(
        self, rng: random.Random, graph: Graph, key: str, level: LevelSpec
    ) -> list[Member]:
        members: list[Member] = []
        for index in range(level.size):
            if level.label_values is not None:
                label = level.label_values[index]
            else:
                label = f"{key.replace('_', ' ').title()} {index}"
            member = Member(self.member_iri(key, index), label)
            graph.add(Triple(member.iri, LABEL, Literal(label)))
            members.append(member)
        return members

    def _build_hierarchy_edges(
        self, rng: random.Random, graph: Graph, pools: dict[str, list[Member]]
    ) -> None:
        """Link each member to its parent(s) in the next level up.

        The parent assignment is a deterministic function of the *pool pair
        and predicate*, so dimensions sharing pools (origin/destination
        countries) share one consistent rollup structure, exactly like the
        shared ``In_Continent`` edges of Figure 1.
        """
        done: set[tuple[str, str, str]] = set()
        for dimension in self.schema.dimensions:
            for hierarchy in dimension.hierarchies:
                for step in range(len(hierarchy.levels) - 1):
                    lower, upper = hierarchy.levels[step], hierarchy.levels[step + 1]
                    predicate_name = hierarchy.rollup_names[step]
                    signature = (lower.pool_key, upper.pool_key, predicate_name)
                    if signature in done:
                        continue
                    done.add(signature)
                    predicate = self.rollup_predicate(predicate_name)
                    # Seed per signature: the structure must not depend on
                    # the order dimensions are declared in.
                    step_rng = random.Random(f"{self.seed}:{signature}")
                    lower_members = pools[lower.pool_key]
                    upper_members = pools[upper.pool_key]
                    fan = min(upper.parents_per_member, len(upper_members))
                    for child_index, child in enumerate(lower_members):
                        # Every parent keeps at least one child (round-robin
                        # base), extra parents drawn at random for M-to-N.
                        base_parent = upper_members[child_index % len(upper_members)]
                        parents = {base_parent.iri}
                        while len(parents) < fan:
                            parents.add(upper_members[step_rng.randrange(len(upper_members))].iri)
                        for parent_iri in sorted(parents, key=lambda i: i.value):
                            graph.add(Triple(child.iri, predicate, parent_iri))

    def _annotate_schema(self, graph: Graph, kg: StatisticalKG) -> None:
        """Emit labels and QB/QB4OLAP typing for predicates and levels."""
        for dimension in self.schema.dimensions:
            predicate = self.dimension_predicate(dimension)
            graph.add(Triple(predicate, LABEL, Literal(_title(dimension.predicate_local_name))))
            if self.annotate:
                graph.add(Triple(predicate, TYPE, DIMENSION_PROPERTY))
            for hierarchy, level in dimension.levels():
                level_iri = self.level_schema_iri(dimension, level)
                kg.level_iri[(dimension.name, level.name)] = level_iri
                graph.add(Triple(level_iri, LABEL, Literal(_title(level.name))))
                if self.annotate:
                    graph.add(Triple(level_iri, TYPE, LEVEL_CLASS))
                    for member in kg.members[(dimension.name, level.name)]:
                        graph.add(Triple(member.iri, MEMBER_OF, level_iri))
            if self.annotate:
                for hierarchy in dimension.hierarchies:
                    for step in range(len(hierarchy.levels) - 1):
                        lower = self.level_schema_iri(dimension, hierarchy.levels[step])
                        upper = self.level_schema_iri(dimension, hierarchy.levels[step + 1])
                        graph.add(Triple(lower, ROLLS_UP_TO, upper))
            for hierarchy in dimension.hierarchies:
                for name in hierarchy.rollup_names:
                    predicate = self.rollup_predicate(name)
                    graph.add(Triple(predicate, LABEL, Literal(_title(name))))
        for measure in self.schema.measures:
            predicate = self.measure_predicate(measure)
            graph.add(Triple(predicate, LABEL, Literal(_title(measure.name))))
            if self.annotate:
                graph.add(Triple(predicate, TYPE, MEASURE_PROPERTY))

    def _build_observations(
        self,
        rng: random.Random,
        graph: Graph,
        kg: StatisticalKG,
        pools: dict[str, list[Member]],
        n_observations: int,
    ) -> None:
        dim_predicates = [
            (self.dimension_predicate(d), pools[d.base_level.pool_key])
            for d in self.schema.dimensions
        ]
        measure_predicates = [(self.measure_predicate(m), m) for m in self.schema.measures]
        attr_predicates = [
            self.attribute_predicate(i) for i in range(self.schema.observation_attributes)
        ]
        for index in range(n_observations):
            obs = self.observation_iri(index)
            graph.add(Triple(obs, TYPE, OBSERVATION_CLASS))
            for predicate, members in dim_predicates:
                member = members[rng.randrange(len(members))]
                graph.add(Triple(obs, predicate, member.iri))
            for predicate, measure in measure_predicates:
                # Squared uniform: a right-skewed value distribution so
                # top-k / percentile refinements have distinguishable tails.
                raw = measure.low + (measure.high - measure.low) * rng.random() ** 2
                if measure.integral:
                    literal = Literal(str(int(raw)), datatype=XSD_INTEGER)
                else:
                    literal = Literal(repr(raw), datatype=XSD_DOUBLE)
                graph.add(Triple(obs, predicate, literal))
            for position, predicate in enumerate(attr_predicates):
                graph.add(Triple(obs, predicate, Literal(f"note {index}.{position}")))


def _title(name: str) -> str:
    """``country_of_origin`` → ``Country Of Origin`` (predicate labels)."""
    return name.replace("_", " ").title()
