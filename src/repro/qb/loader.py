"""Loading statistical KGs from tabular (CSV) data.

Most published statistical data starts life as tables; the related work
the paper builds on explores "enterprise data lakes (usually CSV files)".
This loader turns a table of observations into a QB-structured graph the
system can bootstrap directly: one observation per row, one dimension per
categorical column (with optional hierarchy columns rolling members up),
one measure per numeric column.

>>> table = [
...     {"destination": "Germany", "continent": "Europe", "applicants": "10"},
...     {"destination": "France", "continent": "Europe", "applicants": "20"},
... ]
>>> kg_graph = load_table(
...     table,
...     dimensions={"destination": "continent"},
...     measures=["applicants"],
... )
"""

from __future__ import annotations

import csv
from typing import IO, Iterable, Mapping, Sequence

from ..errors import SchemaError
from ..rdf.namespace import Namespace
from ..rdf.terms import IRI, Literal, XSD_DOUBLE, XSD_INTEGER
from ..rdf.triple import Triple
from ..store.graph import Graph
from .vocabulary import LABEL, OBSERVATION_CLASS, TYPE

__all__ = ["load_table", "load_csv"]


def load_table(
    rows: Iterable[Mapping[str, str]],
    dimensions: Mapping[str, str | None],
    measures: Sequence[str],
    namespace: str = "http://example.org/table/",
    graph: Graph | None = None,
) -> Graph:
    """Build a statistical KG from dictionaries (one observation per row).

    ``dimensions`` maps each dimension column to the column holding its
    parent level (or ``None`` for flat dimensions): ``{"destination":
    "continent"}`` makes ``continent`` a rollup level of ``destination``.
    ``measures`` lists numeric columns.  Member IRIs are minted per
    distinct cell value and labelled with the cell text.  Rows with
    missing dimension cells are rejected; missing measure cells are
    skipped (observation without that measure).
    """
    if not dimensions:
        raise SchemaError("at least one dimension column is required")
    if not measures:
        raise SchemaError("at least one measure column is required")
    overlap = set(dimensions) & set(measures)
    if overlap:
        raise SchemaError(f"columns {sorted(overlap)} are both dimension and measure")
    hierarchy_columns = {parent for parent in dimensions.values() if parent}

    ns = Namespace(namespace)
    graph = graph if graph is not None else Graph()
    members: dict[tuple[str, str], IRI] = {}

    def member_for(column: str, value: str) -> IRI:
        key = (column, value)
        existing = members.get(key)
        if existing is not None:
            return existing
        iri = ns.term(f"member/{column}/{len([k for k in members if k[0] == column])}")
        members[key] = iri
        graph.add(Triple(iri, LABEL, Literal(value)))
        return iri

    for column in list(dimensions) + sorted(hierarchy_columns):
        predicate = ns.term(f"prop/{column}")
        graph.add(Triple(predicate, LABEL, Literal(column.replace("_", " ").title())))
    for column in measures:
        predicate = ns.term(f"measure/{column}")
        graph.add(Triple(predicate, LABEL, Literal(column.replace("_", " ").title())))

    count = 0
    for index, row in enumerate(rows):
        obs = ns.term(f"obs/{index}")
        emitted_measure = False
        for column, parent_column in dimensions.items():
            value = (row.get(column) or "").strip()
            if not value:
                raise SchemaError(f"row {index}: missing dimension cell {column!r}")
            member = member_for(column, value)
            graph.add(Triple(obs, ns.term(f"prop/{column}"), member))
            if parent_column:
                parent_value = (row.get(parent_column) or "").strip()
                if not parent_value:
                    raise SchemaError(
                        f"row {index}: missing hierarchy cell {parent_column!r}"
                    )
                parent = member_for(parent_column, parent_value)
                graph.add(Triple(member, ns.term(f"prop/{parent_column}"), parent))
        for column in measures:
            cell = (row.get(column) or "").strip()
            if not cell:
                continue
            graph.add(Triple(obs, ns.term(f"measure/{column}"), _numeric_literal(cell, index, column)))
            emitted_measure = True
        if emitted_measure:
            graph.add(Triple(obs, TYPE, OBSERVATION_CLASS))
            count += 1
        else:
            raise SchemaError(f"row {index}: no measure value in any of {list(measures)}")
    if count == 0:
        raise SchemaError("the table contained no rows")
    return graph


def load_csv(
    source: IO[str],
    dimensions: Mapping[str, str | None],
    measures: Sequence[str],
    namespace: str = "http://example.org/table/",
    delimiter: str = ",",
) -> Graph:
    """Like :func:`load_table`, reading rows from an open CSV file."""
    reader = csv.DictReader(source, delimiter=delimiter)
    return load_table(reader, dimensions, measures, namespace=namespace)


def _numeric_literal(cell: str, index: int, column: str) -> Literal:
    try:
        int(cell)
        return Literal(cell, datatype=XSD_INTEGER)
    except ValueError:
        pass
    try:
        float(cell)
        return Literal(cell, datatype=XSD_DOUBLE)
    except ValueError:
        raise SchemaError(
            f"row {index}: measure {column!r} holds non-numeric value {cell!r}"
        ) from None
