"""RDF Data Cube layer: schema descriptors, vocabulary, cube builder."""

from .cube import CubeBuilder, Member, StatisticalKG
from .loader import load_csv, load_table
from .schema import CubeSchema, DimensionSpec, HierarchySpec, LevelSpec, MeasureSpec
from .validate import ValidationReport, Violation, validate_cube
from .vocabulary import (
    DIMENSION_PROPERTY,
    LABEL,
    LEVEL_CLASS,
    MEASURE_PROPERTY,
    MEMBER_OF,
    OBSERVATION_CLASS,
    ROLLS_UP_TO,
    TYPE,
)

__all__ = [
    "CubeSchema",
    "DimensionSpec",
    "HierarchySpec",
    "LevelSpec",
    "MeasureSpec",
    "CubeBuilder",
    "StatisticalKG",
    "Member",
    "validate_cube",
    "ValidationReport",
    "Violation",
    "load_table",
    "load_csv",
    "OBSERVATION_CLASS",
    "MEASURE_PROPERTY",
    "DIMENSION_PROPERTY",
    "LEVEL_CLASS",
    "MEMBER_OF",
    "ROLLS_UP_TO",
    "TYPE",
    "LABEL",
]
