"""RDF Data Cube (QB) vocabulary terms used by statistical KGs.

The paper's only structural assumption is that "all relevant observations
are instances of a predefined RDF class (e.g., qb:Observation)".  These
constants name that class and the related QB / QB4OLAP terms so generated
cubes carry standard, interoperable annotations.
"""

from __future__ import annotations

from ..rdf.namespace import QB, QB4O, RDF, RDFS, SKOS

__all__ = [
    "OBSERVATION_CLASS",
    "DATASET_CLASS",
    "MEASURE_PROPERTY",
    "DIMENSION_PROPERTY",
    "LEVEL_CLASS",
    "HIERARCHY_CLASS",
    "MEMBER_OF",
    "ROLLS_UP_TO",
    "TYPE",
    "LABEL",
    "BROADER",
]

#: The class every observation node is an instance of (qb:Observation).
OBSERVATION_CLASS = QB.Observation

#: qb:DataSet — groups observations belonging to one cube.
DATASET_CLASS = QB.DataSet

#: qb:MeasureProperty — the class of measure predicates.
MEASURE_PROPERTY = QB.MeasureProperty

#: qb:DimensionProperty — the class of dimension predicates.
DIMENSION_PROPERTY = QB.DimensionProperty

#: qb4o:LevelProperty — the class of hierarchy levels.
LEVEL_CLASS = QB4O.LevelProperty

#: qb4o:Hierarchy — the class of dimension hierarchies.
HIERARCHY_CLASS = QB4O.Hierarchy

#: qb4o:memberOf — links a member to its level.
MEMBER_OF = QB4O.memberOf

#: qb4o:rollsUpTo — schema-level link between levels.
ROLLS_UP_TO = QB4O.rollsUpTo

TYPE = RDF.type
LABEL = RDFS.label
BROADER = SKOS.broader
