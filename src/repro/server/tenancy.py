"""Multi-tenant admission: token-bucket quotas and fair dispatch.

Two mechanisms keep one tenant from eating the whole serving layer:

* :class:`TokenBucket` — the per-tenant *rate* quota.  A tenant spending
  faster than its refill rate is denied admission immediately with
  :class:`~repro.errors.QuotaExceededError` (HTTP 429 + Retry-After at
  the protocol layer), before its request touches any shared resource.

* :class:`FairDispatcher` — the per-tenant *ordering* guarantee.  Each
  tenant gets its own bounded FIFO lane; a dispatcher thread hands work
  to the shared :class:`~repro.serving.executor.ServingExecutor` in
  round-robin order over the lanes **and only when a worker is free**, so
  the executor's internal queue stays empty and a hot tenant with a deep
  backlog cannot push another tenant's single request behind it.  The
  wait a slow tenant observes is bounded by (number of active tenants ×
  one request's service time), not by the hot tenant's queue depth.

Both are plain threading constructs: the asyncio front-end awaits the
returned futures via ``asyncio.wrap_future``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from ..errors import (
    AdmissionError,
    QuotaExceededError,
    RequestShedError,
    ServiceShutdownError,
)
from ..serving.executor import ServingExecutor

__all__ = ["FairDispatcher", "TenantStats", "TokenBucket"]


class TokenBucket:
    """Classic token bucket: ``burst`` capacity refilled at ``rate``/s.

    ``rate=None`` (or ``<= 0``) builds an unlimited bucket that always
    grants — the default for trusted/internal tenants.  Thread-safe.
    """

    def __init__(self, rate: float | None, burst: float = 1.0,
                 clock=time.monotonic):
        if rate is not None and rate > 0 and burst < 1:
            raise ValueError("burst must allow at least one request")
        self.rate = None if rate is None or rate <= 0 else float(rate)
        self.burst = float(burst)
        self._tokens = self.burst
        self._clock = clock
        self._updated = clock()
        self._lock = threading.Lock()

    def try_take(self, cost: float = 1.0) -> float:
        """Spend ``cost`` tokens if available.

        Returns ``0.0`` on success, otherwise the seconds until the bucket
        will hold enough tokens (the Retry-After hint).  Never blocks.
        """
        if self.rate is None:
            return 0.0
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst,
                               self._tokens + (now - self._updated) * self.rate)
            self._updated = now
            if self._tokens >= cost:
                self._tokens -= cost
                return 0.0
            return (cost - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token count (refreshed); monitoring only."""
        if self.rate is None:
            return float("inf")
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst,
                               self._tokens + (now - self._updated) * self.rate)
            self._updated = now
            return self._tokens


@dataclass
class TenantStats:
    """Lifetime counters for one tenant's lane."""

    submitted: int = 0
    completed: int = 0
    errors: int = 0  # dispatched requests that raised (timeouts included)
    quota_denied: int = 0  # token-bucket rejections (HTTP 429)
    rejected: int = 0  # lane-full rejections (HTTP 503)
    shed: int = 0  # dispatched but deadline-expired in queue (HTTP 503)

    def snapshot(self) -> "TenantStats":
        return TenantStats(self.submitted, self.completed, self.errors,
                           self.quota_denied, self.rejected, self.shed)


@dataclass
class _Item:
    future: Future
    fn: object
    args: tuple
    kwargs: dict
    deadline: float | None
    started: bool = False  # future already moved to RUNNING (requeue path)


@dataclass
class _Lane:
    """One tenant's FIFO queue plus its quota bucket and counters."""

    name: str
    bucket: TokenBucket
    queue: deque = field(default_factory=deque)
    stats: TenantStats = field(default_factory=TenantStats)


class FairDispatcher:
    """Round-robin, quota-checked admission in front of a ServingExecutor.

    ``max_queue`` bounds each tenant's lane (overflow is backpressure,
    :class:`~repro.errors.AdmissionError`); ``quota_rate``/``quota_burst``
    are the defaults for lanes created on first sight of a tenant —
    :meth:`configure_tenant` overrides per tenant.
    """

    def __init__(
        self,
        executor: ServingExecutor,
        max_queue: int = 64,
        quota_rate: float | None = None,
        quota_burst: float = 1.0,
    ):
        self._executor = executor
        self.max_queue = max_queue
        self._default_quota = (quota_rate, quota_burst)
        self._cond = threading.Condition()
        self._lanes: dict[str, _Lane] = {}
        self._order: list[str] = []
        self._rr = 0
        self._dispatched = 0  # items handed to the executor, not yet done
        self._closing = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-fair-dispatch", daemon=True
        )
        self._thread.start()

    # -- tenant management -------------------------------------------------

    def _lane(self, tenant: str) -> _Lane:
        lane = self._lanes.get(tenant)
        if lane is None:
            rate, burst = self._default_quota
            lane = _Lane(tenant, TokenBucket(rate, burst))
            self._lanes[tenant] = lane
            self._order.append(tenant)
        return lane

    def configure_tenant(self, tenant: str, quota_rate: float | None,
                         quota_burst: float = 1.0) -> None:
        """Install a tenant-specific quota (replacing the default bucket)."""
        with self._cond:
            self._lane(tenant).bucket = TokenBucket(quota_rate, quota_burst)

    def tenant_stats(self) -> dict[str, TenantStats]:
        with self._cond:
            return {name: lane.stats.snapshot()
                    for name, lane in self._lanes.items()}

    @property
    def pending(self) -> int:
        with self._cond:
            return sum(len(lane.queue) for lane in self._lanes.values())

    # -- submission --------------------------------------------------------

    def submit(self, tenant: str, fn, /, *args,
               deadline: float | None = None, **kwargs) -> Future:
        """Admit one request for ``tenant``; returns a Future.

        Raises :class:`QuotaExceededError` when the tenant's bucket is
        empty, :class:`AdmissionError` when its lane is full, and
        :class:`ServiceShutdownError` after :meth:`shutdown`.
        """
        with self._cond:
            if self._closing:
                raise ServiceShutdownError("dispatcher has been shut down")
            lane = self._lane(tenant)
            wait = lane.bucket.try_take()
            if wait > 0.0:
                lane.stats.quota_denied += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} exceeded its request quota; "
                    f"retry in {wait:.3f}s",
                    retry_after=wait,
                )
            if len(lane.queue) >= self.max_queue:
                lane.stats.rejected += 1
                raise AdmissionError(
                    f"tenant {tenant!r} lane full "
                    f"({self.max_queue} queued); retry later"
                )
            future: Future = Future()
            lane.queue.append(_Item(future, fn, args, kwargs, deadline))
            lane.stats.submitted += 1
            self._cond.notify_all()
            return future

    # -- the dispatch loop -------------------------------------------------

    def _free_worker(self) -> bool:
        """Only hand out work while a pool worker is idle.

        Keeping the executor's internal queue empty is what makes the
        round-robin order *the* execution order — otherwise a burst would
        FIFO-queue inside the pool and starve later lanes anyway.
        """
        return self._executor.stats.in_flight < self._executor.workers

    def _next_item(self) -> tuple[_Lane, _Item] | None:
        n = len(self._order)
        for offset in range(n):
            index = (self._rr + offset) % n
            lane = self._lanes[self._order[index]]
            if lane.queue:
                self._rr = (index + 1) % n
                return lane, lane.queue.popleft()
        return None

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while True:
                    has_work = any(lane.queue for lane in self._lanes.values())
                    if has_work and self._free_worker():
                        break
                    if self._closing and not has_work and self._dispatched == 0:
                        return
                    # Timed wait: worker-free transitions are signalled by
                    # done-callbacks, but a small timeout also rides over
                    # executor churn without a lost-wakeup hazard.
                    self._cond.wait(0.02)
                picked = self._next_item()
                if picked is None:
                    continue
                lane, item = picked
                self._dispatched += 1
            if not item.started:
                if not item.future.set_running_or_notify_cancel():
                    with self._cond:
                        self._dispatched -= 1
                        self._cond.notify_all()
                    continue
                item.started = True
            try:
                inner = self._executor.submit(
                    item.fn, *item.args, deadline=item.deadline, **item.kwargs
                )
            except AdmissionError:
                # Lost a race for the last slot; put the item back at the
                # head of its lane and try again.
                with self._cond:
                    lane.queue.appendleft(item)
                    self._dispatched -= 1
                continue
            except BaseException as error:
                with self._cond:
                    lane.stats.errors += 1
                    self._dispatched -= 1
                    self._cond.notify_all()
                item.future.set_exception(error)
                continue
            inner.add_done_callback(
                lambda f, lane=lane, outer=item.future: self._finish(lane, f, outer)
            )

    def _finish(self, lane: _Lane, inner: Future, outer: Future) -> None:
        error = None if inner.cancelled() else inner.exception()
        with self._cond:
            self._dispatched -= 1
            if inner.cancelled() or error is not None:
                if isinstance(error, RequestShedError):
                    lane.stats.shed += 1
                else:
                    lane.stats.errors += 1
            else:
                lane.stats.completed += 1
            self._cond.notify_all()
        if inner.cancelled():
            outer.cancel()
        elif error is not None:
            outer.set_exception(error)
        else:
            outer.set_result(inner.result())

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop admitting; drain every queued request, then stop the loop.

        Draining (rather than cancelling) is what lets the HTTP layer
        promise that accepted requests always get a real response.
        """
        with self._cond:
            if self._closing:
                if wait:
                    pass  # fall through to join below
                else:
                    return
            self._closing = True
            self._cond.notify_all()
        if wait:
            self._thread.join()

    def __repr__(self) -> str:
        state = "closing" if self._closing else "running"
        return (f"<FairDispatcher {state}: {len(self._lanes)} tenants, "
                f"{self.pending} pending>")
