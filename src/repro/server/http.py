"""Minimal asyncio HTTP/1.1 layer for the SPARQL front-end.

Stdlib only: connections are ``asyncio`` streams, requests are parsed by
hand (request line, headers, ``Content-Length`` bodies — the subset the
SPARQL protocol and the session API need), and every response carries an
explicit ``Content-Length`` so keep-alive works without chunking.

The piece that matters for serving is the lifecycle: :class:`HTTPServer`
counts in-flight requests, and :meth:`HTTPServer.stop` *drains* — it stops
accepting new connections, lets every request already being handled finish
and flush its response, then closes the remaining idle connections.  No
accepted request is ever dropped with a half-written response.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = ["HTTPError", "HTTPServer", "Request", "Response"]

#: Request-size guard rails (the session API and SPARQL queries are small).
MAX_REQUEST_LINE = 64 * 1024
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    406: "Not Acceptable",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HTTPError(Exception):
    """Raised by request parsing; turns into a 400-family response."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str  # raw request target, e.g. ``/sparql?query=...``
    path: str  # decoded path component
    params: dict[str, list[str]]  # decoded query-string parameters
    headers: dict[str, str]  # keys lower-cased
    body: bytes = b""

    def param(self, name: str, default: str | None = None) -> str | None:
        """First value of a query-string parameter."""
        values = self.params.get(name)
        return values[0] if values else default

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def form(self) -> dict[str, list[str]]:
        """The body parsed as ``application/x-www-form-urlencoded``."""
        try:
            return parse_qs(self.body.decode("utf-8"),
                            keep_blank_values=True)
        except UnicodeDecodeError as exc:
            raise HTTPError(400, f"undecodable form body: {exc}") from exc


@dataclass
class Response:
    """One HTTP response; the server adds framing headers on the wire."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: list[tuple[str, str]] = field(default_factory=list)

    def encode(self, *, close: bool) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        lines.append(f"Content-Type: {self.content_type}")
        lines.append(f"Content-Length: {len(self.body)}")
        lines.extend(f"{name}: {value}" for name, value in self.headers)
        lines.append("Connection: close" if close else "Connection: keep-alive")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


Handler = Callable[[Request], Awaitable[Response]]


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # connection closed between requests
        raise HTTPError(400, "truncated request line") from exc
    except asyncio.LimitOverrunError as exc:
        raise HTTPError(400, "request line too long") from exc
    if len(line) > MAX_REQUEST_LINE:
        raise HTTPError(400, "request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HTTPError(400, f"malformed request line: {line!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    total = 0
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
            raise HTTPError(400, "truncated headers") from exc
        total += len(raw)
        if total > MAX_HEADER_BYTES:
            raise HTTPError(400, "headers too large")
        text = raw.decode("latin-1").rstrip("\r\n")
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header line: {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HTTPError(400, f"bad Content-Length: {length_text!r}") from exc
        if length < 0:
            raise HTTPError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise HTTPError(413, f"body of {length} bytes exceeds the limit")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HTTPError(400, "truncated body") from exc
    elif headers.get("transfer-encoding"):
        raise HTTPError(400, "chunked request bodies are not supported")

    split = urlsplit(target)
    return Request(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        params=parse_qs(split.query, keep_blank_values=True),
        headers=headers,
        body=body,
    )


class HTTPServer:
    """An asyncio TCP server dispatching requests to one async handler."""

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0):
        self._handler = handler
        self.host = host
        self.port = port
        self._server: asyncio.Server | None = None
        self._closing = False
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._connections: set[asyncio.StreamWriter] = set()

    @property
    def inflight(self) -> int:
        return self._inflight

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port,
            limit=MAX_REQUEST_LINE,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, close idle."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Every request currently inside the handler finishes and flushes.
        await self._idle.wait()
        for writer in list(self._connections):
            writer.close()

    async def _respond(self, writer: asyncio.StreamWriter,
                       response: Response, *, close: bool) -> None:
        writer.write(response.encode(close=close))
        await writer.drain()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HTTPError as error:
                    body = f'{{"error": {{"type": "http", "message": "{error}"}}}}'
                    await self._respond(
                        writer,
                        Response(error.status, body.encode("utf-8")),
                        close=True,
                    )
                    return
                if request is None:
                    return
                if self._closing:
                    # The listener is closed but this keep-alive connection
                    # raced a new request in; refuse it cleanly.
                    await self._respond(
                        writer,
                        Response(
                            503,
                            b'{"error": {"type": "shutdown", '
                            b'"message": "server is shutting down"}}',
                            headers=[("Retry-After", "1")],
                        ),
                        close=True,
                    )
                    return
                self._inflight += 1
                self._idle.clear()
                try:
                    try:
                        response = await self._handler(request)
                    except Exception as error:  # handler bug: keep serving
                        message = f"{type(error).__name__}: {error}"
                        response = Response(
                            500,
                            ('{"error": {"type": "internal", "message": '
                             + _json_quote(message) + "}}").encode("utf-8"),
                        )
                    close = (self._closing
                             or request.header("connection").lower() == "close")
                    await self._respond(writer, response, close=close)
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                if close:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to flush
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
            except Exception:
                pass


def _json_quote(text: str) -> str:
    import json

    return json.dumps(text)
