"""The SPARQL-protocol HTTP application over a :class:`QueryService`.

:class:`ReproServer` is the wiring layer: it owns an
:class:`~repro.server.http.HTTPServer`, a
:class:`~repro.server.tenancy.FairDispatcher` over the service's worker
pool, a per-tenant table of
:class:`~repro.resilience.ResilientEndpoint` decorators (own retry
budget, own circuit breaker, own serve-stale tier — one tenant's tripped
breaker never sheds another tenant's queries), and the tenant-scoped
:class:`~repro.server.sessions.SessionRegistry`.

Routes::

    GET|POST /sparql           SPARQL protocol (JSON/CSV/TSV via Accept)
    POST     /sessions         open an exploration session
    GET      /sessions         list this tenant's session ids
    GET      /sessions/{id}    session state (steps, failures, current)
    DELETE   /sessions/{id}    close a session
    POST     /sessions/{id}/steps   run one exploration step
    GET      /stats            serving/endpoint/tenant counters as JSON
    GET      /healthz          liveness probe

Error mapping (the serving contract on the wire):

    ===============================  ======  =========================
    condition                        status  extras
    ===============================  ======  =========================
    parse / malformed request        400
    unknown path or session          404
    wrong method                     405
    unsupported Accept               406
    unsupported request media type   415
    tenant quota exhausted           429     Retry-After
    lane full / shed / breaker open  503     Retry-After
    shutting down                    503     Retry-After
    evaluation timeout               504
    transient endpoint fault         503     Retry-After
    anything else                    500
    ===============================  ======  =========================

Tenancy is declared with the ``X-Repro-Tenant`` header (default
``public``).  Degraded REOLAP answers are *not* errors: they come back
``200`` with ``"degraded": true`` in the body, exactly mirroring the
in-process resilience contract.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
from dataclasses import asdict

from ..errors import (
    AdmissionError,
    CircuitOpenError,
    QueryTimeoutError,
    QuotaExceededError,
    ReproError,
    RequestShedError,
    ServiceShutdownError,
    SPARQLSyntaxError,
    TransientError,
)
from ..qb import OBSERVATION_CLASS
from ..rdf import IRI
from ..serving.service import QueryService
from ..store.endpoint import DEFAULT_TIMEOUT
from ..store.graph import Graph
from .http import HTTPError, HTTPServer, Request, Response
from .protocol import extract_query, negotiate
from .sessions import SessionRegistry, run_step, session_state
from .tenancy import FairDispatcher

__all__ = ["ReproServer", "ServerHandle", "serve_in_thread"]

#: Header carrying the tenant identity; absent means the shared tenant.
TENANT_HEADER = "x-repro-tenant"
DEFAULT_TENANT = "public"


def _json_response(document: dict, status: int = 200,
                   headers: list[tuple[str, str]] | None = None) -> Response:
    return Response(
        status=status,
        body=(json.dumps(document) + "\n").encode("utf-8"),
        content_type="application/json",
        headers=headers or [],
    )


def _error_document(status: int, kind: str, message: str) -> dict:
    return {"error": {"type": kind, "message": message, "status": status}}


class ReproServer:
    """Asyncio HTTP front-end over one shared :class:`QueryService`."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        observation_class: IRI = OBSERVATION_CLASS,
        quota_rate: float | None = None,
        quota_burst: float = 20.0,
        max_queue: int = 64,
        retries: int = 0,
        breaker: bool = False,
        serve_stale: bool = False,
        request_deadline: float | None = None,
        own_service: bool = False,
    ):
        self.service = service
        self.observation_class = observation_class
        self.request_deadline = request_deadline
        self._own_service = own_service
        self._resilience_config = (retries, breaker, serve_stale)
        self._http = HTTPServer(self._handle, host, port)
        self._dispatcher = FairDispatcher(
            service.executor,
            max_queue=max_queue,
            quota_rate=quota_rate,
            quota_burst=quota_burst,
        )
        self._sessions = SessionRegistry()
        self._endpoints: dict[str, object] = {}
        self._endpoints_lock = threading.Lock()
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._http.host

    @property
    def port(self) -> int:
        return self._http.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        await self._http.start()

    async def stop(self) -> None:
        """Graceful shutdown: drain HTTP, drain the dispatcher, then close.

        Ordering matters: in-flight HTTP handlers are awaiting dispatcher
        futures, so the HTTP drain transitively waits for their queries;
        the dispatcher drain then clears anything admitted but never
        awaited, and only afterwards (when owning the service) is the
        worker pool shut down.
        """
        if self._stopped:
            return
        self._stopped = True
        await self._http.stop()
        await asyncio.get_running_loop().run_in_executor(
            None, self._dispatcher.shutdown)
        if self._own_service:
            await asyncio.get_running_loop().run_in_executor(
                None, self.service.shutdown)

    # -- tenancy -----------------------------------------------------------

    def configure_tenant(self, tenant: str, quota_rate: float | None,
                         quota_burst: float = 1.0) -> None:
        self._dispatcher.configure_tenant(tenant, quota_rate, quota_burst)

    def _tenant_endpoint(self, tenant: str):
        """This tenant's query interface over the shared guarded endpoint."""
        with self._endpoints_lock:
            endpoint = self._endpoints.get(tenant)
            if endpoint is None:
                retries, breaker, serve_stale = self._resilience_config
                if retries or breaker or serve_stale:
                    from ..resilience import (
                        CircuitBreaker,
                        ResilientEndpoint,
                        RetryPolicy,
                    )

                    endpoint = ResilientEndpoint(
                        self.service.endpoint,
                        retry=RetryPolicy(max_retries=retries) if retries else None,
                        breaker=CircuitBreaker() if breaker or serve_stale else None,
                        serve_stale=serve_stale,
                    )
                else:
                    endpoint = self.service.endpoint
                self._endpoints[tenant] = endpoint
            return endpoint

    def _deadline(self) -> float | None:
        if self.request_deadline is None:
            return None
        import time

        return time.monotonic() + self.request_deadline

    async def _dispatch(self, tenant: str, fn, /, *args, **kwargs):
        """Run blocking engine work through the fair, quota-checked lane."""
        future = self._dispatcher.submit(
            tenant, fn, *args, deadline=self._deadline(), **kwargs)
        return await asyncio.wrap_future(future)

    # -- request handling --------------------------------------------------

    async def _handle(self, request: Request) -> Response:
        tenant = request.header(TENANT_HEADER, DEFAULT_TENANT) or DEFAULT_TENANT
        try:
            return await self._route(request, tenant)
        except HTTPError as error:
            headers = []
            if error.status in (429, 503):
                headers.append(("Retry-After", "1"))
            return _json_response(
                _error_document(error.status, "http", str(error)),
                status=error.status, headers=headers)
        except QuotaExceededError as error:
            retry_after = max(1, math.ceil(error.retry_after))
            return _json_response(
                _error_document(429, "quota", str(error)),
                status=429, headers=[("Retry-After", str(retry_after))])
        except RequestShedError as error:
            # Before QueryTimeoutError: a shed request never ran at all.
            return _json_response(
                _error_document(503, "shed", str(error)),
                status=503, headers=[("Retry-After", "1")])
        except (AdmissionError, CircuitOpenError) as error:
            return _json_response(
                _error_document(503, "overloaded", str(error)),
                status=503, headers=[("Retry-After", "1")])
        except ServiceShutdownError as error:
            return _json_response(
                _error_document(503, "shutdown", str(error)),
                status=503, headers=[("Retry-After", "1")])
        except QueryTimeoutError as error:
            return _json_response(
                _error_document(504, "timeout", str(error)), status=504)
        except TransientError as error:
            return _json_response(
                _error_document(503, "unavailable", str(error)),
                status=503, headers=[("Retry-After", "1")])
        except SPARQLSyntaxError as error:
            return _json_response(
                _error_document(400, "parse", str(error)), status=400)
        except ReproError as error:
            return _json_response(
                _error_document(400, type(error).__name__, str(error)),
                status=400)

    async def _route(self, request: Request, tenant: str) -> Response:
        path = request.path.rstrip("/") or "/"
        if path == "/sparql":
            return await self._handle_sparql(request, tenant)
        if path == "/sessions":
            if request.method == "POST":
                return await self._handle_open_session(request, tenant)
            if request.method == "GET":
                return _json_response({"sessions": self._sessions.ids(tenant)})
            raise HTTPError(405, f"method {request.method} not allowed")
        if path.startswith("/sessions/"):
            rest = path[len("/sessions/"):]
            if rest.endswith("/steps"):
                session_id = rest[: -len("/steps")]
                if request.method != "POST":
                    raise HTTPError(405, "steps are POST-only")
                return await self._handle_step(request, tenant, session_id)
            if request.method == "GET":
                return _json_response(
                    session_state(self._sessions.get(rest, tenant)))
            if request.method == "DELETE":
                self._sessions.close(rest, tenant)
                return _json_response({"closed": rest})
            raise HTTPError(405, f"method {request.method} not allowed")
        if path == "/stats":
            if request.method != "GET":
                raise HTTPError(405, "stats are GET-only")
            return _json_response(self.stats_document())
        if path == "/healthz":
            return _json_response({"status": "ok"})
        raise HTTPError(404, f"no route for {request.path!r}")

    async def _handle_sparql(self, request: Request, tenant: str) -> Response:
        text, timeout = extract_query(request)
        writer, content_type = negotiate(request.header("accept"))
        endpoint = self._tenant_endpoint(tenant)
        if timeout is DEFAULT_TIMEOUT:
            # Resolve the sentinel here, at the boundary: the dispatcher's
            # deadline composition needs the real value, and an explicit
            # 0/None from the client must stay distinguishable from
            # "no preference".
            timeout = endpoint.default_timeout
        result = await self._dispatch(tenant, endpoint.query, text,
                                      timeout=timeout)
        if isinstance(result, Graph):
            return Response(
                200,
                result.to_ntriples().encode("utf-8"),
                content_type="application/n-triples; charset=utf-8",
            )
        return Response(200, writer(result).encode("utf-8"),
                        content_type=content_type)

    def _json_body(self, request: Request) -> dict:
        if not request.body:
            return {}
        try:
            document = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"malformed JSON body: {exc}") from exc
        if not isinstance(document, dict):
            raise HTTPError(400, "JSON body must be an object")
        return document

    async def _handle_open_session(self, request: Request,
                                   tenant: str) -> Response:
        document = self._json_body(request)
        raw_class = document.get("observation_class")
        if raw_class is not None and not isinstance(raw_class, str):
            raise HTTPError(400, "observation_class must be a string IRI")
        observation_class = (
            IRI(raw_class) if raw_class else self.observation_class)
        endpoint = self._tenant_endpoint(tenant)

        def open_session():
            service_id = self.service.open_session(
                observation_class, endpoint=endpoint)
            return self.service.session(service_id), service_id

        # Session bootstrap crawls the schema, so it runs on the tenant's
        # lane like any other query work.
        session, service_id = await self._dispatch(tenant, open_session)
        managed = self._sessions.create(tenant, session,
                                        str(observation_class))
        managed.service_id = service_id
        return _json_response(
            {
                "session": managed.id,
                "tenant": tenant,
                "observation_class": str(observation_class),
                "refinement_kinds": session.refinement_kinds(),
            },
            status=201,
        )

    async def _handle_step(self, request: Request, tenant: str,
                           session_id: str) -> Response:
        managed = self._sessions.get(session_id, tenant)
        payload = self._json_body(request)
        document = await self._dispatch(tenant, run_step, managed, payload)
        return _json_response(document)

    # -- statistics --------------------------------------------------------

    def stats_document(self) -> dict:
        serving = asdict(self.service.stats())
        endpoint_stats = self.service.endpoint.stats.snapshot()
        executor = self.service.executor.stats
        tenants: dict[str, dict] = {}
        for name, stats in self._dispatcher.tenant_stats().items():
            entry = asdict(stats)
            endpoint = self._endpoints.get(name)
            breaker = getattr(endpoint, "breaker", None)
            if breaker is not None:
                entry["breaker_state"] = breaker.state
                entry["breaker_trips"] = breaker.stats.trips
            resilience = getattr(endpoint, "resilience", None)
            if resilience is not None and hasattr(resilience, "snapshot"):
                snap = resilience.snapshot()
                entry["retries"] = snap.retries
                entry["stale_served"] = snap.stale_served
            tenants[name] = entry
        cache = self.service.cache
        cache_tiers = {}
        if cache is not None and hasattr(cache, "stats"):
            cache_tiers = {
                tier: {"hits": s.hits, "misses": s.misses,
                       "evictions": s.evictions}
                for tier, s in cache.stats.items()
            }
        graph = getattr(self.service.endpoint, "graph", None)
        durability = getattr(graph, "durability_stats", None)
        document = {
            "serving": serving,
            "endpoint": {
                "select_queries": endpoint_stats.select_queries,
                "ask_queries": endpoint_stats.ask_queries,
                "construct_queries": endpoint_stats.construct_queries,
                "keyword_lookups": endpoint_stats.keyword_lookups,
                "timeouts": endpoint_stats.timeouts,
                "cache_hits": endpoint_stats.cache_hits,
                "batch_asks": endpoint_stats.batch_asks,
                "compiled_selects": endpoint_stats.compiled_selects,
                "fallback_selects": endpoint_stats.fallback_selects,
                "fused_aggregates": endpoint_stats.fused_aggregates,
                "fallback_aggregates": endpoint_stats.fallback_aggregates,
                "decline_reasons": dict(endpoint_stats.decline_reasons),
            },
            "executor": {
                "workers": self.service.executor.workers,
                "submitted": executor.submitted,
                "completed": executor.completed,
                "failed": executor.failed,
                "rejected": executor.rejected,
                "deadline_expired": executor.deadline_expired,
                "in_flight": executor.in_flight,
            },
            "cache": cache_tiers,
            "tenants": tenants,
            "sessions": len(self._sessions),
            "http": {"inflight": self._http.inflight,
                     "pending": self._dispatcher.pending},
        }
        if callable(durability):
            document["durability"] = durability()
        return document


class ServerHandle:
    """A :class:`ReproServer` running on its own event-loop thread.

    The engine is synchronous and thread-based; tests, the CLI, and the
    benchmarks drive the server from plain threads, so the event loop
    lives on a dedicated daemon thread and this handle bridges the two
    worlds.  ``close()`` performs the full graceful shutdown and joins.
    """

    def __init__(self, server: ReproServer):
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-server-loop", daemon=True)
        self._closed = False

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        self._loop.run_forever()
        # run_forever returned: stop() already ran its coroutine.
        self._loop.close()

    def start(self) -> "ServerHandle":
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        return self

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def port(self) -> int:
        return self.server.port

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        future = asyncio.run_coroutine_threadsafe(self.server.stop(),
                                                  self._loop)
        future.result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=60)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_in_thread(service: QueryService, host: str = "127.0.0.1",
                    port: int = 0, **kwargs) -> ServerHandle:
    """Start a :class:`ReproServer` on a background thread; returns handle."""
    return ServerHandle(ReproServer(service, host, port, **kwargs)).start()
