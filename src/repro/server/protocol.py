"""SPARQL 1.1 protocol plumbing: query extraction and content negotiation.

Implements the protocol surface of the endpoint:

* ``GET /sparql?query=...`` — query in the URL;
* ``POST /sparql`` with ``application/x-www-form-urlencoded`` — query (and
  optional ``timeout``) as form fields;
* ``POST /sparql`` with ``application/sparql-query`` — the query text as
  the raw request body ("direct POST").

Result formats are negotiated from the ``Accept`` header against
:data:`repro.sparql.results.SERIALIZERS` (SPARQL JSON is the default and
the ``*/*`` answer); CONSTRUCT results are returned as N-Triples.

``timeout`` is this server's one protocol extension: seconds as a float,
``0`` meaning an already-expired budget (the request is admitted and
immediately times out — useful for probing) and ``none`` meaning no
evaluation timeout at all.  Both are passed through literally; only an
*absent* parameter falls back to the service's default timeout.
"""

from __future__ import annotations

from ..sparql.results import SERIALIZERS
from ..store.endpoint import DEFAULT_TIMEOUT
from .http import HTTPError, Request

__all__ = ["extract_query", "negotiate", "parse_timeout"]

#: Accept values treated as "no preference".
_WILDCARDS = ("*/*", "application/*", "text/*")


def parse_timeout(raw: str | None):
    """Map the ``timeout`` parameter to an endpoint timeout argument.

    ``None`` (parameter absent) → the :data:`DEFAULT_TIMEOUT` sentinel, so
    the endpoint's configured default applies.  ``"none"`` → ``None``
    (explicitly unlimited).  Anything else must be a non-negative float —
    including ``"0"``, which is honored literally as an already-expired
    deadline rather than being swallowed by a truthiness check.
    """
    if raw is None:
        return DEFAULT_TIMEOUT
    if raw.strip().lower() in ("none", "off"):
        return None
    try:
        value = float(raw)
    except ValueError:
        raise HTTPError(400, f"malformed timeout parameter: {raw!r}") from None
    if value < 0:
        raise HTTPError(400, f"timeout must be >= 0, got {raw!r}")
    return value


def extract_query(request: Request) -> tuple[str, object]:
    """The query text and timeout argument of one SPARQL-protocol request."""
    if request.method == "GET":
        text = request.param("query")
        if text is None:
            raise HTTPError(400, "missing query parameter")
        return text, parse_timeout(request.param("timeout"))
    if request.method != "POST":
        raise HTTPError(405, f"method {request.method} not allowed on /sparql")
    content_type = request.header("content-type").split(";")[0].strip().lower()
    if content_type == "application/sparql-query":
        try:
            text = request.body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise HTTPError(400, f"undecodable query body: {exc}") from exc
        return text, parse_timeout(request.param("timeout"))
    if content_type in ("application/x-www-form-urlencoded", ""):
        form = request.form()
        values = form.get("query")
        if not values:
            raise HTTPError(400, "missing query form field")
        timeout_values = form.get("timeout") or [None]
        return values[0], parse_timeout(timeout_values[0])
    raise HTTPError(
        415,
        f"unsupported content type {content_type!r}; use "
        "application/sparql-query or application/x-www-form-urlencoded",
    )


def negotiate(accept: str):
    """Pick a SELECT/ASK serializer for an ``Accept`` header.

    Returns ``(writer, content_type)``.  Absent/wildcard Accept headers
    get SPARQL JSON; an Accept listing only unsupported types is a 406.
    q-values are honored in listing order (ties keep client order).
    """
    if not accept or not accept.strip():
        return SERIALIZERS["application/sparql-results+json"]
    candidates = []
    for position, part in enumerate(accept.split(",")):
        fields = part.strip().split(";")
        media = fields[0].strip().lower()
        if not media:
            continue
        quality = 1.0
        for field in fields[1:]:
            name, _, value = field.strip().partition("=")
            if name.strip() == "q":
                try:
                    quality = float(value)
                except ValueError:
                    quality = 0.0
        candidates.append((-quality, position, media))
    for _quality, _position, media in sorted(candidates):
        if media in _WILDCARDS:
            return SERIALIZERS["application/sparql-results+json"]
        if media in SERIALIZERS:
            return SERIALIZERS[media]
    raise HTTPError(
        406,
        f"no supported result format in Accept: {accept!r}; offered: "
        + ", ".join(sorted(set(SERIALIZERS) - {"application/json"})),
    )
