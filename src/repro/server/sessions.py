"""The JSON session API: exploration steps over the wire.

Each HTTP session wraps one
:class:`~repro.core.session.ExplorationSession` (driven through the
shared :class:`~repro.serving.service.QueryService`) and belongs to one
tenant — a session id never resolves for another tenant, so one analyst's
exploration state is invisible to the next.

Steps arrive as JSON ``{"action": ..., ...}`` documents and are executed
under a per-session lock (an exploration is a sequential dialogue; two
concurrent steps on one session would interleave its state).  The
response carries the session's resilience verdict verbatim: ``ok``,
``degraded`` (REOLAP lost probes to endpoint faults and returned a
partial answer), and the absorbed error message, so a remote client sees
exactly what an in-process driver would.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..core.olap_query import OLAPQuery
from ..core.session import ExplorationSession, StepOutcome
from ..sparql.results import ResultSet, binding_json
from .http import HTTPError

__all__ = ["ManagedSession", "SessionRegistry", "run_step", "session_state"]


@dataclass
class ManagedSession:
    """One HTTP-visible exploration session and its serving bookkeeping."""

    id: str
    tenant: str
    session: ExplorationSession
    observation_class: str
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: last refinement menu per kind, so ``apply`` indexes stay stable
    #: between a ``refinements`` call and the follow-up ``apply``.
    proposals: dict[str, list] = field(default_factory=dict)
    steps_taken: int = 0
    service_id: str | None = None  # the QueryService-side session id


class SessionRegistry:
    """Tenant-scoped session table."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: dict[str, ManagedSession] = {}
        self._seq = 0

    def create(self, tenant: str, session: ExplorationSession,
               observation_class: str) -> ManagedSession:
        with self._lock:
            self._seq += 1
            sid = f"s{self._seq}"
            managed = ManagedSession(sid, tenant, session, observation_class)
            self._sessions[sid] = managed
            return managed

    def get(self, session_id: str, tenant: str) -> ManagedSession:
        with self._lock:
            managed = self._sessions.get(session_id)
        # A foreign tenant's session id answers exactly like a missing one:
        # existence must not leak across tenants.
        if managed is None or managed.tenant != tenant:
            raise HTTPError(404, f"no session {session_id!r}")
        return managed

    def close(self, session_id: str, tenant: str) -> None:
        self.get(session_id, tenant)
        with self._lock:
            self._sessions.pop(session_id, None)

    def ids(self, tenant: str) -> list[str]:
        with self._lock:
            return sorted(sid for sid, managed in self._sessions.items()
                          if managed.tenant == tenant)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)


# -- JSON shapes -------------------------------------------------------------


def _query_json(query: OLAPQuery) -> dict:
    return {"description": query.description, "sparql": query.sparql()}


def _results_json(results: ResultSet) -> dict:
    names = [variable.name for variable in results.variables]
    return {
        "vars": names,
        "size": len(results),
        "bindings": [
            {name: binding_json(value)
             for name, value in zip(names, row) if value is not None}
            for row in results.rows
        ],
    }


def _candidates_json(candidates: list[OLAPQuery]) -> list[dict]:
    return [
        {"index": index, **_query_json(candidate)}
        for index, candidate in enumerate(candidates)
    ]


def _menu_json(kind: str, proposals: list) -> list[dict]:
    return [
        {"index": index, "kind": kind, "explanation": proposal.explanation}
        for index, proposal in enumerate(proposals)
    ]


def _outcome_json(outcome: StepOutcome) -> dict:
    return {
        "action": outcome.action,
        "ok": outcome.ok,
        "degraded": outcome.degraded,
        "error": outcome.error,
    }


def run_step(managed: ManagedSession, payload: dict) -> dict:
    """Execute one step document against a managed session; blocking.

    Runs on a serving worker thread (dispatched through the fair
    executor); the per-session lock serializes steps of one dialogue.
    Endpoint faults are absorbed by the session's resilience contract and
    reported in the outcome; malformed step documents raise
    :class:`HTTPError` (→ 400) before touching the session.
    """
    action = payload.get("action")
    if not isinstance(action, str):
        raise HTTPError(400, "step document needs a string 'action' field")
    with managed.lock:
        session = managed.session
        if action == "synthesize":
            values = payload.get("values")
            if (not isinstance(values, list) or not values
                    or not all(isinstance(v, str) for v in values)):
                raise HTTPError(
                    400, "synthesize needs 'values': a non-empty string list")
            outcome = session.step("synthesize", *values)
            managed.proposals.clear()
            document = _outcome_json(outcome)
            document["candidates"] = _candidates_json(outcome.value or [])
            if session.last_report is not None:
                document["probe_failures"] = session.last_report.probe_failures
            managed.steps_taken += 1
            return document
        if action == "choose":
            index = payload.get("index")
            if not isinstance(index, int) or isinstance(index, bool):
                raise HTTPError(400, "choose needs an integer 'index' field")
            outcome = session.step("choose", index)
            document = _outcome_json(outcome)
            if outcome.ok and outcome.value is not None:
                document["query"] = _query_json(session.query)
                document["results"] = _results_json(outcome.value)
            managed.steps_taken += 1
            return document
        if action in ("refinements", "all_refinements"):
            if action == "refinements":
                kind = payload.get("kind")
                if not isinstance(kind, str):
                    raise HTTPError(400, "refinements needs a string 'kind'")
                outcome = session.step("refinements", kind)
                menus = {kind: outcome.value or []}
            else:
                outcome = session.step("all_refinements")
                menus = outcome.value or {}
            document = _outcome_json(outcome)
            document["refinements"] = {}
            for kind, proposals in menus.items():
                managed.proposals[kind] = list(proposals)
                document["refinements"][kind] = _menu_json(kind, proposals)
            managed.steps_taken += 1
            return document
        if action == "apply":
            kind = payload.get("kind")
            index = payload.get("index")
            if not isinstance(kind, str):
                raise HTTPError(400, "apply needs a string 'kind' field")
            if not isinstance(index, int) or isinstance(index, bool):
                raise HTTPError(400, "apply needs an integer 'index' field")
            proposals = managed.proposals.get(kind)
            if proposals is None:
                menu = session.step("refinements", kind)
                proposals = menu.value or []
                managed.proposals[kind] = list(proposals)
            if not 0 <= index < len(proposals):
                raise HTTPError(
                    400,
                    f"refinement index {index} out of range "
                    f"(the {kind!r} menu has {len(proposals)} entries)",
                )
            outcome = session.step(
                "apply", proposals[index], options_offered=len(proposals))
            document = _outcome_json(outcome)
            if outcome.ok and outcome.value is not None:
                document["query"] = _query_json(session.query)
                document["results"] = _results_json(outcome.value)
                managed.proposals.clear()
            managed.steps_taken += 1
            return document
        if action == "back":
            outcome = session.step("back")
            document = _outcome_json(outcome)
            if outcome.ok and outcome.value is not None:
                managed.proposals.clear()
                document["query"] = _query_json(outcome.value.query)
            managed.steps_taken += 1
            return document
    raise HTTPError(
        400,
        f"unknown action {action!r}; expected synthesize, choose, "
        "refinements, all_refinements, apply, or back",
    )


def session_state(managed: ManagedSession) -> dict:
    """The GET /sessions/{id} document."""
    with managed.lock:
        session = managed.session
        steps = [
            {
                "kind": step.kind,
                "description": step.query.description,
                "n_tuples": step.n_tuples,
                "options_offered": step.options_offered,
                "elapsed": step.elapsed,
            }
            for step in session.history
        ]
        failures = [
            {"kind": failure.kind, "error": failure.error,
             "error_type": failure.error_type}
            for failure in session.failures
        ]
        current = None
        if steps:
            current = _query_json(session.query)
        return {
            "session": managed.id,
            "tenant": managed.tenant,
            "observation_class": managed.observation_class,
            "steps_taken": managed.steps_taken,
            "steps": steps,
            "failures": failures,
            "degraded_steps": len(failures),
            "current": current,
        }
