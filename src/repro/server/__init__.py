"""The network front-end: SPARQL protocol + exploration sessions over HTTP.

This subsystem turns the in-process engine into a served system — the
wire protocol the ROADMAP's "millions of users" target needs:

* :mod:`repro.server.http` — a stdlib-only asyncio HTTP/1.1 server with
  keep-alive and draining (graceful) shutdown;
* :mod:`repro.server.protocol` — SPARQL 1.1 protocol query extraction
  and result-format content negotiation;
* :mod:`repro.server.tenancy` — per-tenant token-bucket quotas and the
  round-robin :class:`FairDispatcher` in front of the shared worker pool;
* :mod:`repro.server.sessions` — the JSON session API driving
  :class:`~repro.core.session.ExplorationSession` steps remotely;
* :mod:`repro.server.app` — :class:`ReproServer`, the routing/error-mapping
  layer, plus :class:`ServerHandle` / :func:`serve_in_thread` for running
  the event loop on a background thread (tests, CLI, benchmarks).
"""

from .app import DEFAULT_TENANT, TENANT_HEADER, ReproServer, ServerHandle, serve_in_thread
from .http import HTTPError, HTTPServer, Request, Response
from .sessions import ManagedSession, SessionRegistry
from .tenancy import FairDispatcher, TenantStats, TokenBucket

__all__ = [
    "DEFAULT_TENANT",
    "FairDispatcher",
    "HTTPError",
    "HTTPServer",
    "ManagedSession",
    "ReproServer",
    "Request",
    "Response",
    "ServerHandle",
    "SessionRegistry",
    "TENANT_HEADER",
    "TenantStats",
    "TokenBucket",
    "serve_in_thread",
]
