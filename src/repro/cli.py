"""Command-line interface: exploration shell, one-shot queries, serving.

Three entry points share one data-loading pipeline:

* the interactive exploration shell (the default, mirroring the paper's
  server + UI deployment at REPL scale)::

      python -m repro --dataset eurostat --observations 2000 --scale 0.4

* one-shot query execution with a wire-format flag::

      python -m repro query "SELECT ..." --format csv

* the SPARQL-protocol HTTP server (see :mod:`repro.server`)::

      python -m repro serve --port 8080 --workers 8 --quota-rate 50

Commands inside the shell::

    find <v1>, <v2>, ...   synthesize queries from example values
    pick <n>               choose candidate n and run it
    show [n]               print up to n rows of the current results
    sparql                 print the current query's SPARQL text
    refine <kind>          list (ranked) refinements: disaggregate,
                           topk, percentile, similarity
    apply <kind> <n>       apply refinement n of that kind
    back                   backtrack one step
    profile                print the dataset profile
    help / quit

The shell is a thin, testable layer: every command is handled by
:meth:`ExplorerShell.handle`, which returns the text to print.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO

from .core import (
    ExplorationSession,
    VirtualSchemaGraph,
    contrast,
    insight_summary,
    labeled_results,
    profile,
    rank_refinements,
    to_markdown,
)
from .datasets import generate_dbpedia, generate_eurostat, generate_production
from .errors import ReproError
from .qb import OBSERVATION_CLASS
from .rdf import IRI
from .serving import QueryCache, QueryService
from .store import Endpoint, Graph

__all__ = ["ExplorerShell", "build_endpoint", "main"]

_GENERATORS = {
    "eurostat": generate_eurostat,
    "production": generate_production,
    "dbpedia": generate_dbpedia,
}


def build_endpoint(args: argparse.Namespace) -> tuple[Endpoint, IRI]:
    """Construct the endpoint from CLI arguments (dataset or N-Triples file).

    When ``--cache-size`` is positive (the default) the endpoint gets a
    :class:`QueryCache`, so repeated REOLAP probes and re-executed
    refinements are served from memory.  With ``--chaos-seed`` the
    endpoint is wrapped in a deterministic
    :class:`~repro.resilience.FaultInjector` — a demo (and test) mode
    that makes the store misbehave like a remote endpoint under load, so
    the ``--retries``/``--breaker`` machinery has something to absorb.
    """
    cache = QueryCache(max_results=args.cache_size) if getattr(
        args, "cache_size", 0) > 0 else None
    compile_queries = not getattr(args, "no_compile", False)
    exec_kwargs = dict(
        compile=compile_queries,
        vectorize=not getattr(args, "no_vectorize", False),
        batch_size=getattr(args, "batch_size", None),
        parallel=getattr(args, "parallel", None),
    )
    if getattr(args, "data_dir", None):
        # Durable boot: recover snapshot + WAL tail; a brand-new directory
        # is seeded from the configured source and checkpointed once, so
        # the second boot never re-ingests.
        graph = Graph.open_durable(args.data_dir)
        if len(graph) == 0:
            if args.ntriples:
                with open(args.ntriples, encoding="utf-8") as handle:
                    source = Graph.from_ntriples(handle)
            else:
                generator = _GENERATORS[args.dataset]
                source = generator(n_observations=args.observations,
                                   scale=args.scale, seed=args.seed).graph
            graph.add_all(iter(source))
            graph.checkpoint()
        endpoint = Endpoint(graph, cache=cache, **exec_kwargs)
        return endpoint, IRI(args.observation_class)
    if getattr(args, "snapshot", None):
        # O(file open) bootstrap: the columns are mmap'd, terms decode
        # lazily, and several processes given the same file share pages.
        graph = Graph.load_snapshot(args.snapshot)
        endpoint = Endpoint(graph, cache=cache, **exec_kwargs)
        return endpoint, IRI(args.observation_class)
    if args.ntriples:
        with open(args.ntriples, encoding="utf-8") as handle:
            graph = Graph.from_ntriples(handle)
        endpoint = Endpoint(graph, cache=cache, **exec_kwargs)
        observation_class = IRI(args.observation_class)
    else:
        generator = _GENERATORS[args.dataset]
        kg = generator(n_observations=args.observations, scale=args.scale, seed=args.seed)
        endpoint = kg.endpoint(**exec_kwargs)
        endpoint.cache = cache
        observation_class = OBSERVATION_CLASS
    chaos_seed = getattr(args, "chaos_seed", None)
    if chaos_seed is not None:
        from .resilience import FaultInjector, FaultPlan

        endpoint = FaultInjector(
            endpoint,
            FaultPlan.random(
                chaos_seed,
                timeout_rate=0.05,
                transient_rate=0.10,
                latency_rate=0.10,
                max_latency=0.002,
            ),
        )
    return endpoint, observation_class


def _close_durable(endpoint) -> None:
    """Checkpoint and close a durable store on clean shutdown.

    A clean exit compacts the WAL into a fresh snapshot generation, so
    the next boot is a pure mmap load with no replay.  No-op for plain
    in-memory graphs.  Crashes skip this — that is what the WAL is for.
    """
    graph = getattr(endpoint, "graph", None)
    if hasattr(graph, "checkpoint") and not getattr(graph, "closed", True):
        graph.checkpoint()
        graph.close()


def _render_declines(decline_reasons: dict) -> str:
    """Per-reason decline tally, most frequent first; ``decline-free``
    when the compiled engine accepted every query."""
    if not decline_reasons:
        return "decline-free"
    ranked = sorted(decline_reasons.items(), key=lambda kv: (-kv[1], kv[0]))
    return ", ".join(f"{reason} {count}" for reason, count in ranked)


class ExplorerShell:
    """Stateful command handler behind the REPL."""

    def __init__(self, endpoint: Endpoint, observation_class: IRI,
                 service: QueryService | None = None):
        self.service = service
        if service is not None:
            # Route everything through the service's metered, read-locked
            # endpoint so the stats command sees the whole workload.
            self.endpoint = service.endpoint
            self.vgraph = service.vgraph(observation_class)
            self._session_id = service.open_session(observation_class)
            self.session = service.session(self._session_id)
        else:
            self.endpoint = endpoint
            self.vgraph = VirtualSchemaGraph.bootstrap(endpoint, observation_class)
            self.session = ExplorationSession(endpoint, self.vgraph)
        self._candidates = []
        self._last_proposals: dict[str, list] = {}

    # -- command dispatch ------------------------------------------------------

    def handle(self, line: str) -> str:
        """Execute one command line; returns the text to display."""
        line = line.strip()
        if not line:
            return ""
        command, _, rest = line.partition(" ")
        command = command.lower()
        handlers = {
            "find": self._cmd_find,
            "pick": self._cmd_pick,
            "show": self._cmd_show,
            "sparql": self._cmd_sparql,
            "refine": self._cmd_refine,
            "apply": self._cmd_apply,
            "back": self._cmd_back,
            "profile": self._cmd_profile,
            "stats": self._cmd_stats,
            "insights": self._cmd_insights,
            "trace": self._cmd_trace,
            "contrast": self._cmd_contrast,
            "help": self._cmd_help,
        }
        handler = handlers.get(command)
        if handler is None:
            return f"unknown command {command!r}; type 'help'"
        try:
            return handler(rest.strip())
        except ReproError as error:
            return f"error: {error}"
        except (IndexError, ValueError, KeyError) as error:
            return f"error: {error}"

    # -- individual commands -----------------------------------------------------

    def _degraded_notice(self, failures_before: int) -> str | None:
        failures = self.session.failures
        if len(failures) > failures_before:
            last = failures[-1]
            return (f"(degraded: {last.error_type} — {last.error}; "
                    "the session stays usable, try again)")
        return None

    def _cmd_find(self, rest: str) -> str:
        values = tuple(v.strip() for v in rest.split(",") if v.strip())
        if not values:
            return "usage: find <value>[, <value> ...]"
        failures_before = len(self.session.failures)
        self._candidates = self.session.synthesize(*values)
        lines = [f"{len(self._candidates)} candidate queries:"]
        lines.extend(
            f"  [{index}] {candidate.description}"
            for index, candidate in enumerate(self._candidates)
        )
        report = self.session.last_report
        if report is not None and report.degraded:
            lines.append("(degraded: endpoint faults hid some candidates — "
                         f"{report.probe_failures} probes lost)")
        notice = self._degraded_notice(failures_before)
        if notice:
            lines.append(notice)
        if self._candidates:
            lines.append("pick one with: pick <n>")
        return "\n".join(lines)

    def _cmd_pick(self, rest: str) -> str:
        index = int(rest)
        failures_before = len(self.session.failures)
        results = self.session.choose(index)
        notice = self._degraded_notice(failures_before)
        if notice:
            return notice
        return (
            f"executed: {self.session.query.description}\n"
            f"{len(results)} result tuples; 'show' to display, "
            f"'refine <kind>' for refinements"
        )

    def _cmd_show(self, rest: str) -> str:
        limit = int(rest) if rest else 15
        pretty = labeled_results(self.endpoint, self.session.results)
        return pretty.pretty(max_rows=limit)

    def _cmd_sparql(self, rest: str) -> str:
        return self.session.query.sparql()

    def _cmd_refine(self, rest: str) -> str:
        kind = rest or "disaggregate"
        proposals = self.session.refinements(kind)
        self._last_proposals[kind] = proposals
        if not proposals:
            return f"no {kind} refinements available here"
        ranked = rank_refinements(proposals, self.session.results)
        lines = [f"{len(proposals)} {kind} refinements (best first):"]
        for ranked_item in ranked:
            index = proposals.index(ranked_item.item)
            lines.append(f"  [{index}] {ranked_item.item.explanation}")
            lines.append(f"        ({ranked_item.reason})")
        lines.append(f"apply one with: apply {kind} <n>")
        return "\n".join(lines)

    def _cmd_apply(self, rest: str) -> str:
        kind, _, index_text = rest.partition(" ")
        proposals = self._last_proposals.get(kind)
        if proposals is None:
            proposals = self.session.refinements(kind)
            self._last_proposals[kind] = proposals
        refinement = proposals[int(index_text)]
        failures_before = len(self.session.failures)
        results = self.session.apply(refinement, options_offered=len(proposals))
        notice = self._degraded_notice(failures_before)
        if notice:
            return notice
        self._last_proposals.clear()
        return (
            f"applied: {refinement.explanation}\n"
            f"{len(results)} result tuples"
        )

    def _cmd_back(self, rest: str) -> str:
        step = self.session.back()
        self._last_proposals.clear()
        return f"backtracked to: {step.query.description}"

    def _cmd_profile(self, rest: str) -> str:
        return profile(self.vgraph).pretty()

    def _cmd_stats(self, rest: str) -> str:
        stats = self.endpoint.stats.snapshot()
        lines = [
            "endpoint:",
            f"  queries         {stats.total_queries} "
            f"(select {stats.select_queries}, ask {stats.ask_queries}, "
            f"construct {stats.construct_queries})",
            f"  batched asks    {stats.batch_asks} "
            f"(shared join steps {stats.batch_shared_steps})",
            f"  aggregates      fused {stats.fused_aggregates}, "
            f"fallback {stats.fallback_aggregates}",
            f"  selects         compiled {stats.compiled_selects}, "
            f"fallback {stats.fallback_selects}",
            f"  executions      batched {stats.batched_executions}, "
            f"tuple {stats.tuple_executions}, "
            f"term-space {stats.fallback_selects + stats.fallback_aggregates} "
            f"({_render_declines(stats.decline_reasons)})",
            f"  keyword lookups {stats.keyword_lookups}",
            f"  timeouts        {stats.timeouts}",
            f"  cache hits      {stats.cache_hits}",
        ]
        cache = getattr(self.endpoint, "cache", None)
        if cache is not None:
            lines.append("cache tiers (hits/misses/evictions):")
            for tier, tier_stats in cache.stats.items():
                lines.append(
                    f"  {tier:<9} {tier_stats.hits}/{tier_stats.misses}"
                    f"/{tier_stats.evictions}"
                )
        if self.service is not None:
            lines.append("serving:")
            lines.extend("  " + line for line in
                         self.service.stats().pretty().splitlines())
        resilience = getattr(self.endpoint, "resilience", None)
        if resilience is not None:
            snap = resilience.snapshot()
            lines.append("resilience:")
            lines.append(f"  guarded calls   {snap.calls} "
                         f"(retries {snap.retries}, recovered {snap.recovered}, "
                         f"giveups {snap.giveups})")
            lines.append(f"  breaker sheds   {snap.breaker_rejections} "
                         f"(stale served {snap.stale_served})")
        events = getattr(self.endpoint, "events", None)
        if events:
            injected = [event for event in events if event.kind != "ok"]
            lines.append(f"chaos: {len(injected)} faults injected over "
                         f"{len(events)} endpoint calls")
        failures = self.session.failures
        if failures:
            lines.append(f"session: {len(failures)} interactions degraded "
                         "by endpoint faults")
        return "\n".join(lines)

    def _cmd_insights(self, rest: str) -> str:
        insights = insight_summary(self.session.query, self.session.results)
        if not insights:
            return "no notable insights in the current results"
        return "\n".join("* " + line for line in insights)

    def _cmd_trace(self, rest: str) -> str:
        return to_markdown(self.session)

    def _cmd_contrast(self, rest: str) -> str:
        left, _, right = rest.partition(" vs ")
        if not right:
            return "usage: contrast <example A> vs <example B>"
        example_a = tuple(v.strip() for v in left.split(",") if v.strip())
        example_b = tuple(v.strip() for v in right.split(",") if v.strip())
        comparisons = contrast(self.endpoint, self.vgraph, example_a, example_b)
        return "\n\n".join(c.pretty() for c in comparisons)

    def _cmd_help(self, rest: str) -> str:
        kinds = "|".join(sorted(self.session.methods))
        return (
            "commands:\n"
            "  find <v1>[, <v2> ...]  synthesize queries from examples\n"
            "  pick <n>               choose and execute candidate n\n"
            "  show [rows]            display current results\n"
            "  sparql                 print the current SPARQL query\n"
            f"  refine <kind>          list refinements ({kinds})\n"
            "  apply <kind> <n>       apply a refinement\n"
            "  back                   backtrack one step\n"
            "  insights               notable facts about the current results\n"
            "  trace                  Markdown record of this exploration\n"
            "  contrast A vs B        compare two example sets side by side\n"
            "  profile                dataset overview\n"
            "  stats                  endpoint / cache / serving statistics\n"
            "  quit                   leave"
        )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_common_args(parser: argparse.ArgumentParser,
                     suppress: bool = False) -> None:
    """Dataset/engine/serving flags shared by every entry point.

    The main parser gets real defaults; subparsers get ``SUPPRESS``
    versions of the same flags, so ``repro serve --dataset production``
    works without the subparser's defaults clobbering flags given before
    the subcommand.
    """

    def default(value):
        return argparse.SUPPRESS if suppress else value

    parser.add_argument("--dataset", choices=sorted(_GENERATORS),
                        default=default("eurostat"),
                        help="built-in synthetic dataset to explore")
    parser.add_argument("--observations", type=int, default=default(2000))
    parser.add_argument("--scale", type=float, default=default(0.4),
                        help="member-pool scale factor (1.0 = paper scale)")
    parser.add_argument("--seed", type=int, default=default(0))
    parser.add_argument("--ntriples", metavar="FILE", default=default(None),
                        help="explore an N-Triples file instead of a generator")
    parser.add_argument("--snapshot", metavar="FILE", default=default(None),
                        help="boot from a columnar snapshot file instead of "
                             "re-ingesting (see 'repro snapshot save')")
    parser.add_argument("--data-dir", metavar="DIR", default=default(None),
                        help="open a durable store rooted at DIR: writes go "
                             "through a write-ahead log, and boot recovers "
                             "the newest checkpoint + WAL tail; an empty DIR "
                             "is seeded from the configured dataset once")
    parser.add_argument("--observation-class",
                        default=default(str(OBSERVATION_CLASS)),
                        help="observation class IRI (with --ntriples)")
    parser.add_argument("--workers", type=_positive_int, default=default(4),
                        help="serving worker threads (see repro.serving)")
    parser.add_argument("--cache-size", type=_nonnegative_int,
                        default=default(4096),
                        help="query result cache entries; 0 disables caching")
    parser.add_argument("--no-compile", action="store_true",
                        default=default(False),
                        help="disable compiled id-space BGP execution "
                             "(fall back to the term-space interpreter)")
    parser.add_argument("--no-vectorize", action="store_true",
                        default=default(False),
                        help="disable batched execution of compiled plans "
                             "(fall back to tuple-at-a-time operators)")
    parser.add_argument("--batch-size", type=_positive_int,
                        default=default(None), metavar="ROWS",
                        help="rows per execution batch for vectorized plans "
                             "(default 65536)")
    parser.add_argument("--parallel", type=_nonnegative_int,
                        default=default(None), metavar="N",
                        help="morsel-driven scan workers for vectorized "
                             "plans; 0 means one per CPU (default 1)")
    parser.add_argument("--retries", type=_nonnegative_int, default=default(0),
                        help="retry budget for transient endpoint faults "
                             "(exponential backoff; 0 disables retries)")
    parser.add_argument("--breaker", action="store_true", default=default(False),
                        help="enable the per-endpoint circuit breaker "
                             "(shed calls while the store fails persistently)")
    parser.add_argument("--serve-stale", action="store_true",
                        default=default(False),
                        help="answer from last-known-good results while the "
                             "circuit breaker is open (implies --breaker)")
    parser.add_argument("--chaos-seed", type=int, default=default(None),
                        metavar="SEED",
                        help="inject deterministic endpoint faults from this "
                             "seed (demo/testing; see repro.resilience)")


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RE2xOLAP: example-driven exploratory analytics over KGs",
    )
    _add_common_args(parser)
    subparsers = parser.add_subparsers(dest="command", metavar="command")

    serve = subparsers.add_parser(
        "serve",
        help="run the SPARQL-protocol HTTP server (see repro.server)")
    _add_common_args(serve, suppress=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=_nonnegative_int, default=8080,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--quota-rate", type=float, default=None,
                       metavar="REQ_PER_S",
                       help="per-tenant token-bucket refill rate "
                            "(default: unlimited)")
    serve.add_argument("--quota-burst", type=float, default=20.0,
                       help="per-tenant token-bucket burst capacity")
    serve.add_argument("--max-queue", type=_positive_int, default=64,
                       help="per-tenant pending-request lane depth")
    serve.add_argument("--request-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="total budget per request incl. queueing; "
                            "aged-out requests are shed with 503")

    snapshot = subparsers.add_parser(
        "snapshot",
        help="save the store to (or verify loading from) a columnar "
             "snapshot file")
    _add_common_args(snapshot, suppress=True)
    snapshot.add_argument("action", choices=("save", "load", "verify"),
                          help="'save' ingests the dataset and writes FILE; "
                               "'load' opens FILE and prints its stats; "
                               "'verify' checks every section CRC without "
                               "building a graph")
    snapshot.add_argument("path", metavar="FILE",
                          help="snapshot file to write, read, or verify")

    query = subparsers.add_parser(
        "query", help="run one SPARQL query and print the results")
    _add_common_args(query, suppress=True)
    query.add_argument("sparql", help="the query text")
    query.add_argument("--format", choices=("json", "csv", "tsv", "table"),
                       default="table",
                       help="output serialization (SPARQL JSON / CSV / TSV "
                            "or a fixed-width table)")
    query.add_argument("--timeout", default=None, metavar="SECONDS",
                       help="evaluation timeout; 'none' disables it, 0 is an "
                            "already-expired budget (both honored literally)")
    return parser


def _query_main(args: argparse.Namespace, stdout: IO[str]) -> int:
    """``repro query``: run one query, print in the requested format."""
    from .sparql.results import ResultSet, to_csv, to_sparql_json, to_tsv
    from .store.endpoint import DEFAULT_TIMEOUT
    from .store.graph import Graph as _Graph

    endpoint, _ = build_endpoint(args)
    timeout = DEFAULT_TIMEOUT
    if args.timeout is not None:
        raw = args.timeout.strip().lower()
        # Explicit "none" and explicit 0 are honored literally; only an
        # absent flag defers to the endpoint default.
        timeout = None if raw in ("none", "off") else float(raw)
    result = endpoint.query(args.sparql, timeout=timeout)
    if isinstance(result, _Graph):
        print(result.to_ntriples(), end="", file=stdout)
        return 0
    writers = {"json": to_sparql_json, "csv": to_csv, "tsv": to_tsv}
    if args.format in writers:
        print(writers[args.format](result), end="", file=stdout)
    elif isinstance(result, ResultSet):
        print(result.pretty(max_rows=None), file=stdout)
    else:
        print("true" if result else "false", file=stdout)
    return 0


def _snapshot_main(args: argparse.Namespace, stdout: IO[str]) -> int:
    """``repro snapshot save|load``: persist or verify a columnar dump."""
    import os
    import time

    if args.action == "verify":
        from .errors import SnapshotError
        from .store import verify_snapshot

        started = time.perf_counter()
        try:
            report = verify_snapshot(args.path)
        except SnapshotError as error:
            print(f"CORRUPT: {error}", file=stdout)
            return 1
        elapsed = time.perf_counter() - started
        print(f"OK: {args.path} ({report['size'] / 1e6:.1f} MB, format v"
              f"{report['version']}): {report['triples']} triples, "
              f"{report['terms']} terms, {report['predicates']} predicates, "
              f"{len(report['sections'])} sections verified "
              f"in {elapsed * 1000:.1f}ms", file=stdout)
        return 0
    if args.action == "save":
        print("loading data and bootstrapping (one-off)...", file=stdout)
        endpoint, _ = build_endpoint(args)
        graph = endpoint.graph
        started = time.perf_counter()
        size = graph.save_snapshot(args.path)
        elapsed = time.perf_counter() - started
        print(f"saved {len(graph)} triples "
              f"({len(graph.term_dictionary)} terms) to {args.path}: "
              f"{size / 1e6:.1f} MB in {elapsed:.2f}s", file=stdout)
        return 0
    started = time.perf_counter()
    graph = Graph.load_snapshot(args.path)
    elapsed = time.perf_counter() - started
    size = os.path.getsize(args.path)
    print(f"loaded {len(graph)} triples "
          f"({len(graph.term_dictionary)} terms, epoch {graph.epoch}) "
          f"from {args.path} ({size / 1e6:.1f} MB) in {elapsed * 1000:.1f}ms",
          file=stdout)
    return 0


def _serve_main(args: argparse.Namespace, stdin: IO[str],
                stdout: IO[str]) -> int:
    """``repro serve``: boot the HTTP front-end, run until EOF/interrupt."""
    from .server import ReproServer, ServerHandle

    print("loading data and bootstrapping (one-off)...", file=stdout)
    endpoint, observation_class = build_endpoint(args)
    # Resilience is wired per tenant by the server itself, so the service
    # runs undecorated here (cache_size forwarded: --cache-size 0 stays off).
    service = QueryService(endpoint, workers=args.workers,
                           cache_size=args.cache_size)
    server = ReproServer(
        service, args.host, args.port,
        observation_class=IRI(args.observation_class),
        quota_rate=args.quota_rate, quota_burst=args.quota_burst,
        max_queue=args.max_queue, retries=args.retries,
        breaker=args.breaker, serve_stale=args.serve_stale,
        request_deadline=args.request_deadline, own_service=True,
    )
    handle = ServerHandle(server).start()
    print(f"serving SPARQL at {handle.url}/sparql "
          f"({args.workers} workers, quota "
          f"{args.quota_rate if args.quota_rate else 'unlimited'}); "
          "Ctrl-C or EOF to stop", file=stdout, flush=True)
    try:
        for _line in stdin:
            pass
    except KeyboardInterrupt:
        pass
    finally:
        handle.close()
        _close_durable(endpoint)
    print("bye", file=stdout)
    return 0


def main(argv: list[str] | None = None, stdin: IO[str] | None = None,
         stdout: IO[str] | None = None) -> int:
    """Entry point; ``stdin``/``stdout`` are injectable for testing."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    args = make_parser().parse_args(argv)
    command = getattr(args, "command", None)
    if command == "query":
        return _query_main(args, stdout)
    if command == "serve":
        return _serve_main(args, stdin, stdout)
    if command == "snapshot":
        return _snapshot_main(args, stdout)
    print("loading data and bootstrapping (one-off)...", file=stdout)
    endpoint, observation_class = build_endpoint(args)
    retry = breaker = None
    if args.retries:
        from .resilience import RetryPolicy

        retry = RetryPolicy(max_retries=args.retries)
    if args.breaker or args.serve_stale:
        from .resilience import CircuitBreaker

        breaker = CircuitBreaker()
    # cache_size is forwarded so --cache-size 0 stays off: the service
    # adopts the endpoint's cache and must not substitute a default one.
    service = QueryService(endpoint, workers=args.workers,
                           cache_size=args.cache_size,
                           retry=retry, breaker=breaker,
                           serve_stale=args.serve_stale)
    # Bootstrap (schema crawl, session setup) runs against the clean
    # store; the fault schedule is armed for the interactive workload.
    chaos = endpoint if hasattr(endpoint, "disarm") else None
    if chaos is not None:
        chaos.disarm()
    try:
        shell = ExplorerShell(endpoint, observation_class, service=service)
        if chaos is not None:
            chaos.arm()
        print(f"ready: {shell.vgraph.n_levels} levels, "
              f"{shell.vgraph.observation_count} observations "
              f"({args.workers} workers, cache "
              f"{'off' if endpoint.cache is None else 'on'}). Type 'help'.",
              file=stdout)
        for line in stdin:
            if line.strip().lower() in ("quit", "exit", "q"):
                break
            output = shell.handle(line)
            if output:
                print(output, file=stdout)
            print("> ", end="", file=stdout, flush=True)
    finally:
        service.shutdown()
        _close_durable(endpoint)
    print("bye", file=stdout)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
