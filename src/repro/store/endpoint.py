"""SPARQL endpoint facade over the in-process store.

The paper's server talks to a triplestore exclusively through a SPARQL
endpoint (Virtuoso in their experiments).  :class:`Endpoint` reproduces
that boundary: REOLAP and the refinement operators only ever see this
interface, so they remain agnostic of how the data is stored — exactly the
"standard SPARQL interfaces (with non-specialized RDF stores)" property the
paper claims.  The facade adds what a real endpoint provides:

* query-string entry points (text in, result set out);
* a configurable evaluation timeout (the paper's Similarity experiment hit
  a 15-minute Virtuoso timeout on DBpedia; ours is configurable per call);
* a full-text keyword-resolution service backed by :class:`TextIndex`
  (standing in for Virtuoso's text index, Section 7.1);
* query statistics, which the benchmark harness uses to count round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rdf.terms import IRI, Literal, Node
from ..sparql.ast import AskQuery, ConstructQuery, Query, SelectQuery
from ..sparql.eval import Evaluator
from ..sparql.parser import parse_query
from ..sparql.results import ResultSet
from .dataset import GraphView
from .graph import Graph
from .text_index import TextIndex

__all__ = ["Endpoint", "EndpointStats"]


@dataclass
class EndpointStats:
    """Counters accumulated across an endpoint's lifetime."""

    select_queries: int = 0
    ask_queries: int = 0
    keyword_lookups: int = 0
    timeouts: int = 0

    @property
    def total_queries(self) -> int:
        return self.select_queries + self.ask_queries

    def reset(self) -> None:
        self.select_queries = 0
        self.ask_queries = 0
        self.keyword_lookups = 0
        self.timeouts = 0


class Endpoint:
    """The query interface the analytics layer is written against."""

    def __init__(
        self,
        graph: Graph | GraphView,
        default_timeout: float | None = None,
        optimize: bool = True,
        text_index: TextIndex | None = None,
    ):
        self.graph = graph
        self.default_timeout = default_timeout
        self._evaluator = Evaluator(graph, optimize=optimize)
        self._text_index = text_index
        self.stats = EndpointStats()

    # -- querying -----------------------------------------------------------

    def select(self, query: SelectQuery | str, timeout: float | None = None) -> ResultSet:
        """Run a SELECT query (AST or text)."""
        self.stats.select_queries += 1
        from ..errors import QueryTimeoutError

        try:
            return self._evaluator.select(query, timeout=timeout or self.default_timeout)
        except QueryTimeoutError:
            self.stats.timeouts += 1
            raise

    def ask(self, query: AskQuery | str, timeout: float | None = None) -> bool:
        """Run an ASK query (AST or text)."""
        self.stats.ask_queries += 1
        from ..errors import QueryTimeoutError

        try:
            return self._evaluator.ask(query, timeout=timeout or self.default_timeout)
        except QueryTimeoutError:
            self.stats.timeouts += 1
            raise

    def construct(self, query: ConstructQuery | str, timeout: float | None = None):
        """Run a CONSTRUCT query; returns a new :class:`Graph`."""
        self.stats.select_queries += 1
        from ..errors import QueryTimeoutError

        try:
            return self._evaluator.construct(query, timeout=timeout or self.default_timeout)
        except QueryTimeoutError:
            self.stats.timeouts += 1
            raise

    def query(self, text: str, timeout: float | None = None):
        """Parse and dispatch a query string.

        SELECT → ResultSet, ASK → bool, CONSTRUCT → Graph.
        """
        parsed: Query = parse_query(text)
        if isinstance(parsed, AskQuery):
            return self.ask(parsed, timeout=timeout)
        if isinstance(parsed, ConstructQuery):
            return self.construct(parsed, timeout=timeout)
        return self.select(parsed, timeout=timeout)

    def is_non_empty(self, query: SelectQuery, timeout: float | None = None) -> bool:
        """Whether a SELECT query has at least one result.

        This is REOLAP's per-candidate correctness check (Section 5.3):
        every reverse-engineered query must return a non-empty result.
        Without HAVING constraints a grouped query is non-empty exactly
        when its WHERE clause has a solution, so the probe is an ASK over
        the pattern — sparing the aggregate computation.  With HAVING the
        full query runs with LIMIT 1.
        """
        if not query.having:
            return self.ask(AskQuery(query.where), timeout=timeout)
        probe = SelectQuery(
            projections=query.projections,
            where=query.where,
            distinct=query.distinct,
            group_by=query.group_by,
            having=query.having,
            order_by=(),
            limit=1,
            offset=None,
            select_all=query.select_all,
        )
        return bool(self.select(probe, timeout=timeout))

    # -- keyword resolution -----------------------------------------------------

    @property
    def text_index(self) -> TextIndex:
        """The full-text index, built lazily on first keyword lookup."""
        if self._text_index is None:
            self._text_index = TextIndex.from_graph(self.graph)
        return self._text_index

    def resolve_keyword(self, keyword: str, exact: bool = True) -> list[tuple[Node, IRI, Literal]]:
        """Entities whose literal attributes match a user keyword.

        Returns (entity, attribute predicate, matched literal) triples —
        the raw material of Algorithm 1's MATCHES step.
        """
        self.stats.keyword_lookups += 1
        return list(self.text_index.subjects_matching(keyword, exact=exact))

    def refresh_text_index(self) -> None:
        """Rebuild the text index after bulk updates to the graph."""
        self._text_index = TextIndex.from_graph(self.graph)

    def __repr__(self) -> str:
        return f"<Endpoint over {self.graph!r}>"
