"""SPARQL endpoint facade over the in-process store.

The paper's server talks to a triplestore exclusively through a SPARQL
endpoint (Virtuoso in their experiments).  :class:`Endpoint` reproduces
that boundary: REOLAP and the refinement operators only ever see this
interface, so they remain agnostic of how the data is stored — exactly the
"standard SPARQL interfaces (with non-specialized RDF stores)" property the
paper claims.  The facade adds what a real endpoint provides:

* query-string entry points (text in, result set out);
* a configurable evaluation timeout (the paper's Similarity experiment hit
  a 15-minute Virtuoso timeout on DBpedia; ours is configurable per call);
* a full-text keyword-resolution service backed by :class:`TextIndex`
  (standing in for Virtuoso's text index, Section 7.1);
* query statistics, which the benchmark harness uses to count round-trips;
* an optional result cache (:class:`~repro.serving.cache.QueryCache`),
  keyed by query text and the graph's epoch counter, standing in for the
  result reuse real endpoints get from their buffer pools.

Stats updates and the lazy text-index build are guarded by a lock, so one
endpoint may be shared by the serving layer's worker threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..rdf.terms import IRI, Literal, Node
from ..sparql.ast import AskQuery, ConstructQuery, Query, SelectQuery
from ..sparql.batch import simple_bgp as _simple_bgp
from ..sparql.eval import Evaluator
from ..sparql.parser import parse_query
from ..sparql.results import ResultSet
from .dataset import GraphView
from .graph import Graph
from .text_index import TextIndex

__all__ = ["DEFAULT_TIMEOUT", "Endpoint", "EndpointStats"]


class _DefaultTimeout:
    """Sentinel meaning "use the endpoint's default timeout".

    Distinct from ``None`` (explicitly *no* timeout) and from ``0`` (an
    already-expired deadline), both of which are legitimate overrides that
    a truthiness test would silently swallow.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "DEFAULT_TIMEOUT"

    def __reduce__(self):
        return (_DefaultTimeout, ())


#: Default value of every ``timeout=`` parameter on the endpoint surface.
DEFAULT_TIMEOUT = _DefaultTimeout()

#: The union accepted by endpoint ``timeout=`` parameters.
TimeoutArg = "float | None | _DefaultTimeout"

_COUNTERS = (
    "select_queries",
    "ask_queries",
    "construct_queries",
    "keyword_lookups",
    "timeouts",
    "cache_hits",
    "batch_asks",
    "batch_shared_steps",
    "fused_aggregates",
    "fallback_aggregates",
    "compiled_selects",
    "fallback_selects",
    "batched_executions",
    "tuple_executions",
)


@dataclass
class EndpointStats:
    """Counters accumulated across an endpoint's lifetime.

    The instance owns its lock: every mutation (:meth:`add`,
    :meth:`reset`) and the consistent read path (:meth:`snapshot`) go
    through it, so one stats object can be shared by all serving worker
    threads.  Reading individual attributes without the lock is still
    fine for monitoring — ints are atomic to read — but cross-counter
    invariants should use :meth:`snapshot`.
    """

    select_queries: int = 0
    ask_queries: int = 0
    construct_queries: int = 0
    keyword_lookups: int = 0
    timeouts: int = 0
    cache_hits: int = 0
    batch_asks: int = 0  #: ask_batch round-trips (each covers many ASKs)
    batch_shared_steps: int = 0  #: join steps deduplicated by prefix sharing
    fused_aggregates: int = 0  #: aggregate SELECTs run on the fused id-space path
    fallback_aggregates: int = 0  #: aggregate SELECTs run on the term-space path
    compiled_selects: int = 0  #: non-aggregate SELECTs run on the compiled engine
    fallback_selects: int = 0  #: non-aggregate SELECTs run on the term-space path
    batched_executions: int = 0  #: compiled plans run block-at-a-time (vectorized)
    tuple_executions: int = 0  #: compiled plans run tuple-at-a-time
    #: why the compiler declined, tallied by the first decline reason string
    #: (covers both plain-SELECT and aggregate fallbacks)
    decline_reasons: dict = field(default_factory=dict, compare=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def total_queries(self) -> int:
        return self.select_queries + self.ask_queries + self.construct_queries

    def add(self, counter: str, n: int = 1) -> None:
        """Atomically increment one counter."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + n)

    def add_decline(self, reason: str) -> None:
        """Atomically tally one compilation decline under its reason."""
        with self._lock:
            self.decline_reasons[reason] = self.decline_reasons.get(reason, 0) + 1

    def snapshot(self) -> "EndpointStats":
        """A consistent point-in-time copy (no torn multi-counter reads)."""
        with self._lock:
            copy = EndpointStats(**{name: getattr(self, name) for name in _COUNTERS})
            copy.decline_reasons = dict(self.decline_reasons)
            return copy

    def reset(self) -> None:
        """Zero every counter atomically with respect to :meth:`add`."""
        with self._lock:
            for name in _COUNTERS:
                setattr(self, name, 0)
            self.decline_reasons = {}


class Endpoint:
    """The query interface the analytics layer is written against.

    ``cache`` (a :class:`~repro.serving.cache.QueryCache`) enables result
    reuse: SELECT/ASK/CONSTRUCT outcomes and keyword resolutions are keyed
    by ``(query text, graph uid + epoch, timeout class)``, so any graph
    mutation makes every previously cached answer unreachable — and a
    cache shared by endpoints over different graphs keeps their entries
    apart.  Queries that time
    out are never cached.  The stats counters count *calls*, cached or
    not; ``cache_hits`` says how many were answered without evaluation.
    """

    def __init__(
        self,
        graph: Graph | GraphView,
        default_timeout: float | None = None,
        optimize: bool = True,
        compile: bool = True,
        text_index: TextIndex | None = None,
        cache: "QueryCache | None" = None,
        vectorize: bool = True,
        batch_size: int | None = None,
        parallel: int | None = None,
    ):
        self.graph = graph
        self.default_timeout = default_timeout
        self._evaluator = Evaluator(
            graph,
            optimize=optimize,
            compile=compile,
            aggregate_counter=self._count_aggregate,
            select_counter=self._count_select,
            vectorize=vectorize,
            batch_size=batch_size,
            parallel=parallel,
            exec_counter=self._count_exec,
        )
        self._text_index = text_index
        self._cache = None
        self.cache = cache
        self.stats = EndpointStats()
        self._lock = threading.Lock()

    def _count_aggregate(self, fused: bool, reason: str | None = None) -> None:
        """Evaluator callback: tally fused vs. fallback aggregate runs."""
        self.stats.add("fused_aggregates" if fused else "fallback_aggregates")
        if not fused and reason is not None:
            self.stats.add_decline(reason)

    def _count_select(self, compiled: bool, reason: str | None = None) -> None:
        """Evaluator callback: tally compiled vs. fallback plain SELECTs."""
        self.stats.add("compiled_selects" if compiled else "fallback_selects")
        if not compiled and reason is not None:
            self.stats.add_decline(reason)

    def _count_exec(self, batched: bool) -> None:
        """Evaluator callback: tally batched vs. tuple plan executions."""
        self.stats.add("batched_executions" if batched else "tuple_executions")

    @property
    def cache(self) -> "QueryCache | None":
        return self._cache

    @cache.setter
    def cache(self, cache: "QueryCache | None") -> None:
        """Attach a cache, wiring its plan tier into the evaluator.

        The plan tier lets repeated pattern sequences (refinement menus,
        REOLAP probes) skip join ordering and BGP compilation; caches
        without one (plain LRU substitutes in tests) leave the evaluator's
        per-instance behaviour unchanged.
        """
        self._cache = cache
        self._evaluator.plan_cache = getattr(cache, "plans", None)

    # -- cache plumbing -----------------------------------------------------

    def _version(self) -> tuple | None:
        """``(graph uid, epoch)`` tag for cache keys, or None if uncacheable.

        Results over an un-versioned graph are never cached — without an
        epoch there is no way to invalidate them.  The uid carries the
        graph's identity: a cache shared between endpoints over different
        graphs must never answer one graph's query from the other's data,
        even when their epochs coincide.
        """
        epoch = getattr(self.graph, "epoch", None)
        uid = getattr(self.graph, "uid", None)
        if epoch is None or uid is None:
            return None
        return (uid, epoch)

    def _parse(self, text: str) -> Query:
        """Parse a query string, reusing the cache's AST tier when present."""
        from ..serving.cache import MISS

        if self.cache is None:
            return parse_query(text)
        parsed = self.cache.get_ast(text)
        if parsed is MISS:
            parsed = parse_query(text)
            self.cache.put_ast(text, parsed)
        return parsed

    def _result_key(self, query, kind: str, timeout: float | None):
        """Cache key for one call, or None when this call is uncacheable."""
        if self.cache is None:
            return None
        version = self._version()
        if version is None:
            return None
        text = query if isinstance(query, str) else query.to_sparql()
        return self.cache.result_key(text, version, timeout, kind)

    def _count(self, counter: str, n: int = 1) -> None:
        self.stats.add(counter, n)

    def _resolve_timeout(self, timeout) -> float | None:
        """Apply the default-timeout sentinel.

        ``DEFAULT_TIMEOUT`` (the parameter default) means "use the
        endpoint's configured default"; any other value — including
        ``None`` (disable the default) and ``0`` (already expired) — is
        taken literally.
        """
        return self.default_timeout if timeout is DEFAULT_TIMEOUT else timeout

    # -- querying -----------------------------------------------------------

    def select(self, query: SelectQuery | str, timeout=DEFAULT_TIMEOUT) -> ResultSet:
        """Run a SELECT query (AST or text)."""
        self._count("select_queries")
        timeout = self._resolve_timeout(timeout)
        from ..serving.cache import MISS

        key = self._result_key(query, "select", timeout)
        if key is not None:
            cached = self.cache.get_result(key)
            if cached is not MISS:
                self._count("cache_hits")
                # Copy: ResultSet rows/variables are mutable lists and the
                # cached instance must survive caller-side edits.
                return ResultSet(cached.variables, cached.rows)
        if isinstance(query, str):
            query = self._parse(query)
        from ..errors import QueryTimeoutError

        try:
            result = self._evaluator.select(query, timeout=timeout)
        except QueryTimeoutError:
            self._count("timeouts")
            raise
        if key is not None:
            self.cache.put_result(key, result)
        return result

    def ask(self, query: AskQuery | str, timeout=DEFAULT_TIMEOUT) -> bool:
        """Run an ASK query (AST or text)."""
        self._count("ask_queries")
        timeout = self._resolve_timeout(timeout)
        from ..serving.cache import MISS

        key = self._result_key(query, "ask", timeout)
        if key is not None:
            cached = self.cache.get_result(key)
            if cached is not MISS:
                self._count("cache_hits")
                return cached
        if isinstance(query, str):
            query = self._parse(query)
        from ..errors import QueryTimeoutError

        try:
            result = self._evaluator.ask(query, timeout=timeout)
        except QueryTimeoutError:
            self._count("timeouts")
            raise
        if key is not None:
            self.cache.put_result(key, result)
        return result

    def construct(self, query: ConstructQuery | str, timeout=DEFAULT_TIMEOUT):
        """Run a CONSTRUCT query; returns a new :class:`Graph`."""
        self._count("construct_queries")
        timeout = self._resolve_timeout(timeout)
        from ..serving.cache import MISS

        key = self._result_key(query, "construct", timeout)
        if key is not None:
            cached = self.cache.get_result(key)
            if cached is not MISS:
                self._count("cache_hits")
                # Cached as a triple tuple; each hit gets a private graph.
                return Graph(triples=cached)
        if isinstance(query, str):
            query = self._parse(query)
        from ..errors import QueryTimeoutError

        try:
            result = self._evaluator.construct(query, timeout=timeout)
        except QueryTimeoutError:
            self._count("timeouts")
            raise
        if key is not None:
            self.cache.put_result(key, tuple(result.triples()))
        return result

    def query(self, text: str, timeout=DEFAULT_TIMEOUT):
        """Parse and dispatch a query string.

        SELECT → ResultSet, ASK → bool, CONSTRUCT → Graph.
        """
        parsed: Query = self._parse(text)
        if isinstance(parsed, AskQuery):
            return self.ask(parsed, timeout=timeout)
        if isinstance(parsed, ConstructQuery):
            return self.construct(parsed, timeout=timeout)
        return self.select(parsed, timeout=timeout)

    def ask_batch(
        self, queries: list[AskQuery | str], timeout=DEFAULT_TIMEOUT
    ) -> list[bool]:
        """Answer many ASK queries in one round-trip, sharing common work.

        Queries whose WHERE clause is a pure BGP are compiled and merged
        into a prefix trie (:mod:`repro.sparql.batch`), so candidates that
        agree on leading patterns — REOLAP's validation workload — probe
        the shared prefix once for the whole batch.  Cached answers are
        reused and fresh ones cached, exactly as :meth:`ask` does; queries
        the batch engine cannot take (filters, property paths, no id
        backend, or ``compile=False``) fall back to individual ASKs.
        Returns verdicts aligned with the input list.
        """
        if not queries:
            return []
        timeout = self._resolve_timeout(timeout)
        from ..serving.cache import MISS

        parsed = [self._parse(q) if isinstance(q, str) else q for q in queries]
        results: list[bool | None] = [None] * len(parsed)
        keys = []
        for index, query in enumerate(parsed):
            key = self._result_key(query, "ask", timeout)
            keys.append(key)
            if key is not None:
                cached = self.cache.get_result(key)
                if cached is not MISS:
                    self._count("ask_queries")
                    self._count("cache_hits")
                    results[index] = cached

        batchable: list[int] = []
        bgps = []
        if self._evaluator.compile:
            for index, query in enumerate(parsed):
                if results[index] is not None:
                    continue
                patterns = None if not isinstance(query, AskQuery) else _simple_bgp(query.where)
                if patterns is not None:
                    batchable.append(index)
                    bgps.append(patterns)
        if bgps:
            from ..errors import QueryTimeoutError
            from ..sparql.batch import ask_bgp_batch, order_batch

            self._count("batch_asks")
            bgps = order_batch(self.graph, bgps, optimize=self._evaluator.optimize)
            try:
                verdicts, batch_stats = ask_bgp_batch(self.graph, bgps, timeout=timeout)
            except QueryTimeoutError:
                # The shared walk ran N candidates under one deadline, so a
                # large batch can exhaust it even when every candidate is
                # individually cheap.  Leave the batch undecided: the loop
                # below re-asks each candidate with its own timeout budget,
                # matching the per-probe behaviour of unbatched validation.
                self._count("timeouts")
            else:
                self._count("batch_shared_steps", batch_stats.steps_shared)
                for index, verdict in zip(batchable, verdicts):
                    if verdict is None:
                        continue  # not compilable after all: individual fallback
                    self._count("ask_queries")
                    results[index] = verdict
                    if keys[index] is not None:
                        self.cache.put_result(keys[index], verdict)

        # Whatever the batch engine could not decide goes the normal route
        # (which does its own counting and caching).
        return [
            self.ask(parsed[index], timeout=timeout) if verdict is None else verdict
            for index, verdict in enumerate(results)
        ]

    def is_non_empty(self, query: SelectQuery, timeout=DEFAULT_TIMEOUT) -> bool:
        """Whether a SELECT query has at least one result.

        This is REOLAP's per-candidate correctness check (Section 5.3):
        every reverse-engineered query must return a non-empty result.
        Without HAVING constraints a grouped query is non-empty exactly
        when its WHERE clause has a solution, so the probe is an ASK over
        the pattern — sparing the aggregate computation.  With HAVING the
        full query runs with LIMIT 1.
        """
        if not query.having:
            return self.ask(AskQuery(query.where), timeout=timeout)
        probe = SelectQuery(
            projections=query.projections,
            where=query.where,
            distinct=query.distinct,
            group_by=query.group_by,
            having=query.having,
            order_by=(),
            limit=1,
            offset=None,
            select_all=query.select_all,
        )
        return bool(self.select(probe, timeout=timeout))

    # -- keyword resolution -----------------------------------------------------

    @property
    def text_index(self) -> TextIndex:
        """The full-text index, built lazily on first keyword lookup.

        Double-checked under the endpoint lock so concurrent first lookups
        build it exactly once.
        """
        index = self._text_index
        if index is None:
            with self._lock:
                index = self._text_index
                if index is None:
                    index = TextIndex.from_graph(self.graph)
                    self._text_index = index
        return index

    def resolve_keyword(self, keyword: str, exact: bool = True) -> list[tuple[Node, IRI, Literal]]:
        """Entities whose literal attributes match a user keyword.

        Returns (entity, attribute predicate, matched literal) triples —
        the raw material of Algorithm 1's MATCHES step.
        """
        self._count("keyword_lookups")
        from ..serving.cache import MISS

        key = None
        if self.cache is not None:
            version = self._version()
            if version is not None:
                key = self.cache.keyword_key(keyword, exact, version)
                cached = self.cache.get_keyword(key)
                if cached is not MISS:
                    self._count("cache_hits")
                    return list(cached)
        result = list(self.text_index.subjects_matching(keyword, exact=exact))
        if key is not None:
            self.cache.put_keyword(key, tuple(result))
        return result

    def refresh_text_index(self) -> None:
        """Rebuild the text index after bulk updates to the graph."""
        index = TextIndex.from_graph(self.graph)
        with self._lock:
            self._text_index = index

    def __repr__(self) -> str:
        return f"<Endpoint over {self.graph!r}>"
