"""Triple store substrate: indexed graphs, datasets, text index, endpoint.

Replaces the external RDF triplestore (Virtuoso in the paper's setup) with
an in-process, dictionary-encoded store and a SPARQL endpoint facade.
"""

from .dataset import Dataset, GraphView
from .durable import DurableGraph, RecoveryReport
from .endpoint import DEFAULT_TIMEOUT, Endpoint, EndpointStats
from .graph import Graph
from .index import (
    DictTripleIndex,
    PredicateStats,
    TermDictionary,
    TripleIndex,
    make_triple_index,
)
from .snapshot import (
    SnapshotTermDictionary,
    SnapshotView,
    load_snapshot,
    save_snapshot,
    verify_snapshot,
)
from .text_index import TextIndex, tokenize
from .wal import WalWriter, replay_wal

__all__ = [
    "DEFAULT_TIMEOUT",
    "Graph",
    "Dataset",
    "GraphView",
    "Endpoint",
    "EndpointStats",
    "TextIndex",
    "tokenize",
    "TermDictionary",
    "TripleIndex",
    "DictTripleIndex",
    "PredicateStats",
    "make_triple_index",
    "save_snapshot",
    "load_snapshot",
    "verify_snapshot",
    "SnapshotView",
    "SnapshotTermDictionary",
    "DurableGraph",
    "RecoveryReport",
    "WalWriter",
    "replay_wal",
]
