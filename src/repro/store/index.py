"""Low-level storage: term dictionary and triple permutation indexes.

The design follows the classic dictionary-encoded triple table used by RDF
stores (and surveyed in "A design space for RDF data representations",
VLDB J. 2022, which the paper cites): every term is mapped to a dense
integer id once, and triples are stored as id-tuples in three nested-hash
permutation indexes (SPO, POS, OSP).  Any of the eight triple-pattern
shapes then resolves with at most one dictionary lookup per bound term and
one or two hash hops, without scanning the full store.

The index doubles as the engine's **statistics catalog**: per-subject,
per-predicate, and per-object triple counts plus the distinct-subject /
distinct-object counts per predicate are maintained incrementally on every
add/remove, so :meth:`TripleIndex.count` answers every single-constant
pattern shape in O(1) and the join-order optimizer never pays O(data) to
cost a plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..rdf.terms import Node

__all__ = ["TermDictionary", "TripleIndex", "PredicateStats"]


@dataclass(frozen=True)
class PredicateStats:
    """Catalog entry for one predicate, maintained incrementally.

    ``triples / distinct_subjects`` is the average out-degree (expected
    matches of ``?s p ?o`` once ``?s`` is bound), and symmetrically for
    objects — the two selectivity factors the join-order cost model uses.
    """

    triples: int
    distinct_subjects: int
    distinct_objects: int

    @property
    def subject_fanout(self) -> float:
        """Average matches per bound subject (>= 1.0 when non-empty)."""
        return self.triples / self.distinct_subjects if self.distinct_subjects else 0.0

    @property
    def object_fanout(self) -> float:
        """Average matches per bound object (>= 1.0 when non-empty)."""
        return self.triples / self.distinct_objects if self.distinct_objects else 0.0


_EMPTY_STATS = PredicateStats(0, 0, 0)


class TermDictionary:
    """Bidirectional mapping between RDF terms and dense integer ids."""

    __slots__ = ("_term_to_id", "_id_to_term")

    def __init__(self) -> None:
        self._term_to_id: dict[Node, int] = {}
        self._id_to_term: list[Node] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def encode(self, term: Node) -> int:
        """Return the id for ``term``, assigning a fresh one if unseen."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def lookup(self, term: Node) -> int | None:
        """Return the id for ``term``, or ``None`` when never stored."""
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> Node:
        """Return the term for an id assigned by :meth:`encode`."""
        return self._id_to_term[term_id]

    def terms(self) -> Iterator[Node]:
        """All terms in id order."""
        return iter(self._id_to_term)


def _index_add(index: dict[int, dict[int, set[int]]], a: int, b: int, c: int) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


def _index_remove(index: dict[int, dict[int, set[int]]], a: int, b: int, c: int) -> None:
    second = index[a]
    third = second[b]
    third.discard(c)
    if not third:
        del second[b]
        if not second:
            del index[a]


def _count_up(counts: dict[int, int], key: int) -> None:
    counts[key] = counts.get(key, 0) + 1


def _count_down(counts: dict[int, int], key: int) -> None:
    remaining = counts[key] - 1
    if remaining:
        counts[key] = remaining
    else:
        del counts[key]


class TripleIndex:
    """Three permutation indexes over dictionary-encoded triples.

    All methods speak integer ids; the owning :class:`~repro.store.graph.Graph`
    handles term encoding/decoding.  Pattern positions use ``None`` as the
    wildcard.
    """

    __slots__ = ("_spo", "_pos", "_osp", "_size",
                 "_s_counts", "_p_counts", "_o_counts", "_p_subjects")

    def __init__(self) -> None:
        self._spo: dict[int, dict[int, set[int]]] = {}
        self._pos: dict[int, dict[int, set[int]]] = {}
        self._osp: dict[int, dict[int, set[int]]] = {}
        self._size = 0
        # Statistics catalog: triples per subject / predicate / object, and
        # distinct subjects per predicate (distinct objects per predicate
        # fall out of len(self._pos[p]) for free).
        self._s_counts: dict[int, int] = {}
        self._p_counts: dict[int, int] = {}
        self._o_counts: dict[int, int] = {}
        self._p_subjects: dict[int, int] = {}

    def __len__(self) -> int:
        return self._size

    def add(self, s: int, p: int, o: int) -> bool:
        """Insert a triple; returns False when it was already present."""
        objects = self._spo.get(s, {}).get(p)
        if objects is not None and o in objects:
            return False
        _index_add(self._spo, s, p, o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        self._size += 1
        _count_up(self._s_counts, s)
        _count_up(self._p_counts, p)
        _count_up(self._o_counts, o)
        if objects is None:
            # First (s, p, *) triple: the predicate gains a distinct subject.
            _count_up(self._p_subjects, p)
        return True

    def remove(self, s: int, p: int, o: int) -> bool:
        """Delete a triple; returns False when it was not present."""
        objects = self._spo.get(s, {}).get(p)
        if objects is None or o not in objects:
            return False
        _index_remove(self._spo, s, p, o)
        _index_remove(self._pos, p, o, s)
        _index_remove(self._osp, o, s, p)
        self._size -= 1
        _count_down(self._s_counts, s)
        _count_down(self._p_counts, p)
        _count_down(self._o_counts, o)
        if p not in self._spo.get(s, {}):
            # Last (s, p, *) triple went away with it.
            _count_down(self._p_subjects, p)
        return True

    def contains(self, s: int, p: int, o: int) -> bool:
        objects = self._spo.get(s, {}).get(p)
        return objects is not None and o in objects

    # -- raw permutation views ---------------------------------------------
    # The compiled id-space engine probes the nested maps directly, so its
    # inner join loop skips the generator and tuple allocation that
    # :meth:`match` pays per triple.  Treat these as read-only.

    @property
    def spo(self) -> dict[int, dict[int, set[int]]]:
        return self._spo

    @property
    def pos(self) -> dict[int, dict[int, set[int]]]:
        return self._pos

    @property
    def osp(self) -> dict[int, dict[int, set[int]]]:
        return self._osp

    def match(
        self, s: int | None, p: int | None, o: int | None
    ) -> Iterator[tuple[int, int, int]]:
        """Iterate id-triples matching the pattern (``None`` = wildcard).

        Chooses the permutation index that binds the most positions, so the
        iteration touches only candidate triples.
        """
        if s is not None:
            by_p = self._spo.get(s)
            if by_p is None:
                return
            if p is not None:
                objects = by_p.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                    return
                for obj in objects:
                    yield (s, p, obj)
                return
            if o is not None:
                # S?O: use OSP to reach predicates directly.
                preds = self._osp.get(o, {}).get(s)
                if preds is None:
                    return
                for pred in preds:
                    yield (s, pred, o)
                return
            for pred, objects in by_p.items():
                for obj in objects:
                    yield (s, pred, obj)
            return
        if p is not None:
            by_o = self._pos.get(p)
            if by_o is None:
                return
            if o is not None:
                subjects = by_o.get(o)
                if subjects is None:
                    return
                for subj in subjects:
                    yield (subj, p, o)
                return
            for obj, subjects in by_o.items():
                for subj in subjects:
                    yield (subj, p, obj)
            return
        if o is not None:
            by_s = self._osp.get(o)
            if by_s is None:
                return
            for subj, preds in by_s.items():
                for pred in preds:
                    yield (subj, pred, o)
            return
        for subj, by_p in self._spo.items():
            for pred, objects in by_p.items():
                for obj in objects:
                    yield (subj, pred, obj)

    def count(self, s: int | None, p: int | None, o: int | None) -> int:
        """Exact cardinality of a pattern, without materializing matches.

        Every shape is O(1): two-constant shapes read an inner set's size,
        single-constant shapes read the incrementally maintained counters —
        the join-order optimizer relies on this being cheap.
        """
        if s is not None and p is not None and o is not None:
            return 1 if self.contains(s, p, o) else 0
        if s is not None and p is not None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return self._s_counts.get(s, 0)
        if p is not None:
            return self._p_counts.get(p, 0)
        if o is not None:
            return self._o_counts.get(o, 0)
        return self._size

    def subjects_for_predicate(self, p: int) -> Iterator[int]:
        seen: set[int] = set()
        for subjects in self._pos.get(p, {}).values():
            for subj in subjects:
                if subj not in seen:
                    seen.add(subj)
                    yield subj

    def objects_for_predicate(self, p: int) -> Iterator[int]:
        return iter(self._pos.get(p, {}))

    def predicates(self) -> Iterator[int]:
        return iter(self._pos)

    def predicate_cardinality(self, p: int) -> int:
        return self._p_counts.get(p, 0)

    def predicate_stats(self, p: int) -> PredicateStats:
        """The catalog entry for one predicate (all-zero when absent)."""
        triples = self._p_counts.get(p, 0)
        if not triples:
            return _EMPTY_STATS
        return PredicateStats(
            triples=triples,
            distinct_subjects=self._p_subjects.get(p, 0),
            distinct_objects=len(self._pos.get(p, ())),
        )
