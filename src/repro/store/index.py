"""Low-level storage: term dictionary and triple permutation indexes.

The design follows the classic dictionary-encoded triple table used by RDF
stores (and surveyed in "A design space for RDF data representations",
VLDB J. 2022, which the paper cites): every term is mapped to a dense
integer id once, and triples are stored as id-rows in three permutations
(SPO, POS, OSP).  Any of the eight triple-pattern shapes then resolves
against the permutation that binds the most positions.

Two physical layouts implement the same API:

* :class:`TripleIndex` — the default **columnar** layout.  Each
  permutation is one sorted :class:`~repro.store.columnar.Run` of three
  contiguous int64 columns with a CSR offset array over the first key,
  plus an append-side **delta buffer** in the old nested-dict shape and a
  tombstone set for removals of run-resident triples.  Writes land in the
  delta; once delta + tombstones outgrow a threshold proportional to the
  run, everything merges into a fresh run (amortized O(n) total merge
  work over an n-triple ingest).  Reads consult the run via O(1) offset
  lookups + bounded binary searches and overlay the delta.  Runs can be
  mmap-backed (see :mod:`repro.store.snapshot`), which makes bootstrap
  O(file open).
* :class:`DictTripleIndex` — the previous nested-hash layout
  (``dict[a][b] -> set[c]`` per permutation), kept as the comparison
  baseline for the storage benchmarks and as a small-graph alternative.

Both double as the engine's **statistics catalog**: per-predicate triple
counts and distinct subject/object counts are maintained incrementally on
every add/remove, and every single-constant ``count`` shape stays cheap
(O(1) dict/offset reads), so the join-order optimizer never pays O(data)
to cost a plan.

The execution layer consumes the layout-agnostic scan API —
``scan_objects`` / ``scan_subjects`` / ``scan_predicates`` /
``predicate_pairs`` / ``contains`` — rather than raw permutation maps;
on the columnar layout those return zero-copy memoryview slices of the
run columns wherever no delta/tombstone overlay is needed.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..rdf.terms import Node
from .columnar import EMPTY_RUN, Run, merge_run

__all__ = [
    "TermDictionary",
    "TripleIndex",
    "DictTripleIndex",
    "PredicateStats",
    "make_triple_index",
    "LAYOUTS",
]

#: Flush the delta buffer into the sorted runs past this many buffered
#: mutations (or earlier, once it outgrows a quarter of the run).
DEFAULT_FLUSH_THRESHOLD = 65536

LAYOUTS = ("columnar", "dict")


@dataclass(frozen=True)
class PredicateStats:
    """Catalog entry for one predicate, maintained incrementally.

    ``triples / distinct_subjects`` is the average out-degree (expected
    matches of ``?s p ?o`` once ``?s`` is bound), and symmetrically for
    objects — the two selectivity factors the join-order cost model uses.
    """

    triples: int
    distinct_subjects: int
    distinct_objects: int

    @property
    def subject_fanout(self) -> float:
        """Average matches per bound subject (>= 1.0 when non-empty)."""
        return self.triples / self.distinct_subjects if self.distinct_subjects else 0.0

    @property
    def object_fanout(self) -> float:
        """Average matches per bound object (>= 1.0 when non-empty)."""
        return self.triples / self.distinct_objects if self.distinct_objects else 0.0


_EMPTY_STATS = PredicateStats(0, 0, 0)


class TermDictionary:
    """Bidirectional mapping between RDF terms and dense integer ids."""

    __slots__ = ("_term_to_id", "_id_to_term")

    def __init__(self) -> None:
        self._term_to_id: dict[Node, int] = {}
        self._id_to_term: list[Node] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def encode(self, term: Node) -> int:
        """Return the id for ``term``, assigning a fresh one if unseen."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def lookup(self, term: Node) -> int | None:
        """Return the id for ``term``, or ``None`` when never stored."""
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> Node:
        """Return the term for an id assigned by :meth:`encode`."""
        return self._id_to_term[term_id]

    def terms(self) -> Iterator[Node]:
        """All terms in id order."""
        return iter(self._id_to_term)

    @property
    def materialized_terms(self) -> int:
        """How many ids currently have a live :class:`Node` object.

        Always everything for this eager dictionary; the lazy snapshot
        dictionary reports only its decode cache (see
        :class:`~repro.store.snapshot.SnapshotTermDictionary`).
        """
        return len(self._id_to_term)


def _index_add(index: dict[int, dict[int, set[int]]], a: int, b: int, c: int) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


def _index_remove(index: dict[int, dict[int, set[int]]], a: int, b: int, c: int) -> None:
    second = index[a]
    third = second[b]
    third.discard(c)
    if not third:
        del second[b]
        if not second:
            del index[a]


def _count_up(counts: dict, key) -> None:
    counts[key] = counts.get(key, 0) + 1


def _count_down(counts: dict, key) -> None:
    remaining = counts[key] - 1
    if remaining:
        counts[key] = remaining
    else:
        del counts[key]


class DictTripleIndex:
    """Nested-hash permutation indexes over dictionary-encoded triples.

    The original layout: ``dict[a][b] -> set[c]`` per permutation.  O(1)
    point probes, but each triple costs several boxed container entries
    (~70 bytes/triple/permutation) and scans chase hash buckets instead
    of streaming contiguous memory.  Kept as the benchmark baseline and
    selectable via ``Graph(layout="dict")``.

    All methods speak integer ids; the owning
    :class:`~repro.store.graph.Graph` handles term encoding/decoding.
    Pattern positions use ``None`` as the wildcard.
    """

    layout = "dict"

    __slots__ = ("_spo", "_pos", "_osp", "_size",
                 "_s_counts", "_p_counts", "_o_counts", "_p_subjects")

    def __init__(self) -> None:
        self._spo: dict[int, dict[int, set[int]]] = {}
        self._pos: dict[int, dict[int, set[int]]] = {}
        self._osp: dict[int, dict[int, set[int]]] = {}
        self._size = 0
        # Statistics catalog: triples per subject / predicate / object, and
        # distinct subjects per predicate (distinct objects per predicate
        # fall out of len(self._pos[p]) for free).
        self._s_counts: dict[int, int] = {}
        self._p_counts: dict[int, int] = {}
        self._o_counts: dict[int, int] = {}
        self._p_subjects: dict[int, int] = {}

    def __len__(self) -> int:
        return self._size

    def add(self, s: int, p: int, o: int) -> bool:
        """Insert a triple; returns False when it was already present."""
        objects = self._spo.get(s, {}).get(p)
        if objects is not None and o in objects:
            return False
        _index_add(self._spo, s, p, o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        self._size += 1
        _count_up(self._s_counts, s)
        _count_up(self._p_counts, p)
        _count_up(self._o_counts, o)
        if objects is None:
            # First (s, p, *) triple: the predicate gains a distinct subject.
            _count_up(self._p_subjects, p)
        return True

    def remove(self, s: int, p: int, o: int) -> bool:
        """Delete a triple; returns False when it was not present."""
        objects = self._spo.get(s, {}).get(p)
        if objects is None or o not in objects:
            return False
        _index_remove(self._spo, s, p, o)
        _index_remove(self._pos, p, o, s)
        _index_remove(self._osp, o, s, p)
        self._size -= 1
        _count_down(self._s_counts, s)
        _count_down(self._p_counts, p)
        _count_down(self._o_counts, o)
        if p not in self._spo.get(s, {}):
            # Last (s, p, *) triple went away with it.
            _count_down(self._p_subjects, p)
        return True

    def contains(self, s: int, p: int, o: int) -> bool:
        objects = self._spo.get(s, {}).get(p)
        return objects is not None and o in objects

    # -- scan API -----------------------------------------------------------
    # The compiled id-space engine probes through these instead of the raw
    # nested maps, so both physical layouts plug into the same join loops.

    def scan_objects(self, s: int, p: int) -> Sequence[int]:
        """Objects of all ``(s, p, *)`` triples (any iterable container)."""
        by_p = self._spo.get(s)
        if by_p is None:
            return ()
        return by_p.get(p, ())

    def scan_subjects(self, p: int, o: int) -> Sequence[int]:
        """Subjects of all ``(*, p, o)`` triples."""
        by_o = self._pos.get(p)
        if by_o is None:
            return ()
        return by_o.get(o, ())

    def scan_predicates(self, s: int, o: int) -> Sequence[int]:
        """Predicates of all ``(s, *, o)`` triples."""
        by_s = self._osp.get(o)
        if by_s is None:
            return ()
        return by_s.get(s, ())

    def predicate_pairs(self, p: int) -> Iterator[tuple[int, int]]:
        """All ``(subject, object)`` pairs of one predicate."""
        for o, subjects in self._pos.get(p, {}).items():
            for s in subjects:
                yield (s, o)

    def match(
        self, s: int | None, p: int | None, o: int | None
    ) -> Iterator[tuple[int, int, int]]:
        """Iterate id-triples matching the pattern (``None`` = wildcard).

        Chooses the permutation index that binds the most positions, so the
        iteration touches only candidate triples.
        """
        if s is not None:
            by_p = self._spo.get(s)
            if by_p is None:
                return
            if p is not None:
                objects = by_p.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                    return
                for obj in objects:
                    yield (s, p, obj)
                return
            if o is not None:
                # S?O: use OSP to reach predicates directly.
                preds = self._osp.get(o, {}).get(s)
                if preds is None:
                    return
                for pred in preds:
                    yield (s, pred, o)
                return
            for pred, objects in by_p.items():
                for obj in objects:
                    yield (s, pred, obj)
            return
        if p is not None:
            by_o = self._pos.get(p)
            if by_o is None:
                return
            if o is not None:
                subjects = by_o.get(o)
                if subjects is None:
                    return
                for subj in subjects:
                    yield (subj, p, o)
                return
            for obj, subjects in by_o.items():
                for subj in subjects:
                    yield (subj, p, obj)
            return
        if o is not None:
            by_s = self._osp.get(o)
            if by_s is None:
                return
            for subj, preds in by_s.items():
                for pred in preds:
                    yield (subj, pred, o)
            return
        for subj, by_p in self._spo.items():
            for pred, objects in by_p.items():
                for obj in objects:
                    yield (subj, pred, obj)

    def count(self, s: int | None, p: int | None, o: int | None) -> int:
        """Exact cardinality of a pattern, without materializing matches.

        Every shape is O(1): two-constant shapes read an inner set's size,
        single-constant shapes read the incrementally maintained counters —
        the join-order optimizer relies on this being cheap.
        """
        if s is not None and p is not None and o is not None:
            return 1 if self.contains(s, p, o) else 0
        if s is not None and p is not None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return self._s_counts.get(s, 0)
        if p is not None:
            return self._p_counts.get(p, 0)
        if o is not None:
            return self._o_counts.get(o, 0)
        return self._size

    def subjects_for_predicate(self, p: int) -> Iterator[int]:
        seen: set[int] = set()
        for subjects in self._pos.get(p, {}).values():
            for subj in subjects:
                if subj not in seen:
                    seen.add(subj)
                    yield subj

    def objects_for_predicate(self, p: int) -> Iterator[int]:
        return iter(self._pos.get(p, {}))

    def predicates(self) -> Iterator[int]:
        return iter(self._pos)

    def predicate_cardinality(self, p: int) -> int:
        return self._p_counts.get(p, 0)

    def predicate_stats(self, p: int) -> PredicateStats:
        """The catalog entry for one predicate (all-zero when absent)."""
        triples = self._p_counts.get(p, 0)
        if not triples:
            return _EMPTY_STATS
        return PredicateStats(
            triples=triples,
            distinct_subjects=self._p_subjects.get(p, 0),
            distinct_objects=len(self._pos.get(p, ())),
        )


#: Column permutations of an SPO tuple for the three runs.
_PERMS = ((0, 1, 2), (1, 2, 0), (2, 0, 1))


class TripleIndex:
    """Columnar sorted-run permutation indexes (the default layout).

    Structure per permutation: one main :class:`Run` (sorted columns +
    first-key offsets) holding the bulk of the data.  On top of all three
    runs sit a shared **delta buffer** (the nested-dict shape, so recent
    writes keep O(1) probes) and a **tombstone set** for triples deleted
    out of the runs.  The invariant: a live triple is in exactly one of
    ``runs − tombstones`` or the delta; a tombstoned triple is always
    run-resident.

    ``flush()`` merges delta and tombstones into fresh runs; it triggers
    automatically once ``delta + tombstones`` exceeds
    ``max(flush_threshold, run_rows // 4)``, which keeps total merge work
    amortized-linear over an ingest.
    """

    layout = "columnar"

    __slots__ = (
        "_runs", "_dspo", "_dpos", "_dosp", "_delta_size",
        "_dead", "_dead_sp", "_dead_po", "_dead_os",
        "_dead_s", "_dead_p", "_dead_o",
        "_size", "_p_counts", "_p_subjects", "_p_objects",
        "_flush_threshold",
    )

    def __init__(self, flush_threshold: int = DEFAULT_FLUSH_THRESHOLD) -> None:
        self._runs: list[Run] = [EMPTY_RUN, EMPTY_RUN, EMPTY_RUN]
        self._dspo: dict[int, dict[int, set[int]]] = {}
        self._dpos: dict[int, dict[int, set[int]]] = {}
        self._dosp: dict[int, dict[int, set[int]]] = {}
        self._delta_size = 0
        self._dead: set[tuple[int, int, int]] = set()
        # Tombstone adjustment counters, keyed like the count() shapes the
        # run ranges answer, so counts stay exact without rescanning.
        self._dead_sp: dict[tuple[int, int], int] = {}
        self._dead_po: dict[tuple[int, int], int] = {}
        self._dead_os: dict[tuple[int, int], int] = {}
        self._dead_s: dict[int, int] = {}
        self._dead_p: dict[int, int] = {}
        self._dead_o: dict[int, int] = {}
        self._size = 0
        # Predicate catalog (small: one entry per distinct predicate).
        self._p_counts: dict[int, int] = {}
        self._p_subjects: dict[int, int] = {}
        self._p_objects: dict[int, int] = {}
        self._flush_threshold = max(1, flush_threshold)

    def __len__(self) -> int:
        return self._size

    # -- internals ----------------------------------------------------------

    def _pair_sp(self, s: int, p: int) -> int:
        """Live count of ``(s, p, *)`` across run, delta, and tombstones."""
        by_p = self._dspo.get(s)
        objs = by_p.get(p) if by_p else None
        n = len(objs) if objs else 0
        lo, hi = self._runs[0].range2(s, p)
        if hi > lo:
            n += hi - lo
            if self._dead_sp:
                n -= self._dead_sp.get((s, p), 0)
        return n

    def _pair_po(self, p: int, o: int) -> int:
        by_o = self._dpos.get(p)
        subs = by_o.get(o) if by_o else None
        n = len(subs) if subs else 0
        lo, hi = self._runs[1].range2(p, o)
        if hi > lo:
            n += hi - lo
            if self._dead_po:
                n -= self._dead_po.get((p, o), 0)
        return n

    def _pair_os(self, o: int, s: int) -> int:
        by_s = self._dosp.get(o)
        preds = by_s.get(s) if by_s else None
        n = len(preds) if preds else 0
        lo, hi = self._runs[2].range2(o, s)
        if hi > lo:
            n += hi - lo
            if self._dead_os:
                n -= self._dead_os.get((o, s), 0)
        return n

    def _had_sp(self, s: int, p: int) -> bool:
        """Cheap ``_pair_sp(s, p) > 0`` for the add() hot path."""
        by_p = self._dspo.get(s)
        if by_p and by_p.get(p):
            return True
        lo, hi = self._runs[0].range2(s, p)
        if lo == hi:
            return False
        if self._dead_sp:
            return hi - lo > self._dead_sp.get((s, p), 0)
        return True

    def _had_po(self, p: int, o: int) -> bool:
        """Cheap ``_pair_po(p, o) > 0`` for the add() hot path.

        Bulk ingest mostly sees either an object fresh to the whole store
        (unique measure literals — O(1) via the OSP offsets) or a
        (p, o) pair already buffered in the delta (repeated dimension
        members — O(1) dict hits), so the bounded bisect over the
        predicate's run range is the rare case.
        """
        by_o = self._dpos.get(p)
        if by_o and by_o.get(o):
            return True
        osp = self._runs[2]
        if (not osp.n or osp.range1(o) == (0, 0)) and o not in self._dosp:
            return False  # object unseen anywhere: no (p, o) triple exists
        lo, hi = self._runs[1].range2(p, o)
        if lo == hi:
            return False
        if self._dead_po:
            return hi - lo > self._dead_po.get((p, o), 0)
        return True

    def _stat_add(self, s: int, p: int, o: int, had_sp: bool, had_po: bool) -> None:
        self._size += 1
        _count_up(self._p_counts, p)
        if not had_sp:
            _count_up(self._p_subjects, p)
        if not had_po:
            _count_up(self._p_objects, p)

    def _stat_remove(self, s: int, p: int, o: int) -> None:
        """Update catalog after the triple is gone from the live set."""
        self._size -= 1
        _count_down(self._p_counts, p)
        if not self._pair_sp(s, p):
            _count_down(self._p_subjects, p)
        if not self._pair_po(p, o):
            _count_down(self._p_objects, p)

    def _maybe_flush(self) -> None:
        pending = self._delta_size + len(self._dead)
        if pending >= self._flush_threshold and pending >= self._runs[0].n >> 2:
            self.flush()

    # -- mutation -----------------------------------------------------------

    def add(self, s: int, p: int, o: int) -> bool:
        """Insert a triple; returns False when it was already present."""
        key = (s, p, o)
        if self._dead and key in self._dead:
            # Resurrect a tombstoned run row instead of buffering a copy.
            had_sp = self._had_sp(s, p)
            had_po = self._had_po(p, o)
            self._dead.discard(key)
            _count_down(self._dead_sp, (s, p))
            _count_down(self._dead_po, (p, o))
            _count_down(self._dead_os, (o, s))
            _count_down(self._dead_s, s)
            _count_down(self._dead_p, p)
            _count_down(self._dead_o, o)
            self._stat_add(s, p, o, had_sp, had_po)
            return True
        by_p = self._dspo.get(s)
        objs = by_p.get(p) if by_p else None
        if objs is not None and o in objs:
            return False
        if self._runs[0].n and self._runs[0].find(s, p, o) >= 0:
            return False
        had_sp = self._had_sp(s, p)
        had_po = self._had_po(p, o)
        _index_add(self._dspo, s, p, o)
        _index_add(self._dpos, p, o, s)
        _index_add(self._dosp, o, s, p)
        self._delta_size += 1
        self._stat_add(s, p, o, had_sp, had_po)
        self._maybe_flush()
        return True

    def remove(self, s: int, p: int, o: int) -> bool:
        """Delete a triple; returns False when it was not present."""
        by_p = self._dspo.get(s)
        objs = by_p.get(p) if by_p else None
        if objs is not None and o in objs:
            _index_remove(self._dspo, s, p, o)
            _index_remove(self._dpos, p, o, s)
            _index_remove(self._dosp, o, s, p)
            self._delta_size -= 1
            self._stat_remove(s, p, o)
            return True
        key = (s, p, o)
        if self._dead and key in self._dead:
            return False
        if not self._runs[0].n or self._runs[0].find(s, p, o) < 0:
            return False
        self._dead.add(key)
        _count_up(self._dead_sp, (s, p))
        _count_up(self._dead_po, (p, o))
        _count_up(self._dead_os, (o, s))
        _count_up(self._dead_s, s)
        _count_up(self._dead_p, p)
        _count_up(self._dead_o, o)
        self._stat_remove(s, p, o)
        self._maybe_flush()
        return True

    def flush(self) -> None:
        """Merge the delta buffer and tombstones into fresh sorted runs."""
        if not self._delta_size and not self._dead:
            return
        delta: list[tuple[int, int, int]] = []
        for s, by_p in self._dspo.items():
            for p, objs in by_p.items():
                for o in objs:
                    delta.append((s, p, o))
        dead = self._dead
        new_runs = []
        for (i, j, k), run in zip(_PERMS, self._runs):
            added = [(t[i], t[j], t[k]) for t in delta]
            dead_rows = [run.find(t[i], t[j], t[k]) for t in dead]
            new_runs.append(merge_run(run, added, dead_rows))
        self._runs = new_runs
        self._dspo = {}
        self._dpos = {}
        self._dosp = {}
        self._delta_size = 0
        self._dead = set()
        self._dead_sp = {}
        self._dead_po = {}
        self._dead_os = {}
        self._dead_s = {}
        self._dead_p = {}
        self._dead_o = {}

    # -- loading ------------------------------------------------------------

    @classmethod
    def from_runs(
        cls,
        runs: Sequence[Run],
        size: int,
        predicate_stats: Iterable[tuple[int, int, int, int]],
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
    ) -> "TripleIndex":
        """Wrap pre-built (possibly mmap-backed) runs — the snapshot path.

        ``predicate_stats`` rows are ``(pid, triples, distinct_subjects,
        distinct_objects)``; everything else about the catalog derives
        from the run offsets, so no O(data) work happens here.
        """
        index = cls(flush_threshold=flush_threshold)
        index._runs = list(runs)
        index._size = size
        for pid, triples, subjects, objects in predicate_stats:
            index._p_counts[pid] = triples
            index._p_subjects[pid] = subjects
            index._p_objects[pid] = objects
        return index

    @property
    def runs(self) -> tuple[Run, Run, Run]:
        """The (SPO, POS, OSP) runs — read-only; ``flush()`` first for
        a complete view."""
        return tuple(self._runs)

    @property
    def delta_size(self) -> int:
        """Buffered (unmerged) insertions."""
        return self._delta_size

    @property
    def tombstones(self) -> int:
        """Buffered (unmerged) run deletions."""
        return len(self._dead)

    @property
    def pending_mutations(self) -> int:
        """Mutations not yet merged into sorted runs (delta + tombstones).

        This is the in-memory state a crash would lose on a non-durable
        graph — the durability layer reports it so operators can see how
        much a recovery replay would have to redo since the last
        checkpoint."""
        return self._delta_size + len(self._dead)

    def pure_run(self, which: int):
        """The sorted run for permutation ``which`` (0=SPO, 1=POS, 2=OSP)
        when it is the *complete* truth — no buffered delta rows or
        tombstones overlaying it — else ``None``.

        The vectorized executor slices whole column ranges out of a run;
        that is only sound when nothing overlays it, so batch fast paths
        gate on this and fall back to the overlay-aware scan API
        otherwise.
        """
        if self._delta_size or self._dead:
            return None
        return self._runs[which]

    def predicate_stat_rows(self) -> Iterator[tuple[int, int, int, int]]:
        """Catalog rows for persistence, matching :meth:`from_runs`."""
        for pid, triples in self._p_counts.items():
            yield (pid, triples,
                   self._p_subjects.get(pid, 0), self._p_objects.get(pid, 0))

    # -- point lookups ------------------------------------------------------

    def contains(self, s: int, p: int, o: int) -> bool:
        by_p = self._dspo.get(s)
        if by_p:
            objs = by_p.get(p)
            if objs and o in objs:
                return True
        run = self._runs[0]
        if run.n and run.find(s, p, o) >= 0:
            return not self._dead or (s, p, o) not in self._dead
        return False

    # -- scan API -----------------------------------------------------------

    def scan_objects(self, s: int, p: int) -> Sequence[int]:
        """Objects of all ``(s, p, *)`` triples.

        When the answer lives entirely in the run this is a zero-copy
        memoryview slice of the object column; otherwise a small list
        merging run and delta (minus tombstones).
        """
        # Inlined Run.range2: this is the NestedProbe hot path, called
        # once per intermediate row, so the call/tuple overhead matters.
        run = self._runs[0]
        starts = run.starts
        if 0 <= s < len(starts) - 1:
            lo, hi = starts[s], starts[s + 1]
            if lo < hi:
                b = run.b
                lo = bisect_left(b, p, lo, hi)
                hi = bisect_right(b, p, lo, hi)
        else:
            lo = hi = 0
        by_p = self._dspo.get(s)
        extra = by_p.get(p) if by_p else None
        if lo == hi:
            return extra if extra is not None else ()
        if not self._dead_sp or (s, p) not in self._dead_sp:
            seg = run.c[lo:hi]
            if extra is None:
                return seg
            out = list(seg)
            out.extend(extra)
            return out
        dead = self._dead
        out = [x for x in run.c[lo:hi] if (s, p, x) not in dead]
        if extra:
            out.extend(extra)
        return out

    def scan_subjects(self, p: int, o: int) -> Sequence[int]:
        """Subjects of all ``(*, p, o)`` triples."""
        run = self._runs[1]
        starts = run.starts
        if 0 <= p < len(starts) - 1:
            lo, hi = starts[p], starts[p + 1]
            if lo < hi:
                b = run.b
                lo = bisect_left(b, o, lo, hi)
                hi = bisect_right(b, o, lo, hi)
        else:
            lo = hi = 0
        by_o = self._dpos.get(p)
        extra = by_o.get(o) if by_o else None
        if lo == hi:
            return extra if extra is not None else ()
        if not self._dead_po or (p, o) not in self._dead_po:
            seg = run.c[lo:hi]
            if extra is None:
                return seg
            out = list(seg)
            out.extend(extra)
            return out
        dead = self._dead
        out = [x for x in run.c[lo:hi] if (x, p, o) not in dead]
        if extra:
            out.extend(extra)
        return out

    def scan_predicates(self, s: int, o: int) -> Sequence[int]:
        """Predicates of all ``(s, *, o)`` triples."""
        run = self._runs[2]
        starts = run.starts
        if 0 <= o < len(starts) - 1:
            lo, hi = starts[o], starts[o + 1]
            if lo < hi:
                b = run.b
                lo = bisect_left(b, s, lo, hi)
                hi = bisect_right(b, s, lo, hi)
        else:
            lo = hi = 0
        by_s = self._dosp.get(o)
        extra = by_s.get(s) if by_s else None
        if lo == hi:
            return extra if extra is not None else ()
        if not self._dead_os or (o, s) not in self._dead_os:
            seg = run.c[lo:hi]
            if extra is None:
                return seg
            out = list(seg)
            out.extend(extra)
            return out
        dead = self._dead
        out = [x for x in run.c[lo:hi] if (s, x, o) not in dead]
        if extra:
            out.extend(extra)
        return out

    def predicate_pairs(self, p: int) -> Iterator[tuple[int, int]]:
        """All ``(subject, object)`` pairs of one predicate.

        On the pure-run path (no delta, no tombstones for ``p`` — the
        steady state) this is a bare ``zip`` over the two column slices,
        unboxed once via ``tolist()``: no generator frame sits between
        the store and the consumer, which is what lets the operator
        layer's IndexScan stream millions of rows per second.
        """
        run = self._runs[1]
        lo, hi = run.range1(p) if run.n else (0, 0)
        clean = lo < hi and (not self._dead_p or p not in self._dead_p)
        by_o = self._dpos.get(p)
        if clean and not by_o:
            return zip(run.c[lo:hi].tolist(), run.b[lo:hi].tolist())
        return self._predicate_pairs_overlay(run, p, lo, hi, by_o)

    def _predicate_pairs_overlay(
        self, run: Run, p: int, lo: int, hi: int, by_o
    ) -> Iterator[tuple[int, int]]:
        """The delta/tombstone-merging slow path of :meth:`predicate_pairs`."""
        if lo < hi:
            if not self._dead_p or p not in self._dead_p:
                yield from zip(run.c[lo:hi].tolist(), run.b[lo:hi].tolist())
            else:
                dead = self._dead
                for o, s in zip(run.b[lo:hi], run.c[lo:hi]):
                    if (s, p, o) not in dead:
                        yield (s, o)
        if by_o:
            for o, subjects in by_o.items():
                for s in subjects:
                    yield (s, o)

    # -- pattern matching ---------------------------------------------------

    def match(
        self, s: int | None, p: int | None, o: int | None
    ) -> Iterator[tuple[int, int, int]]:
        """Iterate id-triples matching the pattern (``None`` = wildcard).

        Chooses the permutation whose sort prefix covers the bound
        positions, merging run ranges with the delta overlay.
        """
        if s is not None:
            if p is not None:
                if o is not None:
                    if self.contains(s, p, o):
                        yield (s, p, o)
                    return
                for oid in self.scan_objects(s, p):
                    yield (s, p, oid)
                return
            if o is not None:
                for pid in self.scan_predicates(s, o):
                    yield (s, pid, o)
                return
            yield from self._scan_first(0, s)
            return
        if p is not None:
            if o is not None:
                for sid in self.scan_subjects(p, o):
                    yield (sid, p, o)
                return
            for sid, oid in self.predicate_pairs(p):
                yield (sid, p, oid)
            return
        if o is not None:
            yield from self._scan_first(2, o)
            return
        run = self._runs[0]
        if run.n:
            dead = self._dead
            if dead:
                for row in run.rows():
                    if row not in dead:
                        yield row
            else:
                yield from run.rows()
        for sid, by_p in self._dspo.items():
            for pid, objs in by_p.items():
                for oid in objs:
                    yield (sid, pid, oid)

    def _scan_first(self, which: int, key: int) -> Iterator[tuple[int, int, int]]:
        """Triples whose permutation-``which`` first column equals ``key``."""
        run = self._runs[which]
        lo, hi = run.range1(key) if run.n else (0, 0)
        if which == 0:
            if lo < hi:
                dead = self._dead
                check = bool(self._dead_s) and key in self._dead_s
                for pid, oid in zip(run.b[lo:hi], run.c[lo:hi]):
                    if not check or (key, pid, oid) not in dead:
                        yield (key, pid, oid)
            by_p = self._dspo.get(key)
            if by_p:
                for pid, objs in by_p.items():
                    for oid in objs:
                        yield (key, pid, oid)
        else:  # OSP: key is the object, b=subject, c=predicate
            if lo < hi:
                dead = self._dead
                check = bool(self._dead_o) and key in self._dead_o
                for sid, pid in zip(run.b[lo:hi], run.c[lo:hi]):
                    if not check or (sid, pid, key) not in dead:
                        yield (sid, pid, key)
            by_s = self._dosp.get(key)
            if by_s:
                for sid, preds in by_s.items():
                    for pid in preds:
                        yield (sid, pid, key)

    def count(self, s: int | None, p: int | None, o: int | None) -> int:
        """Exact cardinality of a pattern, without materializing matches.

        Two-constant shapes are a run range (O(1) offset + two bounded
        bisects) plus delta/tombstone adjustments; single-constant shapes
        read the offset array or the predicate catalog.
        """
        if s is not None and p is not None and o is not None:
            return 1 if self.contains(s, p, o) else 0
        if s is not None and p is not None:
            return self._pair_sp(s, p)
        if p is not None and o is not None:
            return self._pair_po(p, o)
        if s is not None and o is not None:
            return self._pair_os(o, s)
        if s is not None:
            lo, hi = self._runs[0].range1(s)
            n = hi - lo - (self._dead_s.get(s, 0) if self._dead_s else 0)
            by_p = self._dspo.get(s)
            if by_p:
                n += sum(len(objs) for objs in by_p.values())
            return n
        if p is not None:
            return self._p_counts.get(p, 0)
        if o is not None:
            lo, hi = self._runs[2].range1(o)
            n = hi - lo - (self._dead_o.get(o, 0) if self._dead_o else 0)
            by_s = self._dosp.get(o)
            if by_s:
                n += sum(len(preds) for preds in by_s.values())
            return n
        return self._size

    # -- catalog iteration --------------------------------------------------

    def subjects_for_predicate(self, p: int) -> Iterator[int]:
        seen: set[int] = set()
        for subj, _oid in self.predicate_pairs(p):
            if subj not in seen:
                seen.add(subj)
                yield subj

    def objects_for_predicate(self, p: int) -> Iterator[int]:
        run = self._runs[1]
        lo, hi = run.range1(p) if run.n else (0, 0)
        by_o = self._dpos.get(p)
        if lo < hi and by_o is None and (not self._dead_p or p not in self._dead_p):
            # Pure run range: the object column is sorted, so distinct
            # values fall out of boundary changes with no dedup memory.
            col = run.b
            prev = None
            for i in range(lo, hi):
                val = col[i]
                if val != prev:
                    prev = val
                    yield val
            return
        seen: set[int] = set()
        if lo < hi:
            dead = self._dead
            check = bool(self._dead_p) and p in self._dead_p
            for oid, sid in zip(run.b[lo:hi], run.c[lo:hi]):
                if oid not in seen and (not check or (sid, p, oid) not in dead):
                    seen.add(oid)
                    yield oid
        if by_o:
            for oid in by_o:
                if oid not in seen:
                    yield oid

    def predicates(self) -> Iterator[int]:
        # The catalog keys are exactly the predicates with a live triple.
        return iter(self._p_counts)

    def predicate_cardinality(self, p: int) -> int:
        return self._p_counts.get(p, 0)

    def predicate_stats(self, p: int) -> PredicateStats:
        """The catalog entry for one predicate (all-zero when absent)."""
        triples = self._p_counts.get(p, 0)
        if not triples:
            return _EMPTY_STATS
        return PredicateStats(
            triples=triples,
            distinct_subjects=self._p_subjects.get(p, 0),
            distinct_objects=self._p_objects.get(p, 0),
        )


def make_triple_index(layout: str = "columnar", flush_threshold: int | None = None):
    """Construct a triple index for ``layout`` (``columnar`` or ``dict``)."""
    if layout == "columnar":
        if flush_threshold is None:
            return TripleIndex()
        return TripleIndex(flush_threshold=flush_threshold)
    if layout == "dict":
        return DictTripleIndex()
    raise ValueError(f"unknown storage layout {layout!r}; expected one of {LAYOUTS}")
