"""Low-level storage: term dictionary and triple permutation indexes.

The design follows the classic dictionary-encoded triple table used by RDF
stores (and surveyed in "A design space for RDF data representations",
VLDB J. 2022, which the paper cites): every term is mapped to a dense
integer id once, and triples are stored as id-tuples in three nested-hash
permutation indexes (SPO, POS, OSP).  Any of the eight triple-pattern
shapes then resolves with at most one dictionary lookup per bound term and
one or two hash hops, without scanning the full store.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..rdf.terms import Node

__all__ = ["TermDictionary", "TripleIndex"]


class TermDictionary:
    """Bidirectional mapping between RDF terms and dense integer ids."""

    __slots__ = ("_term_to_id", "_id_to_term")

    def __init__(self) -> None:
        self._term_to_id: dict[Node, int] = {}
        self._id_to_term: list[Node] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def encode(self, term: Node) -> int:
        """Return the id for ``term``, assigning a fresh one if unseen."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def lookup(self, term: Node) -> int | None:
        """Return the id for ``term``, or ``None`` when never stored."""
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> Node:
        """Return the term for an id assigned by :meth:`encode`."""
        return self._id_to_term[term_id]

    def terms(self) -> Iterator[Node]:
        """All terms in id order."""
        return iter(self._id_to_term)


def _index_add(index: dict[int, dict[int, set[int]]], a: int, b: int, c: int) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


def _index_remove(index: dict[int, dict[int, set[int]]], a: int, b: int, c: int) -> None:
    second = index[a]
    third = second[b]
    third.discard(c)
    if not third:
        del second[b]
        if not second:
            del index[a]


class TripleIndex:
    """Three permutation indexes over dictionary-encoded triples.

    All methods speak integer ids; the owning :class:`~repro.store.graph.Graph`
    handles term encoding/decoding.  Pattern positions use ``None`` as the
    wildcard.
    """

    __slots__ = ("_spo", "_pos", "_osp", "_size")

    def __init__(self) -> None:
        self._spo: dict[int, dict[int, set[int]]] = {}
        self._pos: dict[int, dict[int, set[int]]] = {}
        self._osp: dict[int, dict[int, set[int]]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, s: int, p: int, o: int) -> bool:
        """Insert a triple; returns False when it was already present."""
        objects = self._spo.get(s, {}).get(p)
        if objects is not None and o in objects:
            return False
        _index_add(self._spo, s, p, o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        self._size += 1
        return True

    def remove(self, s: int, p: int, o: int) -> bool:
        """Delete a triple; returns False when it was not present."""
        objects = self._spo.get(s, {}).get(p)
        if objects is None or o not in objects:
            return False
        _index_remove(self._spo, s, p, o)
        _index_remove(self._pos, p, o, s)
        _index_remove(self._osp, o, s, p)
        self._size -= 1
        return True

    def contains(self, s: int, p: int, o: int) -> bool:
        objects = self._spo.get(s, {}).get(p)
        return objects is not None and o in objects

    def match(
        self, s: int | None, p: int | None, o: int | None
    ) -> Iterator[tuple[int, int, int]]:
        """Iterate id-triples matching the pattern (``None`` = wildcard).

        Chooses the permutation index that binds the most positions, so the
        iteration touches only candidate triples.
        """
        if s is not None:
            by_p = self._spo.get(s)
            if by_p is None:
                return
            if p is not None:
                objects = by_p.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                    return
                for obj in objects:
                    yield (s, p, obj)
                return
            if o is not None:
                # S?O: use OSP to reach predicates directly.
                preds = self._osp.get(o, {}).get(s)
                if preds is None:
                    return
                for pred in preds:
                    yield (s, pred, o)
                return
            for pred, objects in by_p.items():
                for obj in objects:
                    yield (s, pred, obj)
            return
        if p is not None:
            by_o = self._pos.get(p)
            if by_o is None:
                return
            if o is not None:
                subjects = by_o.get(o)
                if subjects is None:
                    return
                for subj in subjects:
                    yield (subj, p, o)
                return
            for obj, subjects in by_o.items():
                for subj in subjects:
                    yield (subj, p, obj)
            return
        if o is not None:
            by_s = self._osp.get(o)
            if by_s is None:
                return
            for subj, preds in by_s.items():
                for pred in preds:
                    yield (subj, pred, o)
            return
        for subj, by_p in self._spo.items():
            for pred, objects in by_p.items():
                for obj in objects:
                    yield (subj, pred, obj)

    def count(self, s: int | None, p: int | None, o: int | None) -> int:
        """Exact cardinality of a pattern, without materializing matches.

        Fully-nested index levels make the common shapes O(1) or a single
        inner-dict walk; the join-order optimizer relies on this being cheap.
        """
        if s is not None and p is not None and o is not None:
            return 1 if self.contains(s, p, o) else 0
        if s is not None and p is not None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if p is not None:
            return sum(len(subjs) for subjs in self._pos.get(p, {}).values())
        if o is not None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        return self._size

    def subjects_for_predicate(self, p: int) -> Iterator[int]:
        seen: set[int] = set()
        for subjects in self._pos.get(p, {}).values():
            for subj in subjects:
                if subj not in seen:
                    seen.add(subj)
                    yield subj

    def objects_for_predicate(self, p: int) -> Iterator[int]:
        return iter(self._pos.get(p, {}))

    def predicates(self) -> Iterator[int]:
        return iter(self._pos)

    def predicate_cardinality(self, p: int) -> int:
        return sum(len(subjs) for subjs in self._pos.get(p, {}).values())
