"""Persistent graph snapshots: mmap-loadable columnar dumps.

A snapshot file is a versioned binary dump of one graph's columnar state:

* a fixed header (magic, version, epoch, triple/term counts),
* a section table of ``(offset, length)`` pairs,
* the nine raw little-endian int64 column blocks (SPO/POS/OSP runs),
* the three CSR first-key offset arrays belonging to those runs,
* the term-dictionary segment: an offsets array, a byte-order permutation
  (term ids sorted by their encoded bytes, for binary-search lookup), and
  the concatenated term blob,
* a small JSON predicate-statistics table.

``load_snapshot`` maps the file with :mod:`mmap` and builds the index
directly over memoryview slices of the mapping — no column is copied and
no term is decoded, so bootstrap cost is O(file open) regardless of graph
size (the page cache faults data in as queries touch it).  Loading the
same file from several threads or processes shares the underlying pages
read-only.

Terms are serialized in a tagged binary format (not N-Triples) so that
round-tripping is exact: ``Literal("x", datatype=xsd:string)`` and the
plain ``Literal("x")`` are distinct terms and must stay distinct.

Epoch semantics: the writer's epoch is stored in the header and becomes
the loaded graph's starting epoch, so cache keys derived from
``(uid, epoch)`` stay meaningful across the dump — a writable loaded
graph bumps it on mutation as usual, while a read-only
:class:`SnapshotView` can never change it.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import zlib
from array import array
from typing import IO, Callable, Iterator

from ..errors import ReadOnlySnapshotError, SnapshotError
from ..rdf.terms import BNode, IRI, Literal, Node
from .columnar import Run, build_run, build_run_from_columns
from .graph import Graph
from .index import DEFAULT_FLUSH_THRESHOLD, TripleIndex
from .wal import fsync_directory

__all__ = [
    "save_snapshot",
    "load_snapshot",
    "verify_snapshot",
    "SnapshotView",
    "SnapshotTermDictionary",
    "SECTION_NAMES",
]

MAGIC = b"REPROSNAP\x00"
#: Version 2 added per-section CRC32s and the header/table checksum —
#: the crash-safety layer; version-1 files predate integrity checking
#: and are not read by this build.
VERSION = 2

#: Section order in the file.  0-8: run columns (SPO a,b,c / POS / OSP);
#: 9-11: CSR offset arrays; 12: term offsets; 13: term sort order;
#: 14: term blob; 15: predicate stats JSON.
_N_SECTIONS = 16
SECTION_NAMES = (
    "spo.a", "spo.b", "spo.c",
    "pos.a", "pos.b", "pos.c",
    "osp.a", "osp.b", "osp.c",
    "spo.starts", "pos.starts", "osp.starts",
    "term.offsets", "term.order", "term.blob",
    "stats",
)
_HEADER = struct.Struct("<10sHIQQQ")  # magic, version, flags, epoch, triples, terms
_SECTION = struct.Struct("<QQQ")  # offset, length, CRC32 of the section bytes
_U32 = struct.Struct("<I")

_FLAG_NONE = 0


# --------------------------------------------------------------------------
# Term codec: tag byte + (length-prefixed annex for literals) + UTF-8 body.
# Byte equality === term equality, which is all the binary-search lookup
# needs; the sort order of the encoded bytes is arbitrary but consistent.
# --------------------------------------------------------------------------


def encode_term(term: Node) -> bytes:
    if isinstance(term, IRI):
        return b"I" + term.value.encode("utf-8")
    if isinstance(term, BNode):
        return b"B" + term.label.encode("utf-8")
    if isinstance(term, Literal):
        if term.language is not None:
            annex = term.language.encode("utf-8")
            return b"L\x01" + _U32.pack(len(annex)) + annex + term.lexical.encode("utf-8")
        if term.datatype is not None:
            annex = term.datatype.value.encode("utf-8")
            return b"L\x02" + _U32.pack(len(annex)) + annex + term.lexical.encode("utf-8")
        return b"L\x00" + term.lexical.encode("utf-8")
    raise SnapshotError(f"cannot serialize term of type {type(term).__name__}")


def decode_term(data: bytes) -> Node:
    tag = data[:1]
    if tag == b"I":
        return IRI(data[1:].decode("utf-8"))
    if tag == b"B":
        return BNode(data[1:].decode("utf-8"))
    if tag == b"L":
        kind = data[1]
        if kind == 0:
            return Literal(data[2:].decode("utf-8"))
        (annex_len,) = _U32.unpack_from(data, 2)
        annex = data[6 : 6 + annex_len].decode("utf-8")
        lexical = data[6 + annex_len :].decode("utf-8")
        if kind == 1:
            return Literal(lexical, language=annex)
        if kind == 2:
            return Literal(lexical, datatype=IRI(annex))
    raise SnapshotError(f"unknown term tag {data[:2]!r} in snapshot")


class SnapshotTermDictionary:
    """A term dictionary decoding lazily from a snapshot's term segment.

    Implements the :class:`~repro.store.index.TermDictionary` API.  Ids
    below the snapshot's term count resolve against the mmap'd blob:
    ``decode`` parses a term the first time that id is touched (memoized),
    and ``lookup`` binary-searches the byte-sorted order without
    materializing any :class:`Node`.  Terms encoded *after* load live in
    a small overlay, so a loaded graph stays writable.
    """

    __slots__ = ("_offsets", "_order", "_blob", "_base",
                 "_cache", "_extra_ids", "_extra_terms")

    def __init__(self, offsets, order, blob) -> None:
        self._offsets = offsets  # int64 view, base+1 entries into blob
        self._order = order      # int64 view: term ids sorted by bytes
        self._blob = blob        # bytes-like view of concatenated terms
        self._base = len(order)
        self._cache: dict[int, Node] = {}
        self._extra_ids: dict[Node, int] = {}
        self._extra_terms: list[Node] = []

    def __len__(self) -> int:
        return self._base + len(self._extra_terms)

    def _term_bytes(self, term_id: int) -> bytes:
        offsets = self._offsets
        return bytes(self._blob[offsets[term_id] : offsets[term_id + 1]])

    def decode(self, term_id: int) -> Node:
        if term_id >= self._base:
            return self._extra_terms[term_id - self._base]
        term = self._cache.get(term_id)
        if term is None:
            term = decode_term(self._term_bytes(term_id))
            self._cache[term_id] = term
        return term

    def lookup(self, term: Node) -> int | None:
        existing = self._extra_ids.get(term)
        if existing is not None:
            return existing
        key = encode_term(term)
        order = self._order
        lo, hi = 0, self._base
        while lo < hi:
            mid = (lo + hi) // 2
            tid = order[mid]
            candidate = self._term_bytes(tid)
            if candidate < key:
                lo = mid + 1
            elif candidate > key:
                hi = mid
            else:
                return tid
        return None

    def encode(self, term: Node) -> int:
        """Return the id for ``term``, assigning an overlay id if unseen."""
        term_id = self.lookup(term)
        if term_id is None:
            term_id = self._base + len(self._extra_terms)
            self._extra_terms.append(term)
            self._extra_ids[term] = term_id
        return term_id

    def terms(self) -> Iterator[Node]:
        """All terms in id order (materializes lazily as it goes)."""
        for term_id in range(len(self)):
            yield self.decode(term_id)

    @property
    def materialized_terms(self) -> int:
        """How many ids currently have a live :class:`Node` object."""
        return len(self._cache) + len(self._extra_terms)


# --------------------------------------------------------------------------
# Writing
# --------------------------------------------------------------------------


def _graph_runs(graph: Graph) -> tuple[tuple[Run, Run, Run], list[tuple[int, int, int, int]]]:
    """The three sorted runs + catalog rows for any index layout."""
    index = graph.triple_index
    if isinstance(index, TripleIndex):
        index.flush()
        return index.runs, list(index.predicate_stat_rows())
    # Dict layout (or any façade-compatible index): sort a row dump per
    # permutation and rebuild the catalog through the public stats API.
    triples = list(index.match(None, None, None))
    runs = (
        build_run(triples),
        build_run([(p, o, s) for (s, p, o) in triples]),
        build_run([(o, s, p) for (s, p, o) in triples]),
    )
    stats = []
    for pid in index.predicates():
        entry = index.predicate_stats(pid)
        stats.append((pid, entry.triples, entry.distinct_subjects, entry.distinct_objects))
    return runs, stats


def _column_bytes(view) -> bytes:
    """Raw little-endian bytes of an int64 memoryview."""
    if sys.byteorder == "little":
        return bytes(view)
    swapped = array("q", view)
    swapped.byteswap()  # pragma: no cover - big-endian hosts only
    return swapped.tobytes()  # pragma: no cover


def save_snapshot(graph: Graph, path: str, *, opener: Callable = open) -> int:
    """Write ``graph`` to ``path`` atomically; returns the size in bytes.

    Works for both layouts: a columnar graph flushes its delta and dumps
    its runs; a dict-layout graph is sorted into runs on the way out.
    Either way the file loads back as a columnar graph.

    Crash safety: the bytes go to ``path + ".tmp"`` first, are fsynced,
    and only then renamed over ``path`` (followed by a directory fsync so
    the rename itself is durable).  A crash at any point leaves either
    the previous file untouched or the complete new one — never a
    half-written snapshot under the real name.  Every section carries a
    CRC32 in the section table, verified again at load time.

    ``opener`` exists for the crash-recovery harness: the resilience
    layer's disk-fault shim substitutes a file object that fails or
    "crashes" at a scheduled byte, proving the atomicity claim.
    """
    runs, stat_rows = _graph_runs(graph)
    terms = graph.term_dictionary
    n_terms = len(terms)

    encoded = [encode_term(term) for term in terms.terms()]
    offsets = array("q", bytes(8 * (n_terms + 1)))
    position = 0
    for i, blob in enumerate(encoded):
        offsets[i] = position
        position += len(blob)
    offsets[n_terms] = position
    order = array("q", sorted(range(n_terms), key=encoded.__getitem__))

    sections: list[bytes] = []
    for run in runs:
        sections.extend(
            (_column_bytes(run.a), _column_bytes(run.b), _column_bytes(run.c))
        )
    for run in runs:
        sections.append(_column_bytes(run.starts))
    sections.append(_column_bytes(memoryview(offsets)))
    sections.append(_column_bytes(memoryview(order)))
    sections.append(b"".join(encoded))
    sections.append(json.dumps({"predicates": stat_rows}).encode("utf-8"))

    header = _HEADER.pack(MAGIC, VERSION, _FLAG_NONE, graph.epoch, len(graph), n_terms)
    table_size = _N_SECTIONS * _SECTION.size
    preamble_size = len(header) + table_size + _U32.size  # + header/table CRC
    cursor = preamble_size
    table = bytearray()
    starts = []
    for section in sections:
        cursor += (-cursor) % 8  # 8-byte alignment for zero-copy casts
        starts.append(cursor)
        table += _SECTION.pack(cursor, len(section), zlib.crc32(section))
        cursor += len(section)
    head_crc = _U32.pack(zlib.crc32(bytes(table), zlib.crc32(header)))

    temp = path + ".tmp"
    out = opener(temp, "wb")
    try:
        out.write(header)
        out.write(table)
        out.write(head_crc)
        position = preamble_size
        for start, section in zip(starts, sections):
            out.write(b"\x00" * (start - position))
            out.write(section)
            position = start + len(section)
        size = out.tell()
        out.flush()
        os.fsync(out.fileno())
    except OSError as exc:
        try:
            out.close()
        except OSError:
            pass
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise SnapshotError(f"cannot write snapshot {path!r}: {exc}") from exc
    else:
        out.close()
    os.replace(temp, path)
    fsync_directory(os.path.dirname(path))
    return size


# --------------------------------------------------------------------------
# Loading
# --------------------------------------------------------------------------


def _int64_view(buffer: memoryview, offset: int, length: int):
    """A zero-copy int64 view of one section (copies on big-endian hosts)."""
    raw = buffer[offset : offset + length]
    if length % 8:
        raise SnapshotError("int64 section length is not a multiple of 8")
    if sys.byteorder == "little":
        return raw.cast("q")
    swapped = array("q", raw)  # pragma: no cover - big-endian hosts only
    swapped.byteswap()  # pragma: no cover
    return memoryview(swapped)  # pragma: no cover


def _map_and_check(
    path: str, verify: bool
) -> tuple[mmap.mmap, memoryview, list[tuple[int, int]], tuple[int, int, int]]:
    """Open, map, and structurally validate a snapshot file.

    Returns ``(mapped, buffer, table, (epoch, n_triples, n_terms))`` with
    the section table reduced to ``(offset, length)`` pairs.  Every
    structural defect — short file, bad magic/version, a section running
    past EOF, a checksum mismatch — surfaces as :class:`SnapshotError`
    naming the problem (and the section), never an opaque struct or
    index error from deeper in the loader.
    """
    try:
        handle: IO[bytes] = open(path, "rb")
    except OSError as exc:
        raise SnapshotError(f"cannot open snapshot {path!r}: {exc}") from exc
    with handle:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as exc:
            raise SnapshotError(f"cannot map snapshot {path!r}: {exc}") from exc
    buffer = memoryview(mapped)
    preamble = _HEADER.size + _N_SECTIONS * _SECTION.size + _U32.size
    if len(buffer) < preamble:
        raise SnapshotError(
            f"snapshot {path!r} is truncated: {len(buffer)} bytes cannot hold "
            f"the {preamble}-byte header and section table"
        )
    magic, version, _flags, epoch, n_triples, n_terms = _HEADER.unpack_from(buffer, 0)
    if magic != MAGIC:
        raise SnapshotError(f"{path!r} is not a repro snapshot (bad magic)")
    if version != VERSION:
        raise SnapshotError(
            f"snapshot {path!r} has format version {version}; this build reads {VERSION}"
        )
    table_bytes = bytes(buffer[_HEADER.size : _HEADER.size + _N_SECTIONS * _SECTION.size])
    (stored_head_crc,) = _U32.unpack_from(buffer, _HEADER.size + len(table_bytes))
    head_crc = zlib.crc32(table_bytes, zlib.crc32(bytes(buffer[: _HEADER.size])))
    if head_crc != stored_head_crc:
        raise SnapshotError(
            f"snapshot {path!r}: header/section-table checksum mismatch "
            "(the file is corrupt or was written by an interrupted save)"
        )
    table: list[tuple[int, int]] = []
    position = _HEADER.size
    for index in range(_N_SECTIONS):
        offset, length, crc = _SECTION.unpack_from(buffer, position)
        end = offset + length
        if offset < preamble or end > len(buffer):
            raise SnapshotError(
                f"snapshot {path!r} is truncated: section "
                f"{SECTION_NAMES[index]!r} spans bytes {offset}..{end} of a "
                f"{len(buffer)}-byte file"
            )
        if verify and zlib.crc32(buffer[offset:end]) != crc:
            raise SnapshotError(
                f"snapshot {path!r}: checksum mismatch in section "
                f"{SECTION_NAMES[index]!r} (bytes {offset}..{end})"
            )
        table.append((offset, length))
        position += _SECTION.size
    return mapped, buffer, table, (epoch, n_triples, n_terms)


def load_snapshot(
    path: str,
    *,
    name: IRI | None = None,
    readonly: bool = False,
    verify: bool = True,
    flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
) -> Graph:
    """Load a snapshot as a :class:`Graph` backed by the mmap'd file.

    With ``readonly=True`` the result is a :class:`SnapshotView` — an
    epoch-pinned graph that raises :class:`ReadOnlySnapshotError` on any
    mutation and is safe to share across threads (and, since the pages
    are mapped read-only from the same file, across processes).

    ``verify=True`` (the default) checks every section's CRC32 before
    trusting it — one sequential pass over the file, still orders of
    magnitude cheaper than a re-ingest and the reason a flipped bit
    surfaces as a :class:`SnapshotError` naming the section instead of a
    wrong query answer months later.  Pass ``verify=False`` to skip the
    scan when the file was just written and verified by this process.
    """
    mapped, buffer, table, (epoch, n_triples, n_terms) = _map_and_check(path, verify)

    columns = [_int64_view(buffer, off, length) for off, length in table[:9]]
    starts = [_int64_view(buffer, off, length) for off, length in table[9:12]]
    for column in columns:
        if len(column) != n_triples:
            raise SnapshotError(f"snapshot {path!r}: column length != triple count")
    runs = []
    for i in range(3):
        a, b, c = columns[3 * i : 3 * i + 3]
        if n_triples and len(starts[i]) >= 2:
            run = Run(a, b, c, starts[i], owner=mapped)
        else:
            run = build_run_from_columns(a, b, c)
        runs.append(run)

    offsets = _int64_view(buffer, *table[12])
    order = _int64_view(buffer, *table[13])
    if len(offsets) != n_terms + 1 or len(order) != n_terms:
        raise SnapshotError(f"snapshot {path!r}: term table lengths are inconsistent")
    blob_off, blob_len = table[14]
    blob = buffer[blob_off : blob_off + blob_len]
    dictionary = SnapshotTermDictionary(offsets, order, blob)

    stats_off, stats_len = table[15]
    try:
        stats = json.loads(bytes(buffer[stats_off : stats_off + stats_len]))
        stat_rows = [tuple(row) for row in stats["predicates"]]
    except (ValueError, KeyError, TypeError) as exc:
        raise SnapshotError(f"snapshot {path!r}: bad statistics section") from exc

    index = TripleIndex.from_runs(
        runs, n_triples, stat_rows, flush_threshold=flush_threshold
    )
    cls = SnapshotView if readonly else Graph
    graph = cls.__new__(cls)
    graph.name = name
    graph._terms = dictionary
    graph._index = index
    graph._epoch = epoch
    graph._uid = next(Graph._uids)
    return graph


def verify_snapshot(path: str) -> dict:
    """Fully check a snapshot's integrity without building a graph.

    Validates the magic, version, header/table checksum, every section's
    bounds and CRC32, and the cross-section length invariants (column
    lengths vs the triple count, term-table lengths vs the term count).
    Raises :class:`SnapshotError` naming the first failure; on success
    returns a report dict (triples, terms, epoch, per-section sizes)
    that ``repro snapshot verify`` renders.
    """
    mapped, buffer, table, (epoch, n_triples, n_terms) = _map_and_check(path, True)
    try:
        for index in range(9):
            offset, length = table[index]
            if length != 8 * n_triples:
                raise SnapshotError(
                    f"snapshot {path!r}: section {SECTION_NAMES[index]!r} holds "
                    f"{length // 8} values but the header promises {n_triples} triples"
                )
        if table[12][1] != 8 * (n_terms + 1) or table[13][1] != 8 * n_terms:
            raise SnapshotError(
                f"snapshot {path!r}: term table lengths are inconsistent with "
                f"the header's {n_terms} terms"
            )
        stats_off, stats_len = table[15]
        try:
            stats = json.loads(bytes(buffer[stats_off : stats_off + stats_len]))
            predicates = len(stats["predicates"])
        except (ValueError, KeyError, TypeError) as exc:
            raise SnapshotError(f"snapshot {path!r}: bad statistics section") from exc
        return {
            "path": path,
            "size": len(buffer),
            "version": VERSION,
            "epoch": epoch,
            "triples": n_triples,
            "terms": n_terms,
            "predicates": predicates,
            "sections": [
                {"name": SECTION_NAMES[i], "offset": table[i][0], "length": table[i][1]}
                for i in range(_N_SECTIONS)
            ],
        }
    finally:
        buffer.release()
        mapped.close()


class SnapshotView(Graph):
    """A read-only graph over a snapshot file.

    Shares the full query API with :class:`Graph` but rejects every
    mutation, so one mmap'd snapshot can safely back many concurrent
    readers — worker threads, or separate server processes pointing at
    the same file (the OS shares the read-only pages between them).  Its
    epoch is pinned to the value stored at save time, so compiled plans
    and cached results keyed by ``(uid, epoch)`` stay valid forever.
    """

    __slots__ = ()

    @classmethod
    def open(cls, path: str, *, name: IRI | None = None) -> "SnapshotView":
        view = load_snapshot(path, name=name, readonly=True)
        assert isinstance(view, SnapshotView)
        return view

    def _readonly(self) -> ReadOnlySnapshotError:
        return ReadOnlySnapshotError(
            "this graph is a read-only SnapshotView; load the snapshot with "
            "Graph.load_snapshot(path) to get a writable copy-on-write graph"
        )

    def add(self, triple) -> bool:
        raise self._readonly()

    def add_all(self, triples) -> int:
        raise self._readonly()

    def remove(self, triple) -> bool:
        raise self._readonly()
