"""A dataset of named graphs, mirroring a triplestore's storage layout.

The paper's server is pointed at a SPARQL endpoint plus "the list of named
graphs to query".  :class:`Dataset` reproduces that: it holds a default
graph and any number of named graphs and offers a *union view* over a
selection of them, which is what the query engine evaluates against.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..rdf.terms import IRI, Literal, Node
from ..rdf.triple import Quad, Triple
from .graph import Graph
from .index import PredicateStats

__all__ = ["Dataset", "GraphView"]


class GraphView:
    """A read-only union view over several graphs.

    Implements the subset of the :class:`Graph` API the evaluator needs, so
    queries can run transparently against one graph or a union of named
    graphs.  Duplicate triples across member graphs are deduplicated during
    iteration.
    """

    __slots__ = ("_graphs",)

    def __init__(self, graphs: Iterable[Graph]):
        self._graphs = tuple(graphs)
        if not self._graphs:
            raise ValueError("GraphView requires at least one graph")

    @property
    def epoch(self) -> int:
        """Aggregate version counter: the sum of the member graphs' epochs.

        Member epochs never decrease, so the sum is monotonic and changes
        whenever any member graph mutates — which is all the serving cache
        needs for invalidation.
        """
        return sum(g.epoch for g in self._graphs)

    @property
    def uid(self) -> tuple[int, ...]:
        """Identity of the view: the member graphs' :attr:`Graph.uid` values.

        Plan-cache keys combine this with :attr:`epoch` so plans compiled
        for one view are never replayed against a different one.
        """
        return tuple(g.uid for g in self._graphs)

    def backing_graph(self) -> Graph | None:
        """The single member graph, or None for a genuine multi-graph union.

        Single-member views (the common case: a dataset queried through its
        default graph) expose their member so the compiled id-space engine
        can execute directly against its dictionary and indexes; unions of
        several graphs have no shared id space and fall back to term-space
        evaluation.
        """
        return self._graphs[0] if len(self._graphs) == 1 else None

    def __len__(self) -> int:
        if len(self._graphs) == 1:
            return len(self._graphs[0])
        return sum(1 for _ in self.triples())

    def __contains__(self, triple: Triple) -> bool:
        return any(triple in g for g in self._graphs)

    def triples(self, s: Node | None = None, p: IRI | None = None, o: Node | None = None) -> Iterator[Triple]:
        if len(self._graphs) == 1:
            yield from self._graphs[0].triples(s, p, o)
            return
        seen: set[Triple] = set()
        for graph in self._graphs:
            for triple in graph.triples(s, p, o):
                if triple not in seen:
                    seen.add(triple)
                    yield triple

    def count(self, s: Node | None = None, p: IRI | None = None, o: Node | None = None) -> int:
        if len(self._graphs) == 1:
            return self._graphs[0].count(s, p, o)
        return sum(1 for _ in self.triples(s, p, o))

    def subjects(self, p: IRI | None = None, o: Node | None = None) -> Iterator[Node]:
        seen: set[Node] = set()
        for triple in self.triples(None, p, o):
            if triple.s not in seen:
                seen.add(triple.s)
                yield triple.s

    def objects(self, s: Node | None = None, p: IRI | None = None) -> Iterator[Node]:
        seen: set[Node] = set()
        for triple in self.triples(s, p, None):
            if triple.o not in seen:
                seen.add(triple.o)
                yield triple.o

    def predicates(self) -> Iterator[IRI]:
        seen: set[IRI] = set()
        for graph in self._graphs:
            for predicate in graph.predicates():
                if predicate not in seen:
                    seen.add(predicate)
                    yield predicate

    def predicate_cardinality(self, p: IRI) -> int:
        return sum(g.predicate_cardinality(p) for g in self._graphs)

    def predicate_stats(self, p: IRI) -> PredicateStats:
        """Summed member statistics (an upper bound for the union view)."""
        if len(self._graphs) == 1:
            return self._graphs[0].predicate_stats(p)
        triples = subjects = objects = 0
        for graph in self._graphs:
            stats = graph.predicate_stats(p)
            triples += stats.triples
            subjects += stats.distinct_subjects
            objects += stats.distinct_objects
        return PredicateStats(triples, subjects, objects)

    def literals(self) -> Iterator[Literal]:
        seen: set[Literal] = set()
        for graph in self._graphs:
            for literal in graph.literals():
                if literal not in seen:
                    seen.add(literal)
                    yield literal

    def value(self, s: Node | None = None, p: IRI | None = None, o: Node | None = None):
        for triple in self.triples(s, p, o):
            if s is None:
                return triple.s
            if p is None:
                return triple.p
            return triple.o
        return None


class Dataset:
    """A default graph plus named graphs, addressable by IRI."""

    __slots__ = ("_default", "_named")

    def __init__(self) -> None:
        self._default = Graph()
        self._named: dict[IRI, Graph] = {}

    @property
    def default_graph(self) -> Graph:
        return self._default

    @property
    def epoch(self) -> int:
        """Aggregate version counter over the default and all named graphs."""
        return self._default.epoch + sum(g.epoch for g in self._named.values())

    def graph(self, name: IRI | None = None) -> Graph:
        """The graph with the given name, creating it on first access."""
        if name is None:
            return self._default
        existing = self._named.get(name)
        if existing is None:
            existing = Graph(name=name)
            self._named[name] = existing
        return existing

    def graph_names(self) -> list[IRI]:
        return sorted(self._named, key=lambda iri: iri.value)

    def add(self, item: Triple | Quad) -> bool:
        """Route a quad to its named graph, a plain triple to the default."""
        if isinstance(item, Quad):
            return self.graph(item.graph).add(item.triple())
        return self._default.add(item)

    def union_view(self, names: Iterable[IRI] | None = None, include_default: bool = True) -> GraphView:
        """A union view over selected named graphs (default: all of them)."""
        graphs: list[Graph] = []
        if include_default:
            graphs.append(self._default)
        selected = list(names) if names is not None else self.graph_names()
        for name in selected:
            graph = self._named.get(name)
            if graph is None:
                raise KeyError(f"no named graph {name.n3()}")
            graphs.append(graph)
        return GraphView(graphs)

    def __len__(self) -> int:
        return len(self._default) + sum(len(g) for g in self._named.values())

    # -- I/O ----------------------------------------------------------------

    @classmethod
    def from_nquads(cls, source) -> "Dataset":
        """Load a dataset from an N-Quads document (string or open file)."""
        from ..rdf.nquads import parse_nquads

        dataset = cls()
        for item in parse_nquads(source):
            dataset.add(item)
        return dataset

    def to_nquads(self, out=None) -> str | None:
        """Serialize all graphs as N-Quads (default graph first)."""
        from ..rdf.nquads import serialize_nquads
        from ..rdf.triple import Quad

        def items():
            yield from sorted(self._default.triples())
            for name in self.graph_names():
                for triple in sorted(self._named[name].triples()):
                    yield Quad(triple.s, triple.p, triple.o, name)

        return serialize_nquads(items(), out)

    def __repr__(self) -> str:
        return f"<Dataset: {len(self._named)} named graphs, {len(self)} triples>"
