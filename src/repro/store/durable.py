"""Durable graphs: WAL-protected writes + checkpointed snapshot generations.

:class:`DurableGraph` is a :class:`~repro.store.graph.Graph` whose
mutations survive ``kill -9``.  It owns a directory::

    <dir>/
        snap-00000002-0000000000000003.snap   # generation 2, WAL start 3
        snap-00000003-0000000000000005.snap   # generation 3, WAL start 5
        wal/seg-0000000000000004.wal          # sealed segment
        wal/seg-0000000000000005.wal          # current segment

The write protocol is classic WAL-before-apply: every ``add``/``remove``
first appends a self-contained record (terms in the snapshot codec) to
the log and **fsyncs**, and only then touches the in-memory columnar
index.  One public call is one fsync — ``add_all`` logs its whole batch
and syncs once — so the acknowledgement point is the return of the
mutation call, and the recovery invariant is exact:

    after a crash at *any* instant, :meth:`DurableGraph.open` rebuilds a
    state equal to applying some prefix of the submitted operation
    sequence that includes every acknowledged one — never a torn,
    interleaved, or corrupt state.

Checkpoints (:meth:`DurableGraph.checkpoint`) bound the log: the WAL is
rotated to a fresh segment (seq *S*), the whole graph is dumped to an
atomically-renamed, checksummed snapshot whose filename records *S* as
its **WAL start**, and then old generations beyond the retention count —
plus every WAL segment no retained generation needs — are pruned.
Because WAL records are absolute set operations, replaying any suffix of
the log over any retained generation converges to the same state; that
is what makes the *generation fallback* sound: if the newest snapshot
fails CRC verification at boot, recovery silently drops to the previous
generation and replays a slightly longer WAL suffix.

Recovery (:meth:`DurableGraph.open`) therefore boots in three steps:
mmap-load the newest snapshot generation that passes verification, replay
every WAL record still on disk in order (repairing a torn final-segment
tail by truncation), and reopen the log for appending.  The
:class:`RecoveryReport` left on the instance says exactly what happened.

Single-writer, like :class:`Graph` itself: concurrent readers belong on
:class:`~repro.store.snapshot.SnapshotView`\\ s over the generation files
(the serving layer's pattern), while one writer appends and checkpoints.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..errors import SnapshotError, WALError
from ..rdf.terms import IRI, Node
from ..rdf.triple import Triple
from .graph import Graph
from .snapshot import decode_term, encode_term, load_snapshot, save_snapshot
from .wal import (
    DEFAULT_SEGMENT_BYTES,
    OP_ADD,
    OP_REMOVE,
    WalWriter,
    replay_wal,
)

__all__ = ["DurableGraph", "RecoveryReport", "list_generations"]

#: Snapshot generation filename: generation counter + the first WAL
#: segment seq *not* reflected in the file.  Filename-borne metadata is
#: crash-atomic for free: it exists iff the ``os.replace`` landed.
_SNAP_PATTERN = re.compile(r"^snap-(\d{8})-(\d{16})\.snap$")

#: How many snapshot generations (and the WAL suffix the oldest of them
#: needs) survive a checkpoint.  Two is the minimum that makes fallback
#: meaningful: the newest may be corrupt, the previous must still boot.
DEFAULT_RETAIN = 2

#: Bound on the encoded-term memo the WAL write path keeps (terms repeat
#: heavily in cube data; the memo turns re-encoding into a dict hit).
_ENCODE_CACHE_LIMIT = 1 << 16


def _snapshot_name(generation: int, wal_start: int) -> str:
    return f"snap-{generation:08d}-{wal_start:016d}.snap"


def list_generations(directory: str) -> list[tuple[int, int, str]]:
    """``(generation, wal_start, path)`` sorted newest generation first."""
    out = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        match = _SNAP_PATTERN.match(name)
        if match:
            out.append(
                (int(match.group(1)), int(match.group(2)),
                 os.path.join(directory, name))
            )
    out.sort(reverse=True)
    return out


@dataclass
class RecoveryReport:
    """What :meth:`DurableGraph.open` found and did."""

    directory: str
    generation: int = 0
    snapshot_path: str | None = None
    replayed_records: int = 0
    torn_bytes: int = 0
    #: Generations that failed verification, newest first: (path, error).
    rejected: list[tuple[str, str]] = field(default_factory=list)

    @property
    def fell_back(self) -> bool:
        """True when the newest generation was rejected and an older one
        (or the empty state) booted instead."""
        return bool(self.rejected)


class DurableGraph(Graph):
    """A graph whose writes are WAL-protected and checkpointable.

    Construct via :meth:`open` (or ``Graph.open_durable``); the plain
    constructor is inherited but deliberately unusable — a durable graph
    only makes sense bound to its directory.
    """

    __slots__ = (
        "_directory", "_wal", "_generation", "_retain", "_recovery",
        "_opener", "_verify", "_auto_checkpoint", "_since_checkpoint",
        "_encode_cache", "_closed",
    )

    # -- construction / recovery -------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str,
        *,
        name: IRI | None = None,
        fsync: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        retain: int = DEFAULT_RETAIN,
        verify: bool = True,
        auto_checkpoint: int | None = None,
        flush_threshold: int | None = None,
        opener: Callable = open,
    ) -> "DurableGraph":
        """Open (or create) the durable store at ``directory``.

        Boot = newest verifiable snapshot generation + WAL replay.  A
        generation failing CRC verification is skipped (recorded in
        :attr:`recovery`) and the previous one boots instead; only if
        *every* retained generation is corrupt does this raise, because
        then acknowledged writes are genuinely unrecoverable.

        ``fsync=False`` keeps the full WAL protocol but skips the
        physical disk barrier — for tests and benchmarks that simulate
        crashes at the file level, not for production data.
        ``auto_checkpoint=N`` checkpoints automatically once N records
        accumulate since the last one.
        """
        os.makedirs(directory, exist_ok=True)
        wal_dir = os.path.join(directory, "wal")
        os.makedirs(wal_dir, exist_ok=True)
        cls._sweep_temp_files(directory)

        report = RecoveryReport(directory=directory)
        base: Graph | None = None
        generations = list_generations(directory)
        for generation, _wal_start, path in generations:
            try:
                kwargs = {} if flush_threshold is None else {
                    "flush_threshold": flush_threshold}
                base = load_snapshot(path, name=name, verify=verify, **kwargs)
            except SnapshotError as exc:
                report.rejected.append((path, str(exc)))
                continue
            report.generation = generation
            report.snapshot_path = path
            break
        if base is None:
            if generations:
                details = "; ".join(
                    f"{os.path.basename(p)}: {err}" for p, err in report.rejected
                )
                raise SnapshotError(
                    f"every snapshot generation in {directory!r} failed "
                    f"verification ({details}); acknowledged writes cannot "
                    "be recovered"
                )
            base = Graph(name=name, flush_threshold=flush_threshold)

        graph = cls.__new__(cls)
        graph.name = base.name
        graph._terms = base._terms
        graph._index = base._index
        graph._epoch = base._epoch
        graph._uid = next(Graph._uids)
        graph._directory = directory
        graph._generation = report.generation
        graph._retain = max(1, retain)
        graph._opener = opener
        graph._verify = verify
        graph._auto_checkpoint = auto_checkpoint
        graph._since_checkpoint = 0
        graph._encode_cache = {}
        graph._closed = False
        graph._wal = None

        records, replay_report = replay_wal(wal_dir, opener=opener)
        for record in records:
            triple = Triple(
                decode_term(record.s), decode_term(record.p), decode_term(record.o)
            )
            if record.op == OP_ADD:
                Graph.add(graph, triple)
            else:
                Graph.remove(graph, triple)
        report.replayed_records = len(records)
        report.torn_bytes = replay_report.torn_bytes
        graph._recovery = report
        graph._wal = WalWriter(
            wal_dir, segment_bytes=segment_bytes, fsync=fsync, opener=opener
        )
        return graph

    @staticmethod
    def _sweep_temp_files(directory: str) -> None:
        """Drop ``*.tmp`` debris a crash mid-save may have left behind."""
        try:
            names = os.listdir(directory)
        except FileNotFoundError:
            return
        for name in names:
            if name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(directory, name))
                except OSError:
                    pass

    # -- introspection ------------------------------------------------------

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def generation(self) -> int:
        """The snapshot generation this store last checkpointed (0 = none)."""
        return self._generation

    @property
    def recovery(self) -> RecoveryReport:
        """How the last :meth:`open` rebuilt this graph."""
        return self._recovery

    @property
    def wal(self) -> WalWriter:
        return self._wal

    def durability_stats(self) -> dict:
        """Counters for the serving layer's ``/stats`` document."""
        report = self._recovery
        return {
            "directory": self._directory,
            "generation": self._generation,
            "wal_records": self._wal.records_appended,
            "wal_bytes": self._wal.bytes_appended,
            "wal_syncs": self._wal.syncs,
            "wal_segment": self._wal.current_seq,
            "pending_mutations": getattr(self._index, "pending_mutations", 0),
            "records_since_checkpoint": self._since_checkpoint,
            "recovery": {
                "generation": report.generation,
                "replayed_records": report.replayed_records,
                "torn_bytes": report.torn_bytes,
                "fell_back": report.fell_back,
            },
        }

    # -- the WAL-before-apply write path ------------------------------------

    def _encode(self, term: Node) -> bytes:
        cache = self._encode_cache
        encoded = cache.get(term)
        if encoded is None:
            encoded = encode_term(term)
            if len(cache) >= _ENCODE_CACHE_LIMIT:
                cache.clear()
            cache[term] = encoded
        return encoded

    def _log(self, op: bytes, triple: Triple) -> None:
        if self._closed:
            raise WALError("this durable graph is closed")
        self._wal.append(
            op, self._encode(triple.s), self._encode(triple.p), self._encode(triple.o)
        )

    def _note_writes(self, count: int) -> None:
        self._since_checkpoint += count
        if (
            self._auto_checkpoint is not None
            and self._since_checkpoint >= self._auto_checkpoint
        ):
            self.checkpoint()

    def add(self, triple: Triple) -> bool:
        self._log(OP_ADD, triple)
        self._wal.sync()
        added = Graph.add(self, triple)
        self._note_writes(1)
        return added

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples under a single fsync (group commit)."""
        batch = list(triples)
        for triple in batch:
            self._log(OP_ADD, triple)
        if not batch:
            return 0
        self._wal.sync()
        added = 0
        for triple in batch:
            if Graph.add(self, triple):
                added += 1
        self._note_writes(len(batch))
        return added

    def remove(self, triple: Triple) -> bool:
        self._log(OP_REMOVE, triple)
        self._wal.sync()
        removed = Graph.remove(self, triple)
        self._note_writes(1)
        return removed

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self) -> str:
        """Dump a new snapshot generation and truncate the covered WAL.

        Protocol (each step crash-safe on its own):

        1. rotate the WAL — seals the current segment, so everything this
           graph contains lives in segments ``< S`` (the fresh seq);
        2. atomically save ``snap-<gen+1>-<S>.snap`` (temp + fsync +
           rename + directory fsync, per-section CRCs);
        3. prune generations beyond the retention count, then delete WAL
           segments older than the *oldest retained* generation's WAL
           start — never segments a surviving snapshot might need.

        Returns the new snapshot's path.
        """
        if self._closed:
            raise WALError("this durable graph is closed")
        wal_start = self._wal.rotate()
        generation = self._generation + 1
        path = os.path.join(self._directory, _snapshot_name(generation, wal_start))
        save_snapshot(self, path, opener=self._opener)
        self._generation = generation
        self._since_checkpoint = 0
        self._prune()
        return path

    def _prune(self) -> None:
        generations = list_generations(self._directory)
        keep = generations[: self._retain]
        for _generation, _wal_start, path in generations[self._retain:]:
            try:
                os.unlink(path)
            except OSError:
                pass
        if keep:
            self._wal.prune_before(min(wal_start for _g, wal_start, _p in keep))

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Flush and close the WAL; the graph object becomes read-only."""
        if self._closed:
            return
        self._closed = True
        self._wal.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "DurableGraph":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<DurableGraph {self._directory!r}: {len(self)} triples, "
            f"generation {self._generation}>"
        )
