"""The :class:`Graph` class: a dictionary-encoded, indexed RDF graph.

This is the storage unit the SPARQL engine evaluates against.  It exposes
the pattern-matching API (``triples``, ``subjects``, ``objects``, ...) in
terms of RDF terms, delegating id encoding to :class:`TermDictionary` and
index maintenance to :class:`TripleIndex`.
"""

from __future__ import annotations

from itertools import count
from typing import IO, Iterable, Iterator

from ..rdf.ntriples import parse_ntriples, serialize_ntriples
from ..rdf.terms import IRI, Literal, Node
from ..rdf.triple import Triple
from ..rdf.turtle import parse_turtle
from .index import PredicateStats, TermDictionary, make_triple_index

__all__ = ["Graph"]

#: Pattern wildcard accepted by all matching methods.
_WILD = None


class Graph:
    """An in-memory RDF graph with SPO/POS/OSP indexes.

    >>> g = Graph()
    >>> from repro.rdf import IRI, Literal
    >>> _ = g.add(Triple(IRI("urn:s"), IRI("urn:p"), Literal("x")))
    >>> len(g)
    1
    """

    __slots__ = ("name", "_terms", "_index", "_epoch", "_uid")

    #: Process-wide instance counter backing :attr:`uid`.
    _uids = count()

    def __init__(
        self,
        name: IRI | None = None,
        triples: Iterable[Triple] | None = None,
        *,
        layout: str = "columnar",
        flush_threshold: int | None = None,
    ):
        self.name = name
        self._terms = TermDictionary()
        self._index = make_triple_index(layout, flush_threshold)
        self._epoch = 0
        self._uid = next(Graph._uids)
        if triples is not None:
            self.add_all(triples)

    # -- durability --------------------------------------------------------

    @classmethod
    def open_durable(cls, directory: str, **kwargs) -> "Graph":
        """Open (or create) a crash-safe graph rooted at ``directory``.

        Returns a :class:`~repro.store.durable.DurableGraph`: every
        ``add``/``remove`` is written to a checksummed write-ahead log
        before touching the index, and ``checkpoint()`` dumps atomic
        snapshot generations.  After a crash, reopening the same
        directory recovers every acknowledged write.  See
        :mod:`repro.store.durable` for options (``fsync``, ``retain``,
        ``auto_checkpoint``, ...).
        """
        from .durable import DurableGraph

        return DurableGraph.open(directory, **kwargs)

    # -- versioning -------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotonic version counter, bumped on every successful mutation.

        The serving layer keys cached query results by this value, so any
        ``add``/``remove``/bulk load invalidates stale entries without the
        cache having to watch the graph (see :mod:`repro.serving.cache`).
        Compiled query plans are keyed by it too: term ids baked into a
        plan stay valid only while the graph does not change.
        """
        return self._epoch

    @property
    def uid(self) -> int:
        """Process-unique, never-reused instance identity.

        Compiled plans bake in this graph's term ids, so plan-cache keys
        need an identity component alongside :attr:`epoch`: two distinct
        graphs can share an epoch value, and ``id()`` can be recycled
        after garbage collection.
        """
        return self._uid

    # -- id-space access ---------------------------------------------------

    @property
    def term_dictionary(self) -> TermDictionary:
        """The term↔id dictionary, for id-space query execution."""
        return self._terms

    @property
    def triple_index(self):
        """The id-level permutation indexes, for id-space query execution."""
        return self._index

    @property
    def layout(self) -> str:
        """The physical storage layout (``columnar`` or ``dict``)."""
        return self._index.layout

    # -- mutation ---------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert a triple; returns False if it was already present."""
        added = self._index.add(
            self._terms.encode(triple.s),
            self._terms.encode(triple.p),
            self._terms.encode(triple.o),
        )
        if added:
            self._epoch += 1
        return added

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns the number actually added."""
        added = 0
        for triple in triples:
            if self.add(triple):
                added += 1
        return added

    def remove(self, triple: Triple) -> bool:
        """Delete a triple; returns False if it was not present."""
        ids = self._encode_pattern(triple.s, triple.p, triple.o)
        if ids is None:
            return False
        removed = self._index.remove(*ids)
        if removed:
            self._epoch += 1
        return removed

    # -- lookup -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, triple: Triple) -> bool:
        ids = self._encode_pattern(triple.s, triple.p, triple.o)
        return ids is not None and self._index.contains(*ids)

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def _encode_pattern(self, s, p, o) -> tuple[int, int, int] | None:
        """Encode fully-bound positions; None if any bound term is unseen."""
        result = []
        for term in (s, p, o):
            if term is _WILD:
                result.append(None)
                continue
            term_id = self._terms.lookup(term)
            if term_id is None:
                return None
            result.append(term_id)
        return tuple(result)  # type: ignore[return-value]

    def triples(
        self, s: Node | None = None, p: IRI | None = None, o: Node | None = None
    ) -> Iterator[Triple]:
        """Iterate triples matching the pattern; ``None`` is a wildcard."""
        ids = self._encode_pattern(s, p, o)
        if ids is None:
            return
        decode = self._terms.decode
        for sid, pid, oid in self._index.match(*ids):
            yield Triple(decode(sid), decode(pid), decode(oid))

    def count(self, s: Node | None = None, p: IRI | None = None, o: Node | None = None) -> int:
        """Cardinality of a pattern without materializing the matches."""
        ids = self._encode_pattern(s, p, o)
        if ids is None:
            return 0
        return self._index.count(*ids)

    def subjects(self, p: IRI | None = None, o: Node | None = None) -> Iterator[Node]:
        seen: set[Node] = set()
        for triple in self.triples(None, p, o):
            if triple.s not in seen:
                seen.add(triple.s)
                yield triple.s

    def objects(self, s: Node | None = None, p: IRI | None = None) -> Iterator[Node]:
        seen: set[Node] = set()
        for triple in self.triples(s, p, None):
            if triple.o not in seen:
                seen.add(triple.o)
                yield triple.o

    def predicates(self) -> Iterator[IRI]:
        """All distinct predicates in the graph."""
        for pid in self._index.predicates():
            term = self._terms.decode(pid)
            assert isinstance(term, IRI)
            yield term

    def predicate_cardinality(self, p: IRI) -> int:
        pid = self._terms.lookup(p)
        return 0 if pid is None else self._index.predicate_cardinality(pid)

    def predicate_stats(self, p: IRI) -> PredicateStats:
        """Catalog statistics for a predicate (zeros when unseen)."""
        pid = self._terms.lookup(p)
        if pid is None:
            return PredicateStats(0, 0, 0)
        return self._index.predicate_stats(pid)

    def value(self, s: Node | None = None, p: IRI | None = None, o: Node | None = None):
        """The single unbound position of a pattern with exactly one match.

        Returns ``None`` when there is no match; the first (arbitrary) match
        when there are several.
        """
        for triple in self.triples(s, p, o):
            if s is None:
                return triple.s
            if p is None:
                return triple.p
            return triple.o
        return None

    def literals(self) -> Iterator[Literal]:
        """All distinct literal terms stored in the graph."""
        for term in self._terms.terms():
            if isinstance(term, Literal):
                yield term

    # -- I/O ----------------------------------------------------------------

    def save_snapshot(self, path: str) -> int:
        """Dump the graph to a columnar snapshot file; returns its size.

        The file loads back in O(file open) via :meth:`load_snapshot` —
        see :mod:`repro.store.snapshot` for the format.
        """
        from .snapshot import save_snapshot

        return save_snapshot(self, path)

    @classmethod
    def load_snapshot(
        cls, path: str, *, name: IRI | None = None, readonly: bool = False
    ) -> "Graph":
        """Open a snapshot as a graph backed by the mmap'd file.

        The returned graph is writable (new triples land in the delta
        buffer; the mapped runs are never modified) unless
        ``readonly=True``, which gives an epoch-pinned
        :class:`~repro.store.snapshot.SnapshotView` shareable across
        threads and processes.
        """
        from .snapshot import load_snapshot

        return load_snapshot(path, name=name, readonly=readonly)

    @classmethod
    def from_ntriples(cls, source: str | IO[str], name: IRI | None = None) -> "Graph":
        return cls(name=name, triples=parse_ntriples(source))

    @classmethod
    def from_turtle(cls, text: str, name: IRI | None = None) -> "Graph":
        return cls(name=name, triples=parse_turtle(text))

    def to_ntriples(self, out: IO[str] | None = None) -> str | None:
        return serialize_ntriples(sorted(self.triples()), out)

    def __repr__(self) -> str:
        label = self.name.n3() if self.name else "default"
        return f"<Graph {label}: {len(self)} triples>"
