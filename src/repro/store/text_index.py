"""Full-text index over literals, standing in for Virtuoso's text index.

The paper resolves user keywords to IRIs via "a traditional full-text
index" on the triplestore (Section 7.1).  This module provides the same
capability: an inverted index from lowercase word tokens to the literal
terms containing them, plus a reverse map from each literal to the
(subject, predicate) pairs it labels.  Lookups support exact-phrase match,
all-token conjunctive match, and prefix match.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Iterable, Iterator

from ..rdf.terms import IRI, BNode, Literal, Node

__all__ = ["TextIndex", "tokenize"]

_TOKEN_RE = re.compile(r"[0-9A-Za-z]+")


def tokenize(text: str) -> list[str]:
    """Lowercased word tokens of ``text`` (letters and digits only).

    >>> tokenize("Country of Origin")
    ['country', 'of', 'origin']
    """
    return [t.lower() for t in _TOKEN_RE.findall(text)]


class TextIndex:
    """Inverted index over literal objects of a graph.

    Build it once from a graph (or keep it updated with :meth:`index_triple`)
    and then resolve keywords with :meth:`search`.
    """

    __slots__ = ("_by_token", "_by_exact", "_occurrences", "_literal_count")

    def __init__(self) -> None:
        # token -> set of literals containing it
        self._by_token: dict[str, set[Literal]] = defaultdict(set)
        # normalized full text -> set of literals with exactly that text
        self._by_exact: dict[str, set[Literal]] = defaultdict(set)
        # literal -> set of (subject, predicate) pairs where it occurs
        self._occurrences: dict[Literal, set[tuple[Node, IRI]]] = defaultdict(set)
        self._literal_count = 0

    def __len__(self) -> int:
        """Number of distinct indexed literals."""
        return self._literal_count

    @classmethod
    def from_graph(cls, graph) -> "TextIndex":
        """Index every ⟨s, p, literal⟩ triple of ``graph`` (or graph view)."""
        index = cls()
        for triple in graph.triples():
            if isinstance(triple.o, Literal):
                index.index_triple(triple.s, triple.p, triple.o)
        return index

    def index_triple(self, subject: Node, predicate: IRI, literal: Literal) -> None:
        """Add one literal occurrence to the index."""
        if literal not in self._occurrences:
            self._literal_count += 1
            tokens = tokenize(literal.lexical)
            for token in tokens:
                self._by_token[token].add(literal)
            self._by_exact[" ".join(tokens)].add(literal)
        self._occurrences[literal].add((subject, predicate))

    # -- lookup -------------------------------------------------------------

    def search_exact(self, keyword: str) -> set[Literal]:
        """Literals whose full normalized text equals the keyword's."""
        return set(self._by_exact.get(" ".join(tokenize(keyword)), ()))

    def search_tokens(self, keyword: str) -> set[Literal]:
        """Literals containing *all* tokens of ``keyword`` (conjunctive)."""
        tokens = tokenize(keyword)
        if not tokens:
            return set()
        result: set[Literal] | None = None
        for token in tokens:
            hits = self._by_token.get(token)
            if not hits:
                return set()
            result = set(hits) if result is None else result & hits
            if not result:
                return set()
        return result or set()

    def search(self, keyword: str, exact: bool = True) -> set[Literal]:
        """Resolve a user keyword to matching literals.

        Tries an exact (normalized) match first — the common case for
        dimension-member labels like "Germany" — and falls back to the
        conjunctive token match when nothing matches exactly, mimicking a
        triplestore text index queried with a quoted phrase then with bare
        terms.  Set ``exact=False`` to go straight to token matching.
        """
        if exact:
            hits = self.search_exact(keyword)
            if hits:
                return hits
        return self.search_tokens(keyword)

    def search_prefix(self, prefix: str, limit: int | None = None) -> set[Literal]:
        """Literals having at least one token starting with ``prefix``."""
        normalized = prefix.lower()
        result: set[Literal] = set()
        for token, literals in self._by_token.items():
            if token.startswith(normalized):
                result.update(literals)
                if limit is not None and len(result) >= limit:
                    break
        return result

    def occurrences(self, literal: Literal) -> set[tuple[Node, IRI]]:
        """All (subject, predicate) pairs under which ``literal`` is stored."""
        return set(self._occurrences.get(literal, ()))

    def subjects_matching(self, keyword: str, exact: bool = True) -> Iterator[tuple[Node, IRI, Literal]]:
        """Yield (subject, predicate, literal) for every keyword occurrence.

        This is the resolution step of Algorithm 1, line 3: given a user
        keyword, find the entities it may describe together with the
        attribute predicate linking them.
        """
        for literal in sorted(self.search(keyword, exact=exact), key=lambda l: l.sort_key()):
            for subject, predicate in sorted(
                self._occurrences[literal],
                key=lambda pair: (pair[0].sort_key(), pair[1].sort_key()),
            ):
                yield subject, predicate, literal

    def scan_search(self, graph, keyword: str) -> set[Literal]:
        """Linear-scan fallback used by the text-index ablation benchmark.

        Performs the same exact-then-token match as :meth:`search` but by
        scanning every literal in ``graph``, i.e. what resolution costs
        without a full-text index.
        """
        wanted = " ".join(tokenize(keyword))
        exact_hits: set[Literal] = set()
        token_hits: set[Literal] = set()
        wanted_tokens = set(tokenize(keyword))
        for literal in graph.literals():
            tokens = tokenize(literal.lexical)
            if " ".join(tokens) == wanted:
                exact_hits.add(literal)
            elif wanted_tokens and wanted_tokens.issubset(tokens):
                token_hits.add(literal)
        return exact_hits or token_hits
