"""Write-ahead log: the durability substrate under the columnar store.

Every mutation of a :class:`~repro.store.durable.DurableGraph` is
appended here — and fsynced — *before* it touches the in-memory delta
buffer, so a crash at any instant loses at most the writes that were
never acknowledged.  The log is a directory of numbered segment files::

    wal/seg-0000000000000001.wal
    wal/seg-0000000000000002.wal
    ...

Each segment starts with a fixed header (magic + format version) and is
a run of self-describing records::

    <u32 payload length> <u32 CRC32(payload)> <payload>
    payload = op byte (b"+" add / b"-" remove)
              + 3 x (u32 length + bytes)   # encoded S, P, O terms

Terms travel in the same tagged binary codec the snapshot format uses
(:func:`repro.store.snapshot.encode_term`), so a record is fully
self-contained: replay never depends on how a particular graph instance
happened to assign integer ids.

Crash anatomy and the replay contract:

* A kill mid-append can only tear the **final** segment (rotation seals
  the previous segment with an fsync before the next one exists).
  Replay detects the torn tail — a short length field, a length pointing
  past EOF, or a CRC mismatch — truncates the file back to the last
  whole record, and reports how many bytes it discarded.
* The same damage inside a *sealed* (non-final) segment cannot be crash
  debris, so it raises :class:`~repro.errors.WALError` instead of being
  silently dropped.
* Records are *absolute* set operations (ensure-present / ensure-absent),
  which makes replay idempotent: applying any ordered suffix of the log
  on top of a snapshot that already reflects a prefix of it converges to
  the same state.  Checkpointing exploits this — segments are only
  pruned once *every* retained snapshot generation covers them, so
  falling back to an older generation still replays to the exact
  acknowledged state.

``sync()`` is the acknowledgement point: :class:`WalWriter.append` only
buffers into the OS, and the durable graph calls ``sync()`` once per
public mutation call — one fsync amortized over an entire ``add_all``
batch (the "fsync-batched" policy the ingest-overhead benchmark gates).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..errors import WALError

__all__ = [
    "WAL_MAGIC",
    "WalRecord",
    "WalReplayReport",
    "WalWriter",
    "encode_record",
    "replay_wal",
    "segment_name",
    "segment_path",
    "list_segments",
    "fsync_directory",
]

WAL_MAGIC = b"REPROWAL\x00"
WAL_VERSION = 1

_SEG_HEADER = struct.Struct("<9sH")  # magic, version
_FRAME = struct.Struct("<II")  # payload length, CRC32(payload)
_U32 = struct.Struct("<I")

#: Rotate to a fresh segment once the current one crosses this size.
DEFAULT_SEGMENT_BYTES = 16 * 1024 * 1024

#: Anything larger than this in a length field is corruption, not a
#: record: one record holds one triple, and terms are bounded in practice.
MAX_PAYLOAD = 64 * 1024 * 1024

OP_ADD = b"+"
OP_REMOVE = b"-"
_OPS = (OP_ADD, OP_REMOVE)


def fsync_directory(path: str) -> None:
    """Flush directory metadata (creates/renames/unlinks) to disk.

    Best-effort: platforms that cannot fsync a directory fd (or sandboxed
    filesystems that reject it) degrade to a no-op rather than failing
    the write they were meant to harden.
    """
    try:
        fd = os.open(path or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def segment_name(seq: int) -> str:
    return f"seg-{seq:016d}.wal"


def segment_path(directory: str, seq: int) -> str:
    return os.path.join(directory, segment_name(seq))


def list_segments(directory: str) -> list[tuple[int, str]]:
    """``(seq, path)`` for every segment file, in ascending seq order."""
    out = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        if name.startswith("seg-") and name.endswith(".wal"):
            middle = name[len("seg-"):-len(".wal")]
            if middle.isdigit():
                out.append((int(middle), os.path.join(directory, name)))
    out.sort()
    return out


@dataclass(frozen=True)
class WalRecord:
    """One replayed mutation: op + the three encoded terms."""

    op: bytes  # OP_ADD or OP_REMOVE
    s: bytes
    p: bytes
    o: bytes


def encode_record(op: bytes, s: bytes, p: bytes, o: bytes) -> bytes:
    """Frame one mutation: length + CRC + self-contained payload."""
    payload = b"".join(
        (op, _U32.pack(len(s)), s, _U32.pack(len(p)), p, _U32.pack(len(o)), o)
    )
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes, where: str) -> WalRecord:
    op = payload[:1]
    if op not in _OPS:
        raise WALError(f"{where}: unknown WAL op byte {op!r}")
    terms = []
    position = 1
    for _ in range(3):
        if position + 4 > len(payload):
            raise WALError(f"{where}: WAL record payload is short")
        (length,) = _U32.unpack_from(payload, position)
        position += 4
        if position + length > len(payload):
            raise WALError(f"{where}: WAL term runs past the record payload")
        terms.append(payload[position : position + length])
        position += length
    if position != len(payload):
        raise WALError(f"{where}: trailing bytes inside a WAL record")
    return WalRecord(op, *terms)


@dataclass
class WalReplayReport:
    """What replay found: volume, and any torn tail it repaired."""

    segments: int = 0
    records: int = 0
    torn_bytes: int = 0  # crash debris truncated off the final segment
    repaired_path: str | None = None
    errors: list[str] = field(default_factory=list)


def _scan_segment(
    data: bytes, path: str, final: bool
) -> tuple[list[WalRecord], int]:
    """Decode one segment; returns (records, valid byte length).

    For the final segment, any malformed suffix is treated as a torn
    tail: scanning stops at the last whole record and the caller
    truncates the file there.  For sealed segments the same damage is a
    hard :class:`WALError`.
    """
    records: list[WalRecord] = []
    if len(data) < _SEG_HEADER.size:
        if final:
            return records, 0
        raise WALError(f"{path}: sealed WAL segment is missing its header")
    magic, version = _SEG_HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC:
        if final:
            return records, 0
        raise WALError(f"{path}: not a WAL segment (bad magic)")
    if version != WAL_VERSION:
        raise WALError(
            f"{path}: WAL format version {version}; this build reads {WAL_VERSION}"
        )
    position = _SEG_HEADER.size
    while position < len(data):
        start = position
        if position + _FRAME.size > len(data):
            break  # torn length/CRC frame
        length, crc = _FRAME.unpack_from(data, position)
        position += _FRAME.size
        if length > MAX_PAYLOAD or position + length > len(data):
            position = start
            break  # torn or insane payload
        payload = data[position : position + length]
        if zlib.crc32(payload) != crc:
            position = start
            break  # torn mid-payload (or flipped bits)
        records.append(_decode_payload(payload, path))
        position += length
    if position < len(data) and not final:
        raise WALError(
            f"{path}: corrupt record at byte {position} inside a sealed segment"
        )
    return records, position


def replay_wal(
    directory: str,
    *,
    opener: Callable = open,
    repair: bool = True,
) -> tuple[Iterator[WalRecord], WalReplayReport]:
    """Read every record in seq order; repair the final segment's tail.

    Returns ``(records, report)`` where ``records`` is a fully-read list
    (replay volume is bounded by checkpoint pruning) and ``report``
    describes what was found.  With ``repair=True`` (the default) a torn
    final segment is truncated on disk back to its last whole record, so
    the writer can append cleanly after recovery.
    """
    report = WalReplayReport()
    segments = list_segments(directory)
    records: list[WalRecord] = []
    for index, (seq, path) in enumerate(segments):
        final = index == len(segments) - 1
        with opener(path, "rb") as handle:
            data = handle.read()
        segment_records, valid = _scan_segment(data, path, final)
        records.extend(segment_records)
        report.segments += 1
        report.records += len(segment_records)
        if valid < len(data):
            report.torn_bytes += len(data) - valid
            report.repaired_path = path
            if repair:
                with opener(path, "r+b") as handle:
                    handle.truncate(valid)
                    handle.flush()
                    os.fsync(handle.fileno())
    return records, report


class WalWriter:
    """Appends framed records to the current segment, rotating as needed.

    Single-writer by design (mirroring :class:`~repro.store.graph.Graph`
    itself); the owning durable graph serializes calls.  After any I/O
    failure the writer poisons itself: a half-written record must never
    get more bytes appended after it, so every later ``append``/``sync``
    raises :class:`WALError` until the store is reopened (which repairs
    the tail).
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: bool = True,
        opener: Callable = open,
    ):
        self._directory = directory
        self._segment_bytes = max(segment_bytes, _SEG_HEADER.size + 1)
        self._fsync = fsync
        self._opener = opener
        self._handle = None
        self._seq = 0
        self._position = 0
        self._poisoned: str | None = None
        self._closed = False
        self.records_appended = 0
        self.bytes_appended = 0
        self.syncs = 0
        os.makedirs(directory, exist_ok=True)
        segments = list_segments(directory)
        if segments:
            seq, path = segments[-1]
            size = os.path.getsize(path)
            if size < _SEG_HEADER.size:
                # Crash debris from a rotation that never wrote a whole
                # header; reinitialize the segment in place.
                self._open_segment(seq, fresh=True)
            else:
                self._seq = seq
                self._handle = self._guard(lambda: opener(path, "ab"))
                self._position = size
        else:
            self._open_segment(1, fresh=True)

    # -- internals ----------------------------------------------------------

    def _guard(self, action):
        """Run an I/O action; poison the writer if it fails."""
        try:
            return action()
        except OSError as exc:
            self._poisoned = str(exc)
            raise WALError(f"write-ahead log I/O failed: {exc}") from exc

    def _check(self) -> None:
        if self._closed:
            raise WALError("write-ahead log is closed")
        if self._poisoned is not None:
            raise WALError(
                "write-ahead log is poisoned after an I/O failure "
                f"({self._poisoned}); reopen the store to recover"
            )

    def _open_segment(self, seq: int, fresh: bool) -> None:
        path = segment_path(self._directory, seq)

        def action():
            handle = self._opener(path, "wb" if fresh else "ab")
            handle.write(_SEG_HEADER.pack(WAL_MAGIC, WAL_VERSION))
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
            return handle

        self._handle = self._guard(action)
        fsync_directory(self._directory)
        self._seq = seq
        self._position = _SEG_HEADER.size

    # -- the write path -----------------------------------------------------

    @property
    def current_seq(self) -> int:
        return self._seq

    @property
    def directory(self) -> str:
        return self._directory

    def append(self, op: bytes, s: bytes, p: bytes, o: bytes) -> None:
        """Buffer one record; durable only after the next :meth:`sync`."""
        self._check()
        if self._position >= self._segment_bytes:
            self.rotate()
        record = encode_record(op, s, p, o)
        self._guard(lambda: self._handle.write(record))
        self._position += len(record)
        self.records_appended += 1
        self.bytes_appended += len(record)

    def sync(self) -> None:
        """Flush buffered records to the OS and (by default) to disk.

        This is the acknowledgement barrier: once it returns, every
        record appended before it survives any crash.
        """
        self._check()

        def action():
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())

        self._guard(action)
        self.syncs += 1

    def rotate(self) -> int:
        """Seal the current segment and start the next; returns its seq.

        The seal is an fsync, so after rotation the previous segment can
        never be torn — the invariant sealed-segment replay relies on.
        """
        self._check()
        self.sync()
        self._guard(self._handle.close)
        self._open_segment(self._seq + 1, fresh=True)
        return self._seq

    def prune_before(self, seq: int) -> int:
        """Delete sealed segments with seq < ``seq``; returns how many.

        Deletes oldest-first so a crash mid-prune always leaves a
        contiguous suffix of the log on disk.
        """
        removed = 0
        for segment_seq, path in list_segments(self._directory):
            if segment_seq >= seq or segment_seq == self._seq:
                continue
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                break  # keep the suffix contiguous
        if removed:
            fsync_directory(self._directory)
        return removed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._handle is not None and self._poisoned is None:
            try:
                self._handle.flush()
                if self._fsync:
                    os.fsync(self._handle.fileno())
            except OSError:
                pass
            try:
                self._handle.close()
            except OSError:
                pass

    def __repr__(self) -> str:
        return (
            f"<WalWriter seg {self._seq} @{self._position}B, "
            f"{self.records_appended} records, {self.syncs} syncs>"
        )
