"""Sorted-run column machinery for the columnar triple index.

A :class:`Run` is one permutation of the triple table held as three
parallel int64 columns sorted lexicographically by ``(a, b, c)``, plus a
CSR-style offset array over the first key: ``starts[x] .. starts[x + 1]``
is the contiguous row range whose first column equals ``x``.  Term ids are
dense, so the offset array turns the outer dict hop of the old
nested-hash layout into one O(1) array read; the remaining keys resolve
with binary searches bounded to that range.  Scans come back as zero-copy
``memoryview`` slices over the columns — contiguous id ranges the
execution layer can iterate (and, later, batch) without per-key hops.

Columns are exposed as memoryviews so they can be backed either by heap
``array('q')`` buffers (in-memory graphs) or by an ``mmap`` of a snapshot
file (see :mod:`repro.store.snapshot`) — the scan code cannot tell the
difference.  Sorting and offset building go through numpy when it is
importable (``lexsort``/``bincount`` on millions of rows) with a pure
stdlib fallback.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left, bisect_right
from typing import Iterable, Sequence

try:  # numpy accelerates merges ~30x; the stdlib path is the safety net.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

if os.environ.get("REPRO_NO_NUMPY"):  # force the stdlib path (CI fallback leg)
    _np = None

__all__ = ["Run", "EMPTY_RUN", "build_run", "merge_run"]

#: int64 in little-endian byte order — the only on-disk representation.
ITEM_SIZE = 8

_EMPTY_MV = memoryview(array("q"))
_ZERO_STARTS = memoryview(array("q", [0]))


class Run:
    """One sorted permutation: three columns + first-key offsets.

    ``a``/``b``/``c`` are memoryviews of int64 in permutation order (for
    SPO: a=subject, b=predicate, c=object).  ``starts`` has
    ``max(a) + 2`` entries; ids beyond it simply have no rows.
    ``owner`` keeps the backing buffers (arrays, numpy arrays, or an open
    mmap) alive for as long as the run is referenced.
    """

    __slots__ = ("a", "b", "c", "starts", "n", "owner", "_np_cols", "_key12")

    def __init__(self, a, b, c, starts, owner=None):
        self.a = a
        self.b = b
        self.c = c
        self.starts = starts
        self.n = len(a)
        self.owner = owner
        self._np_cols = None
        self._key12 = None

    def as_numpy(self):
        """The columns as int64 numpy views ``(a, b, c, starts)``.

        Zero-copy (``frombuffer`` over the memoryviews, heap- or
        mmap-backed alike), cached for the run's lifetime; ``None`` when
        numpy is unavailable.  Runs are immutable, so the cache never
        invalidates.
        """
        if _np is None:
            return None
        cols = self._np_cols
        if cols is None:
            cols = (
                _np.frombuffer(self.a, dtype=_np.int64),
                _np.frombuffer(self.b, dtype=_np.int64),
                _np.frombuffer(self.c, dtype=_np.int64),
                _np.frombuffer(self.starts, dtype=_np.int64),
            )
            self._np_cols = cols
        return cols

    def key12(self, m: int):
        """Composite sort key ``a * m + b`` for vectorized two-key probes.

        ``m`` must exceed every value in ``b`` (callers pass the term
        dictionary size), which keeps the composite order identical to the
        lexicographic ``(a, b)`` order so ``searchsorted`` can bound both
        keys in one call.  Cached per distinct ``m``; the dictionary only
        grows, so at most a handful of composites exist per run.
        """
        cached = self._key12
        if cached is not None and cached[0] == m:
            return cached[1]
        cols = self.as_numpy()
        if cols is None:
            return None
        keys = cols[0] * m + cols[1]
        self._key12 = (m, keys)
        return keys

    def range1(self, x: int) -> tuple[int, int]:
        """Row range ``[lo, hi)`` whose first column equals ``x``."""
        starts = self.starts
        if 0 <= x < len(starts) - 1:
            return starts[x], starts[x + 1]
        return 0, 0

    def range2(self, x: int, y: int) -> tuple[int, int]:
        """Row range whose first two columns equal ``(x, y)``."""
        starts = self.starts
        if not 0 <= x < len(starts) - 1:
            return 0, 0
        lo = starts[x]
        hi = starts[x + 1]
        if lo == hi:
            return 0, 0
        b = self.b
        lo = bisect_left(b, y, lo, hi)
        hi = bisect_right(b, y, lo, hi)
        return lo, hi

    def find(self, x: int, y: int, z: int) -> int:
        """Row index of ``(x, y, z)``, or -1 when absent."""
        lo, hi = self.range2(x, y)
        if lo == hi:
            return -1
        i = bisect_left(self.c, z, lo, hi)
        if i < hi and self.c[i] == z:
            return i
        return -1

    def rows(self) -> Iterable[tuple[int, int, int]]:
        """All rows in sorted order, as tuples."""
        return zip(self.a, self.b, self.c)

    def __len__(self) -> int:
        return self.n


#: The shared empty run (no rows, no keys).
EMPTY_RUN = Run(_EMPTY_MV, _EMPTY_MV, _EMPTY_MV, _ZERO_STARTS)


def _build_starts_py(a: Sequence[int], n: int) -> memoryview:
    """Stdlib offset build over a sorted first-key column."""
    max_id = a[n - 1] if n else -1
    starts = array("q", bytes(ITEM_SIZE * (max_id + 2)))
    # a is sorted, so each key's range ends where the next begins; fill
    # the cumulative boundaries in one pass.
    prev = 0
    for row in range(n):
        key = a[row]
        if key != prev or row == 0:
            for k in range(prev + 1, key + 1):
                starts[k] = row
            prev = key
    for k in range(prev + 1, max_id + 2):
        starts[k] = n
    return memoryview(starts)


def _finish_np(a, b, c) -> Run:
    """Sort numpy columns lexicographically and attach offsets."""
    order = _np.lexsort((c, b, a))
    a = _np.ascontiguousarray(a[order])
    b = _np.ascontiguousarray(b[order])
    c = _np.ascontiguousarray(c[order])
    n = len(a)
    max_id = int(a[-1]) if n else -1
    counts = _np.bincount(a, minlength=max_id + 1)
    starts = _np.zeros(max_id + 2, dtype=_np.int64)
    _np.cumsum(counts, out=starts[1 : max_id + 2])
    owner = (a, b, c, starts)
    return Run(memoryview(a), memoryview(b), memoryview(c), memoryview(starts), owner)


def _finish_py(rows: list[tuple[int, int, int]]) -> Run:
    rows.sort()
    a = array("q", (r[0] for r in rows))
    b = array("q", (r[1] for r in rows))
    c = array("q", (r[2] for r in rows))
    starts = _build_starts_py(a, len(a))
    owner = (a, b, c)
    return Run(memoryview(a), memoryview(b), memoryview(c), starts, owner)


def build_run(rows: list[tuple[int, int, int]]) -> Run:
    """A fresh run from unsorted ``(a, b, c)`` rows."""
    if not rows:
        return EMPTY_RUN
    if _np is not None:
        n = len(rows)
        a = _np.fromiter((r[0] for r in rows), _np.int64, n)
        b = _np.fromiter((r[1] for r in rows), _np.int64, n)
        c = _np.fromiter((r[2] for r in rows), _np.int64, n)
        return _finish_np(a, b, c)
    return _finish_py(list(rows))


def build_run_from_columns(a, b, c) -> Run:
    """A run over already-sorted int64 memoryviews (snapshot load path).

    Only the offset array is (re)built; the columns are used as-is, so a
    caller holding mmap-backed views gets an O(columns-of-one-key) load.
    """
    n = len(a)
    if not n:
        return EMPTY_RUN
    if _np is not None:
        arr = _np.frombuffer(a, dtype=_np.int64)
        max_id = int(arr[-1])
        counts = _np.bincount(arr, minlength=max_id + 1)
        starts = _np.zeros(max_id + 2, dtype=_np.int64)
        _np.cumsum(counts, out=starts[1 : max_id + 2])
        return Run(a, b, c, memoryview(starts), owner=starts)
    return Run(a, b, c, _build_starts_py(a, n))


def merge_run(
    run: Run,
    added: list[tuple[int, int, int]],
    dead_rows: list[int],
) -> Run:
    """Merge delta rows into a run, dropping tombstoned row indices.

    ``added`` rows are in arbitrary order; ``dead_rows`` are row indices
    *within this run* (each dead triple's position found via
    :meth:`Run.find` by the caller).
    """
    n = run.n
    if not n and not added:
        return EMPTY_RUN
    if _np is not None:
        if n:
            a = _np.frombuffer(run.a, dtype=_np.int64)
            b = _np.frombuffer(run.b, dtype=_np.int64)
            c = _np.frombuffer(run.c, dtype=_np.int64)
            if dead_rows:
                keep = _np.ones(n, dtype=bool)
                keep[dead_rows] = False
                a, b, c = a[keep], b[keep], c[keep]
        else:
            a = b = c = _np.empty(0, dtype=_np.int64)
        if added:
            m = len(added)
            a = _np.concatenate([a, _np.fromiter((r[0] for r in added), _np.int64, m)])
            b = _np.concatenate([b, _np.fromiter((r[1] for r in added), _np.int64, m)])
            c = _np.concatenate([c, _np.fromiter((r[2] for r in added), _np.int64, m)])
        if not len(a):
            return EMPTY_RUN
        return _finish_np(a, b, c)
    dead = set(dead_rows)
    rows = [row for i, row in enumerate(run.rows()) if i not in dead]
    rows.extend(added)
    if not rows:
        return EMPTY_RUN
    return _finish_py(rows)
