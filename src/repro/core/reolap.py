"""REOLAP: reverse engineering OLAP queries from examples (Algorithm 1).

Given an example tuple of literals — e.g. ``("Germany", "2014")`` — the
algorithm:

1. resolves every component to its interpretations (dimension members at
   specific virtual-graph levels, :mod:`~repro.core.matching`);
2. enumerates the cartesian product of interpretations across components,
   discarding contradictory combinations (two components forced into the
   same grouping variable with different members, or into the same
   dimension at different levels);
3. generates one candidate query per surviving combination via
   :func:`get_query` — grouping at exactly the matched levels
   (the minimality criterion: ``D(Q(G)) = D(T_E)``), aggregating every
   measure with all four functions;
4. optionally validates each candidate to return a non-empty result
   (Section 5.3's correctness guarantee).

The output is deterministic and complete over the discovered
interpretations: every valid combination yields exactly one query.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import FAULT_ERRORS, SynthesisError
from ..sparql.ast import AskQuery
from ..store.endpoint import Endpoint
from .describe import describe_query
from .matching import Interpretation, find_interpretations
from .olap_query import Anchor, MeasureColumn, OLAPQuery, QueryDimension
from .virtual_graph import VirtualSchemaGraph

__all__ = ["reolap", "reolap_multi", "get_query", "SynthesisReport"]

#: Hard cap on interpretation combinations; the paper notes the space is
#: exponential in the input size but small in practice (Section 5.3).
MAX_COMBINATIONS = 10_000


@dataclass
class SynthesisReport:
    """Diagnostics of one REOLAP run, used by the Fig. 7 benchmarks.

    ``degraded`` is the explicit partial-answer marker of the resilience
    contract: when endpoint faults struck mid-run under ``degrade=True``,
    the returned candidates are a *subset* of the fault-free answer — the
    affected candidates were dropped, never guessed.  ``probe_failures``
    counts validation probes lost to faults and ``failed_keywords`` the
    example components whose interpretation lookup failed outright.
    """

    keyword_interpretations: dict[str, int] = field(default_factory=dict)
    combinations_considered: int = 0
    combinations_invalid: int = 0
    candidates_empty: int = 0
    degraded: bool = False
    probe_failures: int = 0
    failed_keywords: list[str] = field(default_factory=list)

    @property
    def total_interpretations(self) -> int:
        return sum(self.keyword_interpretations.values())


def reolap(
    endpoint: Endpoint,
    vgraph: VirtualSchemaGraph,
    example: tuple[str, ...],
    validate: bool = True,
    report: SynthesisReport | None = None,
    degrade: bool = False,
) -> list[OLAPQuery]:
    """Reverse-engineer the candidate OLAP queries for an example tuple.

    Raises :class:`SynthesisError` when the example is empty or no
    component matches anything in the KG.  Returns an empty list when
    components match individually but no combination is consistent.

    With ``degrade=True`` endpoint faults (transient errors, timeouts —
    :data:`repro.errors.FAULT_ERRORS`) no longer abort the run: a failed
    validation probe drops just that candidate, a failed keyword lookup
    empties the synthesis, and ``report.degraded`` flags the partial
    answer.  The degraded result is always a subset of the fault-free one.
    """
    if not example:
        raise SynthesisError("the example tuple must contain at least one value")
    report = report if report is not None else SynthesisReport()

    per_component: list[list[Interpretation]] = []
    for keyword in example:
        try:
            interpretations = find_interpretations(
                endpoint, vgraph, keyword, validate=validate
            )
        except FAULT_ERRORS:
            if not degrade:
                raise
            # Without this component's interpretations no combination can
            # be enumerated; [] is the only sound partial answer.
            report.degraded = True
            report.failed_keywords.append(keyword)
            report.keyword_interpretations[keyword] = 0
            return []
        report.keyword_interpretations[keyword] = len(interpretations)
        if not interpretations:
            raise SynthesisError(
                f"no dimension member matches the example value {keyword!r}"
            )
        per_component.append(interpretations)

    queries: list[OLAPQuery] = []
    seen_signatures: set[tuple] = set()
    for combination in itertools.product(*per_component):
        report.combinations_considered += 1
        if report.combinations_considered > MAX_COMBINATIONS:
            raise SynthesisError(
                f"interpretation space exceeds {MAX_COMBINATIONS} combinations; "
                "provide more specific example values"
            )
        if not _consistent(combination):
            report.combinations_invalid += 1
            continue
        # Two combinations grouping the same levels with the same members
        # produce the same query; emit it once.
        signature = tuple(sorted((i.level.path, i.member) for i in combination))
        if signature in seen_signatures:
            continue
        seen_signatures.add(signature)
        queries.append(get_query(vgraph, combination))
    if validate:
        queries = _validate_candidates(endpoint, queries, report, degrade=degrade)
    return queries


def _validate_candidates(
    endpoint, queries: list[OLAPQuery], report: SynthesisReport,
    degrade: bool = False,
) -> list[OLAPQuery]:
    """Keep the candidates whose query is non-empty (Section 5.3).

    Candidates without HAVING reduce to ASK probes over their WHERE
    clause, and sibling candidates share most of their anchored patterns —
    so when the endpoint offers :meth:`~repro.store.Endpoint.ask_batch`
    they are validated in one batched round-trip that evaluates the shared
    prefixes once.  Everything else (HAVING candidates, plain endpoints)
    keeps the per-candidate :meth:`is_non_empty` probe.

    With ``degrade=True`` every probe is fault-tolerant: the batch falls
    back to per-candidate ASKs on failure (:func:`repro.resilience.try_ask_batch`),
    and a candidate whose probe cannot be decided is conservatively
    dropped and counted in ``report.probe_failures`` — never kept on a
    guess — so the surviving set is a subset of the fault-free one.
    """
    selects = [query.to_select() for query in queries]
    verdicts: list[bool] = [False] * len(queries)
    probes = [index for index, select in enumerate(selects) if not select.having]
    if degrade and probes:
        from ..resilience.endpoint import try_ask_batch

        asks = [AskQuery(selects[index].where) for index in probes]
        batch_verdicts, degraded = try_ask_batch(endpoint, asks)
        if degraded:
            report.degraded = True
        for index, verdict in zip(probes, batch_verdicts):
            if verdict is None:
                report.probe_failures += 1
            else:
                verdicts[index] = verdict
    else:
        ask_batch = getattr(endpoint, "ask_batch", None)
        if ask_batch is not None and len(probes) > 1:
            asks = [AskQuery(selects[index].where) for index in probes]
            for index, verdict in zip(probes, ask_batch(asks)):
                verdicts[index] = verdict
        else:
            for index in probes:
                verdicts[index] = endpoint.is_non_empty(selects[index])
    for index, select in enumerate(selects):
        if select.having:
            if degrade:
                try:
                    verdicts[index] = endpoint.is_non_empty(select)
                except FAULT_ERRORS:
                    report.degraded = True
                    report.probe_failures += 1
            else:
                verdicts[index] = endpoint.is_non_empty(select)
    report.candidates_empty += sum(1 for verdict in verdicts if not verdict)
    return [query for query, verdict in zip(queries, verdicts) if verdict]


def reolap_multi(
    endpoint: Endpoint,
    vgraph: VirtualSchemaGraph,
    examples: list[tuple[str, ...]],
    validate: bool = True,
) -> list[OLAPQuery]:
    """REOLAP over *multiple* example tuples (the paper's footnote 3).

    All tuples must have the same arity; each column must admit a common
    (dimension, level) reading across every tuple — e.g. the column
    holding ``"Germany"`` and ``"France"`` reads as Country of Destination
    for both rows or for neither.  A candidate survives validation only if
    *every* example tuple's member combination co-occurs in at least one
    observation, so the containment ``T_E ⊑ T`` holds for the whole set.
    """
    if not examples:
        raise SynthesisError("provide at least one example tuple")
    arity = len(examples[0])
    if arity == 0:
        raise SynthesisError("example tuples must contain at least one value")
    if any(len(example) != arity for example in examples):
        raise SynthesisError("all example tuples must have the same arity")
    if len(examples) == 1:
        return reolap(endpoint, vgraph, examples[0], validate=validate)

    # Per column: level path -> per-row interpretation, kept only when
    # every row of the column admits that level.
    column_options: list[dict[tuple, list[Interpretation]]] = []
    for column in range(arity):
        per_row: list[dict[tuple, Interpretation]] = []
        for example in examples:
            interpretations = find_interpretations(
                endpoint, vgraph, example[column], validate=validate
            )
            if not interpretations:
                raise SynthesisError(
                    f"no dimension member matches the example value {example[column]!r}"
                )
            per_row.append({i.level.path: i for i in interpretations})
        common_paths = set(per_row[0])
        for options in per_row[1:]:
            common_paths &= set(options)
        if not common_paths:
            raise SynthesisError(
                f"column {column} has no level shared by all example tuples"
            )
        column_options.append(
            {path: [options[path] for options in per_row] for path in sorted(common_paths)}
        )

    queries: list[OLAPQuery] = []
    seen_signatures: set[tuple] = set()
    for paths in itertools.product(*column_options):
        rows = [
            tuple(column_options[column][paths[column]][row] for column in range(arity))
            for row in range(len(examples))
        ]
        if not all(_consistent(row) for row in rows):
            continue
        signature = tuple(sorted(paths))
        if signature in seen_signatures:
            continue
        seen_signatures.add(signature)
        query = get_query(vgraph, rows[0])
        anchors = tuple(
            Anchor(level=i.level, member=i.member, keyword=i.keyword, group=row_index)
            for row_index, row in enumerate(rows)
            for i in row
        )
        query = query.with_anchors(anchors)
        if validate and not _all_tuples_cooccur(endpoint, vgraph, rows):
            continue
        query = query.described(describe_query(query))
        queries.append(query)
    return queries


def _all_tuples_cooccur(endpoint, vgraph, rows) -> bool:
    """Every example tuple's members reach one common observation."""
    for row in rows:
        patterns = [f"?o a {vgraph.observation_class.n3()} ."]
        for interpretation in row:
            chain = " / ".join(p.n3() for p in interpretation.level.path)
            patterns.append(f"?o {chain} {interpretation.member.n3()} .")
        if not endpoint.ask("ASK { " + " ".join(patterns) + " }"):
            return False
    return True


def _consistent(combination: tuple[Interpretation, ...]) -> bool:
    """Whether a combination can coexist in one GROUP BY query.

    Components may share a level (two countries of destination are two
    rows of the same grouping), but two components in the same dimension
    at *different* levels would make the grouping ambiguous — the paper's
    example never mixes e.g. a month and a year of the same dimension.
    """
    by_dimension: dict = {}
    for interpretation in combination:
        level = interpretation.level
        existing = by_dimension.setdefault(level.dimension_predicate, level)
        if existing.path != level.path:
            return False
    return True


def get_query(
    vgraph: VirtualSchemaGraph, combination: tuple[Interpretation, ...]
) -> OLAPQuery:
    """Build the candidate query for one interpretation combination.

    This is the paper's GetQuery: one grouping dimension per distinct
    matched level (minimality), all measures aggregated with SUM / MIN /
    MAX / AVG, and the matched members recorded as anchors.
    """
    levels = []
    seen_paths = set()
    for interpretation in combination:
        if interpretation.level.path not in seen_paths:
            seen_paths.add(interpretation.level.path)
            levels.append(interpretation.level)
    levels.sort(key=lambda lvl: tuple(p.value for p in lvl.path))
    dimensions = tuple(QueryDimension(level) for level in levels)
    measures = tuple(
        MeasureColumn(predicate, label)
        for predicate, label in sorted(vgraph.measures.items(), key=lambda kv: kv[0].value)
    )
    anchors = tuple(
        Anchor(level=i.level, member=i.member, keyword=i.keyword) for i in combination
    )
    query = OLAPQuery(
        observation_class=vgraph.observation_class,
        dimensions=dimensions,
        measures=measures,
        anchors=anchors,
    )
    return query.described(describe_query(query))
