"""Keyword → dimension-member interpretation matching (Algorithm 1, MATCHES).

Each component of the user's example tuple is a literal value (e.g.
``"Germany"``, ``"2014"``).  Resolution proceeds exactly as Section 5.1
describes:

1. the keyword is resolved to matching literals via the endpoint's
   full-text index, yielding candidate entities and the attribute
   predicates linking them to the literal;
2. the entity's *incoming* predicates are retrieved and checked against
   the virtual schema graph: every level whose terminal predicate matches
   is a candidate interpretation (the same country entity is a member of
   both the origin and the destination level — hence multiple
   interpretations per keyword);
3. each candidate is validated with an ASK probe confirming at least one
   observation reaches the member through the level's full path — the
   correctness guarantee of Section 5.3.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rdf.terms import IRI, Literal, Node
from ..store.endpoint import Endpoint
from .virtual_graph import VLevel, VirtualSchemaGraph

__all__ = ["Interpretation", "find_interpretations"]


@dataclass(frozen=True)
class Interpretation:
    """One way to read a user keyword: a member of a specific level."""

    keyword: str
    literal: Literal
    member: IRI
    attribute_predicate: IRI
    level: VLevel

    def __repr__(self) -> str:
        return f"<Interpretation {self.keyword!r} -> {self.member.local_name()} @ {self.level.label}>"


def find_interpretations(
    endpoint: Endpoint,
    vgraph: VirtualSchemaGraph,
    keyword: str,
    validate: bool = True,
    exact: bool = True,
) -> list[Interpretation]:
    """All validated interpretations of ``keyword`` (Algorithm 1, lines 2-5).

    The keyword is normally resolved through the full-text index over
    member attributes; the paper's footnote 3 also supports *mixed*
    queries naming dimension members directly, so a keyword of the form
    ``<iri>`` (or any IRI present in the graph) is taken as the member
    itself, bypassing label matching.

    ``validate=False`` skips the ASK probes (used by the ablation study on
    validation cost); interpretations are then structural candidates only.
    Results are deterministic: sorted by (member, level path).
    """
    interpretations: list[Interpretation] = []
    seen: set[tuple[IRI, tuple[IRI, ...]]] = set()

    def consider(entity: IRI, attribute_predicate: IRI, literal: Literal) -> None:
        # The candidate levels of an entity are bounded by the virtual
        # graph's terminal predicates (|L| of them), each checked with a
        # constant-anchored ASK probe — never by scanning the entity's
        # incoming edges, whose count grows with the store.
        for incoming in _incoming_terminal_predicates(endpoint, vgraph, entity):
            for level in vgraph.levels_with_terminal(incoming):
                key = (entity, level.path)
                if key in seen:
                    continue
                seen.add(key)
                if validate and not _reaches_observation(endpoint, vgraph, level, entity):
                    continue
                interpretations.append(
                    Interpretation(
                        keyword=keyword,
                        literal=literal,
                        member=entity,
                        attribute_predicate=attribute_predicate,
                        level=level,
                    )
                )

    direct = _as_direct_iri(keyword)
    if direct is not None:
        consider(direct, _SELF_REFERENCE, Literal(direct.value))
    else:
        for entity, attribute_predicate, literal in endpoint.resolve_keyword(
            keyword, exact=exact
        ):
            if isinstance(entity, IRI):
                # Blank-node members cannot be referenced in queries.
                consider(entity, attribute_predicate, literal)
    interpretations.sort(key=lambda i: (i.member.value, tuple(p.value for p in i.level.path)))
    return interpretations


#: Pseudo-predicate marking a member given directly by IRI (footnote 3's
#: mixed input), where no attribute literal was involved.
_SELF_REFERENCE = IRI("urn:repro:direct-iri-reference")


def _as_direct_iri(keyword: str) -> IRI | None:
    """Interpret ``<http://...>`` (or a bare absolute IRI) as a member IRI."""
    text = keyword.strip()
    if text.startswith("<") and text.endswith(">"):
        text = text[1:-1]
    elif "://" not in text:
        return None
    if " " in text or not text:
        return None
    return IRI(text)


def _incoming_terminal_predicates(
    endpoint: Endpoint, vgraph: VirtualSchemaGraph, entity: IRI
) -> list[IRI]:
    """Virtual-graph terminal predicates that point at the entity.

    One ASK probe per distinct terminal predicate (O(|L|) probes, each
    answered from the predicate-object index), instead of enumerating all
    incoming edges of the entity.
    """
    terminals = sorted(
        {level.terminal_predicate for level in vgraph.all_levels()},
        key=lambda p: p.value,
    )
    return [
        predicate for predicate in terminals
        if endpoint.ask(f"ASK {{ ?x {predicate.n3()} {entity.n3()} }}")
    ]


def _reaches_observation(
    endpoint: Endpoint, vgraph: VirtualSchemaGraph, level: VLevel, member: IRI
) -> bool:
    """ASK whether some observation reaches ``member`` through the level path."""
    chain = " / ".join(p.n3() for p in level.path)
    return endpoint.ask(
        f"ASK {{ ?o a {vgraph.observation_class.n3()} . ?o {chain} {member.n3()} }}"
    )
