"""The paper's contribution: REOLAP synthesis + ExRef refinement.

* :mod:`~repro.core.virtual_graph` — the Virtual Schema Graph (Section 5.2);
* :mod:`~repro.core.matching` — keyword-to-member interpretation matching;
* :mod:`~repro.core.reolap` — Algorithm 1, query synthesis from examples;
* :mod:`~repro.core.olap_query` — the OLAP query model and SPARQL assembly;
* :mod:`~repro.core.refine` — ExRef (Disaggregate / TopK / Percentile /
  Similarity, Section 6);
* :mod:`~repro.core.session` — Algorithm 2, the interactive loop;
* :mod:`~repro.core.exploration` — Figure 8c's path accounting;
* :mod:`~repro.core.profiling` — the prototype's dataset profile;
* :mod:`~repro.core.describe` — natural-language query descriptions.
"""

from .contrast import ContrastResult, contrast
from .describe import describe_query
from .exploration import PathAccounting, account_paths
from .insights import (
    AnchorPosition,
    ColumnStatistics,
    anchor_position,
    column_statistics,
    insight_summary,
    outlier_rows,
)
from .labels import LabelResolver, labeled_results
from .negatives import apply_negative_examples, reolap_with_negatives
from .ranking import Ranked, rank_queries, rank_refinements
from .matching import Interpretation, find_interpretations
from .olap_query import (
    AGGREGATE_FUNCTIONS,
    Anchor,
    MeasureColumn,
    OLAPQuery,
    QueryDimension,
)
from .profiling import DatasetProfile, profile
from .refine import (
    Disaggregate,
    Percentile,
    Refinement,
    RefinementMethod,
    Rollup,
    SimilaritySearch,
    Slice,
    TopK,
)
from .reolap import SynthesisReport, get_query, reolap, reolap_multi
from .session import ExplorationSession, ExplorationStep, FailedStep, StepOutcome
from .suggest import Suggestion, suggest
from .trace import export_history, to_json, to_markdown
from .views import AnalyticalView, DimensionMapping, MeasureMapping, RollupStep
from .virtual_graph import (
    DEFAULT_EXCLUDED_PREDICATES,
    VirtualSchemaGraph,
    VLevel,
    path_variable,
)

__all__ = [
    "VirtualSchemaGraph",
    "VLevel",
    "path_variable",
    "DEFAULT_EXCLUDED_PREDICATES",
    "Interpretation",
    "find_interpretations",
    "reolap",
    "reolap_multi",
    "get_query",
    "SynthesisReport",
    "OLAPQuery",
    "QueryDimension",
    "MeasureColumn",
    "Anchor",
    "AGGREGATE_FUNCTIONS",
    "Refinement",
    "RefinementMethod",
    "Disaggregate",
    "Rollup",
    "Slice",
    "TopK",
    "Percentile",
    "SimilaritySearch",
    "ExplorationSession",
    "ExplorationStep",
    "FailedStep",
    "StepOutcome",
    "PathAccounting",
    "account_paths",
    "DatasetProfile",
    "profile",
    "describe_query",
    "LabelResolver",
    "labeled_results",
    "Ranked",
    "rank_queries",
    "rank_refinements",
    "apply_negative_examples",
    "reolap_with_negatives",
    "ContrastResult",
    "contrast",
    "ColumnStatistics",
    "AnchorPosition",
    "column_statistics",
    "outlier_rows",
    "anchor_position",
    "insight_summary",
    "export_history",
    "to_json",
    "to_markdown",
    "Suggestion",
    "suggest",
    "AnalyticalView",
    "DimensionMapping",
    "MeasureMapping",
    "RollupStep",
]
