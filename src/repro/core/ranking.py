"""Ranking of interpretations and refinements (paper's future work).

Section 8 leaves open "a method for ranking the suggested query
reformulations to help the user prioritize among them" and the ranking of
candidate interpretations.  This extension implements explainable
heuristics consistent with the paper's design criteria (simplicity,
explainability):

* **Candidate queries** are scored by the *specificity* of their grouping
  levels — levels with fewer members first (a query grouped by continent
  is easier to read than one grouped by 40k artists), breaking ties by
  shallower hierarchy depth and the query's dimension count.
* **Refinements** are scored by how much attention they save: subset
  refinements by the fraction of tuples they remove, drill-downs by the
  (low) cardinality of the level they add.

Both functions return (item, score, reason) triples sorted best-first, so
a UI can show *why* a suggestion ranks where it does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Sequence, TypeVar

from ..sparql.results import ResultSet
from .olap_query import OLAPQuery
from .refine.base import Refinement

__all__ = ["Ranked", "rank_queries", "rank_refinements"]

T = TypeVar("T")


@dataclass(frozen=True)
class Ranked(Generic[T]):
    """One ranked suggestion: the item, its score, and the explanation."""

    item: T
    score: float
    reason: str


def rank_queries(queries: Sequence[OLAPQuery]) -> list[Ranked[OLAPQuery]]:
    """Order candidate queries most-readable-first.

    Score = negative total member count over the grouped levels (fewer
    groups → higher), with a small penalty per extra hierarchy hop.
    """
    ranked: list[Ranked[OLAPQuery]] = []
    for query in queries:
        members = sum(d.level.member_count for d in query.dimensions)
        depth = sum(d.level.depth for d in query.dimensions)
        score = -float(members) - 0.1 * depth
        reason = (
            f"groups {members} members across {len(query.dimensions)} "
            f"dimension(s), total hierarchy depth {depth}"
        )
        ranked.append(Ranked(query, score, reason))
    ranked.sort(key=lambda r: (-r.score, r.item.description))
    return ranked


def rank_refinements(
    refinements: Sequence[Refinement], results: ResultSet
) -> list[Ranked[Refinement]]:
    """Order refinement proposals by expected attention saved.

    Subset refinements (topk / percentile / similarity) are scored by the
    share of current tuples they are expected to remove (parsed from their
    structure where available); Disaggregate proposals by the inverse of
    the added level's member count, so low-cardinality drill-downs that
    keep the result readable come first.
    """
    current = max(1, len(results))
    ranked: list[Ranked[Refinement]] = []
    for refinement in refinements:
        if refinement.kind == "disaggregate":
            added = refinement.query.dimensions[-1].level
            score = 1.0 / (1 + added.member_count)
            reason = (
                f"adds \"{added.label}\" with only {added.member_count} members"
                if added.member_count <= 25
                else f"adds \"{added.label}\" ({added.member_count} members — large)"
            )
        elif refinement.kind in ("topk", "percentile"):
            # HAVING thresholds shrink the result; estimate via the number
            # of constraints (each cuts the set further).
            cuts = len(refinement.query.having)
            score = 0.5 + 0.1 * cuts
            reason = f"filters the {current} current tuples with {cuts} threshold(s)"
        elif refinement.kind == "similarity":
            restrictions = refinement.query.member_restrictions
            kept = len(restrictions[-1].rows) if restrictions else current
            score = 1.0 - kept / (current + 1)
            reason = f"restricts to {kept} member combination(s) out of {current} tuples"
        elif refinement.kind == "slice":
            # Slicing both narrows the data and removes a column: the
            # strongest attention saver when the user cares about one member.
            score = 0.9
            reason = "pins one dimension to the example and drops the column"
        elif refinement.kind == "rollup":
            score = 0.4
            reason = "summarizes one dimension at a coarser level"
        else:
            score = 0.0
            reason = "unknown refinement kind"
        ranked.append(Ranked(refinement, score, reason))
    ranked.sort(key=lambda r: (-r.score, r.item.explanation))
    return ranked
