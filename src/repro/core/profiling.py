"""Dataset profiling: the prototype's data-overview feature (Section 7.2).

The user study's prototype offered "a data profiling functionality,
returning general information and statistics about the dataset (e.g.,
listing the available dimensions and the number of distinct members)".
Everything needed is already in the virtual schema graph, so the profile
is assembled without touching the endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from .virtual_graph import VirtualSchemaGraph

__all__ = ["DatasetProfile", "profile"]


@dataclass(frozen=True)
class DatasetProfile:
    """A structural summary of a statistical KG."""

    observation_count: int
    n_dimensions: int
    n_levels: int
    n_members: int
    measures: tuple[str, ...]
    levels: tuple[tuple[str, int], ...]  # (label, member count) per level

    def pretty(self) -> str:
        lines = [
            f"observations: {self.observation_count}",
            f"dimensions:   {self.n_dimensions}",
            f"levels:       {self.n_levels} ({self.n_members} members in total)",
            "measures:     " + ", ".join(self.measures),
            "",
            "level                                      members",
            "-" * 52,
        ]
        for label, count in self.levels:
            lines.append(f"{label:<42} {count:>8}")
        return "\n".join(lines)


def profile(vgraph: VirtualSchemaGraph) -> DatasetProfile:
    """Build the dataset profile from a bootstrapped virtual schema graph."""
    levels = tuple(
        (level.label, level.member_count) for level in vgraph.all_levels()
    )
    return DatasetProfile(
        observation_count=vgraph.observation_count,
        n_dimensions=len(vgraph.dimension_predicates()),
        n_levels=vgraph.n_levels,
        n_members=vgraph.n_members,
        measures=tuple(sorted(vgraph.measures.values())),
        levels=levels,
    )
