"""The Re2xOLAP interactive exploration session (Algorithm 2).

The session ties synthesis and refinement together: the user (or a driving
program) provides an example tuple, picks one of the synthesized queries,
inspects its results, asks for refinements by kind, applies one, and can
backtrack — "the user can move from very simple queries to more complex
ones without the need to write any query".

The paper's ``Show`` steps are replaced by return values: candidate lists,
result sets, and refinement menus come back to the caller, which makes the
class equally usable from a REPL, a UI, or the benchmark harness.  Each
interaction is recorded with the number of options it offered and the size
of its results, feeding the exploration-path accounting of Figure 8c.

**Resilience contract** (``degrade=True``, the default): endpoint faults —
transient errors, timeouts, an open circuit breaker
(:data:`repro.errors.FAULT_ERRORS`) — never kill the session.  A faulted
interaction is recorded as a :class:`FailedStep`, the current exploration
state is preserved, and the caller gets an explicitly degraded answer (an
empty candidate list, an empty result set, an empty refinement menu)
instead of an exception.  Deterministic errors (bad index, unknown
refinement kind, unmatched example values) still raise: they are caller
bugs, not endpoint weather.  :meth:`step` packages the whole contract as
a single never-raising entry point for drivers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import FAULT_ERRORS, RefinementError, SynthesisError
from ..sparql.results import ResultSet
from ..store.endpoint import Endpoint
from .olap_query import OLAPQuery
from .refine import (
    Disaggregate,
    Percentile,
    Refinement,
    Rollup,
    SimilaritySearch,
    Slice,
    TopK,
)
from .reolap import SynthesisReport, reolap
from .virtual_graph import VirtualSchemaGraph

__all__ = ["ExplorationSession", "ExplorationStep", "FailedStep", "StepOutcome"]


@dataclass
class ExplorationStep:
    """One point of the exploration: a query, its results, its options."""

    query: OLAPQuery
    results: ResultSet
    kind: str  # "synthesis" or the refinement kind that produced it
    options_offered: int  # how many alternatives the user chose among
    elapsed: float = 0.0  # endpoint evaluation time, feeds serving stats

    @property
    def n_tuples(self) -> int:
        return len(self.results)


@dataclass
class FailedStep:
    """One interaction lost to an endpoint fault; the session lives on."""

    kind: str  # "synthesize" | "choose" | "refine:<kind>" | "apply:<kind>"
    error: str
    error_type: str  # exception class name, for fault accounting
    elapsed: float = 0.0


@dataclass
class StepOutcome:
    """What :meth:`ExplorationSession.step` reports for one interaction."""

    action: str
    ok: bool  # the interaction completed without absorbing a fault
    value: Any = None  # the underlying method's return value (if any)
    degraded: bool = False  # a partial answer was returned
    error: str | None = None  # message of the absorbed fault / rejection


class ExplorationSession:
    """Drives one example-to-insight exploration over an endpoint."""

    def __init__(
        self,
        endpoint: Endpoint,
        vgraph: VirtualSchemaGraph,
        similarity_k: int = 3,
        percentile_cuts: tuple[int, ...] = (25, 50, 75, 90),
        degrade: bool = True,
    ):
        self.endpoint = endpoint
        self.vgraph = vgraph
        self.degrade = degrade
        self.methods = {
            "disaggregate": Disaggregate(vgraph),
            "rollup": Rollup(vgraph, endpoint),
            "slice": Slice(),
            "topk": TopK(),
            "percentile": Percentile(percentile_cuts),
            "similarity": SimilaritySearch(similarity_k),
        }
        self._candidates: list[OLAPQuery] = []
        self._steps: list[ExplorationStep] = []
        self._failures: list[FailedStep] = []
        self.last_report: SynthesisReport | None = None

    def _record_failure(self, kind: str, error: BaseException,
                        elapsed: float = 0.0) -> FailedStep:
        failed = FailedStep(kind, str(error), type(error).__name__, elapsed)
        self._failures.append(failed)
        return failed

    # -- synthesis phase --------------------------------------------------------

    def synthesize(self, *example: str) -> list[OLAPQuery]:
        """Run REOLAP on an example tuple; returns the candidate queries.

        Starting a new synthesis resets any previous exploration.  Under
        the resilience contract a synthesis lost to endpoint faults is
        recorded as a failed step and returns ``[]`` — the previous
        exploration state is *kept* so the analyst can continue from it;
        ``last_report.degraded`` flags partial candidate sets.
        """
        report = SynthesisReport()
        self.last_report = report
        start = time.monotonic()
        try:
            candidates = reolap(
                self.endpoint, self.vgraph, tuple(example),
                report=report, degrade=self.degrade,
            )
        except FAULT_ERRORS as error:
            if not self.degrade:
                raise
            report.degraded = True
            self._record_failure("synthesize", error, time.monotonic() - start)
            self._candidates = []
            return []
        if report.degraded and not candidates:
            # Faults ate the whole synthesis; keep the current exploration.
            self._record_failure(
                "synthesize",
                SynthesisError(
                    "synthesis degraded to no candidates "
                    f"(failed keywords: {report.failed_keywords or 'none'}, "
                    f"lost probes: {report.probe_failures})"
                ),
                time.monotonic() - start,
            )
            self._candidates = []
            return []
        self._candidates = candidates
        self._steps = []
        return list(candidates)

    def choose(self, index: int) -> ResultSet:
        """Pick a synthesized candidate and execute it.

        A faulted execution (under the resilience contract) records a
        failed step and returns an empty result set; the step history —
        and therefore :attr:`current` — is unchanged.
        """
        if not self._candidates:
            raise SynthesisError("call synthesize() before choose()")
        if not 0 <= index < len(self._candidates):
            raise IndexError(
                f"candidate index {index} out of range (0..{len(self._candidates) - 1})"
            )
        query = self._candidates[index]
        start = time.monotonic()
        try:
            results = self.endpoint.select(query.to_select())
        except FAULT_ERRORS as error:
            if not self.degrade:
                raise
            self._record_failure("choose", error, time.monotonic() - start)
            return ResultSet((), ())
        elapsed = time.monotonic() - start
        self._steps.append(
            ExplorationStep(query, results, "synthesis", len(self._candidates),
                            elapsed=elapsed)
        )
        return results

    # -- refinement phase ------------------------------------------------------

    @property
    def current(self) -> ExplorationStep:
        if not self._steps:
            raise RefinementError("no query chosen yet")
        return self._steps[-1]

    @property
    def query(self) -> OLAPQuery:
        return self.current.query

    @property
    def results(self) -> ResultSet:
        return self.current.results

    @property
    def history(self) -> list[ExplorationStep]:
        return list(self._steps)

    @property
    def failures(self) -> list[FailedStep]:
        """Interactions lost to endpoint faults, in order of occurrence."""
        return list(self._failures)

    @property
    def total_query_time(self) -> float:
        """Endpoint time spent across all steps (serving-stats feed)."""
        return sum(step.elapsed for step in self._steps)

    def refinement_kinds(self) -> list[str]:
        return sorted(self.methods)

    def refinements(self, kind: str) -> list[Refinement]:
        """Proposals of one ExRef method for the current query.

        Methods that consult the endpoint (e.g. rollup member counts) may
        hit faults; under the resilience contract the menu degrades to
        ``[]`` and the failure is recorded.
        """
        try:
            method = self.methods[kind]
        except KeyError:
            raise RefinementError(
                f"unknown refinement kind {kind!r}; expected one of {sorted(self.methods)}"
            ) from None
        try:
            return method.propose(self.current.query, self.current.results)
        except FAULT_ERRORS as error:
            if not self.degrade:
                raise
            self._record_failure(f"refine:{kind}", error)
            return []

    def all_refinements(self) -> dict[str, list[Refinement]]:
        """Proposals of every method, keyed by kind (the Show menu)."""
        return {kind: self.refinements(kind) for kind in self.refinement_kinds()}

    def apply(self, refinement: Refinement, options_offered: int | None = None) -> ResultSet:
        """Execute a refinement and make it the current step.

        ``options_offered`` defaults to the number of proposals the
        refinement's method currently offers (used by Figure 8c's path
        accounting); pass it explicitly when applying a stale proposal.
        Like :meth:`choose`, a faulted execution records a failed step,
        leaves the current step in place, and returns an empty result set.
        """
        if options_offered is None:
            options_offered = len(self.refinements(refinement.kind))
        start = time.monotonic()
        try:
            results = self.endpoint.select(refinement.query.to_select())
        except FAULT_ERRORS as error:
            if not self.degrade:
                raise
            self._record_failure(f"apply:{refinement.kind}", error,
                                 time.monotonic() - start)
            return ResultSet((), ())
        elapsed = time.monotonic() - start
        self._steps.append(
            ExplorationStep(refinement.query, results, refinement.kind,
                            options_offered, elapsed=elapsed)
        )
        return results

    def back(self) -> ExplorationStep:
        """Backtrack one step (the paper's alternative-path exploration)."""
        if len(self._steps) < 2:
            raise RefinementError("cannot backtrack past the initial query")
        self._steps.pop()
        return self._steps[-1]

    # -- the resilient driver entry point ----------------------------------

    def step(self, action: str, *args, **kwargs) -> StepOutcome:
        """Run one interaction; never raises, whatever the endpoint does.

        ``action`` is one of ``synthesize``, ``choose``, ``refinements``,
        ``all_refinements``, ``apply``, ``back``; remaining arguments are
        forwarded.  Endpoint faults are absorbed (recorded as failed
        steps, per the resilience contract) and reported in the outcome;
        deterministic rejections (bad index, nothing to backtrack, no
        matching member) come back as ``ok=False`` outcomes too, so a
        scripted driver — or a chaos schedule — can keep going
        unconditionally.
        """
        handlers = {
            "synthesize": self.synthesize,
            "choose": self.choose,
            "refinements": self.refinements,
            "all_refinements": self.all_refinements,
            "apply": self.apply,
            "back": self.back,
        }
        handler = handlers.get(action)
        if handler is None:
            return StepOutcome(action, ok=False,
                               error=f"unknown action {action!r}")
        failures_before = len(self._failures)
        try:
            value = handler(*args, **kwargs)
        except FAULT_ERRORS as error:
            # Only reachable with degrade=False; absorb it here so step()
            # honours the never-raise contract either way.
            self._record_failure(action, error)
            return StepOutcome(action, ok=False, degraded=True, error=str(error))
        except (IndexError, KeyError, ValueError, SynthesisError,
                RefinementError) as error:
            return StepOutcome(action, ok=False, error=str(error))
        absorbed = len(self._failures) > failures_before
        degraded = absorbed or (
            action == "synthesize"
            and self.last_report is not None
            and self.last_report.degraded
        )
        error = self._failures[-1].error if absorbed else None
        return StepOutcome(action, ok=not absorbed, value=value,
                           degraded=degraded, error=error)
