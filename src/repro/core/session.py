"""The Re2xOLAP interactive exploration session (Algorithm 2).

The session ties synthesis and refinement together: the user (or a driving
program) provides an example tuple, picks one of the synthesized queries,
inspects its results, asks for refinements by kind, applies one, and can
backtrack — "the user can move from very simple queries to more complex
ones without the need to write any query".

The paper's ``Show`` steps are replaced by return values: candidate lists,
result sets, and refinement menus come back to the caller, which makes the
class equally usable from a REPL, a UI, or the benchmark harness.  Each
interaction is recorded with the number of options it offered and the size
of its results, feeding the exploration-path accounting of Figure 8c.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import RefinementError, SynthesisError
from ..sparql.results import ResultSet
from ..store.endpoint import Endpoint
from .olap_query import OLAPQuery
from .refine import (
    Disaggregate,
    Percentile,
    Refinement,
    Rollup,
    SimilaritySearch,
    Slice,
    TopK,
)
from .reolap import reolap
from .virtual_graph import VirtualSchemaGraph

__all__ = ["ExplorationSession", "ExplorationStep"]


@dataclass
class ExplorationStep:
    """One point of the exploration: a query, its results, its options."""

    query: OLAPQuery
    results: ResultSet
    kind: str  # "synthesis" or the refinement kind that produced it
    options_offered: int  # how many alternatives the user chose among
    elapsed: float = 0.0  # endpoint evaluation time, feeds serving stats

    @property
    def n_tuples(self) -> int:
        return len(self.results)


class ExplorationSession:
    """Drives one example-to-insight exploration over an endpoint."""

    def __init__(
        self,
        endpoint: Endpoint,
        vgraph: VirtualSchemaGraph,
        similarity_k: int = 3,
        percentile_cuts: tuple[int, ...] = (25, 50, 75, 90),
    ):
        self.endpoint = endpoint
        self.vgraph = vgraph
        self.methods = {
            "disaggregate": Disaggregate(vgraph),
            "rollup": Rollup(vgraph, endpoint),
            "slice": Slice(),
            "topk": TopK(),
            "percentile": Percentile(percentile_cuts),
            "similarity": SimilaritySearch(similarity_k),
        }
        self._candidates: list[OLAPQuery] = []
        self._steps: list[ExplorationStep] = []

    # -- synthesis phase --------------------------------------------------------

    def synthesize(self, *example: str) -> list[OLAPQuery]:
        """Run REOLAP on an example tuple; returns the candidate queries.

        Starting a new synthesis resets any previous exploration.
        """
        self._candidates = reolap(self.endpoint, self.vgraph, tuple(example))
        self._steps = []
        return list(self._candidates)

    def choose(self, index: int) -> ResultSet:
        """Pick a synthesized candidate and execute it."""
        if not self._candidates:
            raise SynthesisError("call synthesize() before choose()")
        if not 0 <= index < len(self._candidates):
            raise IndexError(
                f"candidate index {index} out of range (0..{len(self._candidates) - 1})"
            )
        query = self._candidates[index]
        start = time.monotonic()
        results = self.endpoint.select(query.to_select())
        elapsed = time.monotonic() - start
        self._steps.append(
            ExplorationStep(query, results, "synthesis", len(self._candidates),
                            elapsed=elapsed)
        )
        return results

    # -- refinement phase ------------------------------------------------------

    @property
    def current(self) -> ExplorationStep:
        if not self._steps:
            raise RefinementError("no query chosen yet")
        return self._steps[-1]

    @property
    def query(self) -> OLAPQuery:
        return self.current.query

    @property
    def results(self) -> ResultSet:
        return self.current.results

    @property
    def history(self) -> list[ExplorationStep]:
        return list(self._steps)

    @property
    def total_query_time(self) -> float:
        """Endpoint time spent across all steps (serving-stats feed)."""
        return sum(step.elapsed for step in self._steps)

    def refinement_kinds(self) -> list[str]:
        return sorted(self.methods)

    def refinements(self, kind: str) -> list[Refinement]:
        """Proposals of one ExRef method for the current query."""
        try:
            method = self.methods[kind]
        except KeyError:
            raise RefinementError(
                f"unknown refinement kind {kind!r}; expected one of {sorted(self.methods)}"
            ) from None
        return method.propose(self.current.query, self.current.results)

    def all_refinements(self) -> dict[str, list[Refinement]]:
        """Proposals of every method, keyed by kind (the Show menu)."""
        return {kind: self.refinements(kind) for kind in self.refinement_kinds()}

    def apply(self, refinement: Refinement, options_offered: int | None = None) -> ResultSet:
        """Execute a refinement and make it the current step.

        ``options_offered`` defaults to the number of proposals the
        refinement's method currently offers (used by Figure 8c's path
        accounting); pass it explicitly when applying a stale proposal.
        """
        if options_offered is None:
            options_offered = len(self.refinements(refinement.kind))
        start = time.monotonic()
        results = self.endpoint.select(refinement.query.to_select())
        elapsed = time.monotonic() - start
        self._steps.append(
            ExplorationStep(refinement.query, results, refinement.kind,
                            options_offered, elapsed=elapsed)
        )
        return results

    def back(self) -> ExplorationStep:
        """Backtrack one step (the paper's alternative-path exploration)."""
        if len(self._steps) < 2:
            raise RefinementError("cannot backtrack past the initial query")
        self._steps.pop()
        return self._steps[-1]
