"""Negative examples (paper's future work, Section 8).

"Our current approach does not support complex use cases where ... the
user provides instead a set of negative examples."  This extension adds
that capability on top of REOLAP: given synthesized candidate queries and
a set of negative keywords, each query is rewritten so its results no
longer contain tuples involving the negative members.

Semantics: a negative keyword is resolved to interpretations exactly like
a positive one.  For every candidate query, every grouped level that a
negative member belongs to receives a ``FILTER(?level != member)``
exclusion; candidates whose *anchors* conflict with a negative member
(the user both asked for and excluded it) are dropped.
"""

from __future__ import annotations

from ..errors import SynthesisError
from ..sparql.ast import Comparison, TermExpr
from ..store.endpoint import Endpoint
from .matching import find_interpretations
from .olap_query import OLAPQuery
from .virtual_graph import VirtualSchemaGraph

__all__ = ["apply_negative_examples", "reolap_with_negatives"]


def apply_negative_examples(
    endpoint: Endpoint,
    vgraph: VirtualSchemaGraph,
    queries: list[OLAPQuery],
    negatives: tuple[str, ...],
) -> list[OLAPQuery]:
    """Exclude negative-example members from the candidate queries.

    Returns the surviving queries (possibly fewer: candidates anchored on
    a negated member are discarded).  Unmatched negative keywords raise
    :class:`SynthesisError` — silently ignoring an exclusion the user
    asked for would be worse than failing.
    """
    exclusions = []  # (level path, member, keyword)
    for keyword in negatives:
        interpretations = find_interpretations(endpoint, vgraph, keyword)
        if not interpretations:
            raise SynthesisError(
                f"no dimension member matches the negative example {keyword!r}"
            )
        exclusions.extend(
            (i.level.path, i.member, keyword) for i in interpretations
        )

    surviving: list[OLAPQuery] = []
    for query in queries:
        negated_anchor = any(
            anchor.member == member and anchor.level.path == path
            for path, member, _keyword in exclusions
            for anchor in query.anchors
        )
        if negated_anchor:
            continue  # the user both exemplified and excluded this member
        refined = query
        applied = []
        for path, member, keyword in exclusions:
            for dimension in query.dimensions:
                if dimension.level.path != path:
                    continue
                constraint = Comparison(
                    "!=", TermExpr(dimension.variable), TermExpr(member)
                )
                refined = refined.with_filter(constraint)
                applied.append(keyword)
        if applied:
            refined = refined.described(
                query.description
                + " — excluding " + ", ".join(repr(k) for k in sorted(set(applied)))
            )
        surviving.append(refined)
    return surviving


def reolap_with_negatives(
    endpoint: Endpoint,
    vgraph: VirtualSchemaGraph,
    example: tuple[str, ...],
    negatives: tuple[str, ...] = (),
) -> list[OLAPQuery]:
    """REOLAP extended with negative examples, in one call."""
    from .reolap import reolap

    queries = reolap(endpoint, vgraph, example)
    if not negatives:
        return queries
    return apply_negative_examples(endpoint, vgraph, queries, negatives)
