"""Keyword suggestions: autocomplete for example-value entry.

The paper's system is driven by a UI search box; this module provides the
service behind it: given a few typed characters, suggest member labels
together with the levels they would be interpreted at, so the user can
pick an unambiguous example value before synthesis even runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rdf.terms import IRI, Literal
from ..store.endpoint import Endpoint
from .virtual_graph import VirtualSchemaGraph

__all__ = ["Suggestion", "suggest"]


@dataclass(frozen=True)
class Suggestion:
    """One completion: a label and the level labels it may refer to."""

    label: str
    levels: tuple[str, ...]

    @property
    def is_ambiguous(self) -> bool:
        return len(self.levels) > 1

    def render(self) -> str:
        return f"{self.label}  ({' | '.join(self.levels)})"


def suggest(
    endpoint: Endpoint,
    vgraph: VirtualSchemaGraph,
    prefix: str,
    limit: int = 10,
) -> list[Suggestion]:
    """Member-label completions for a typed prefix.

    Labels are matched by token prefix through the text index; each hit is
    mapped to the virtual-graph levels a full keyword match would resolve
    to (without the per-level ASK validation — suggestions are previews,
    synthesis re-validates).  Results are sorted by label, capped at
    ``limit``.
    """
    if not prefix.strip():
        return []
    terminal_levels: dict[IRI, list[str]] = {}
    for level in vgraph.all_levels():
        terminal_levels.setdefault(level.terminal_predicate, []).append(level.label)

    suggestions: dict[str, set[str]] = {}
    hits = sorted(
        endpoint.text_index.search_prefix(prefix),
        key=lambda literal: literal.sort_key(),
    )
    for literal in hits:
        if len(suggestions) >= limit and literal.lexical not in suggestions:
            continue
        level_labels: set[str] = set()
        for subject, _predicate in endpoint.text_index.occurrences(literal):
            if not isinstance(subject, IRI):
                continue
            for terminal, labels in terminal_levels.items():
                if endpoint.ask(f"ASK {{ ?x {terminal.n3()} {subject.n3()} }}"):
                    level_labels.update(labels)
        if level_labels:
            suggestions.setdefault(literal.lexical, set()).update(level_labels)
    return [
        Suggestion(label=label, levels=tuple(sorted(levels)))
        for label, levels in sorted(suggestions.items())
    ][:limit]
