"""Label rendering: presenting result tuples with human-readable names.

Query results bind dimension variables to member IRIs; the paper's UI (and
its Table 2) shows the members' labels instead.  This module resolves
labels through the endpoint — preferring ``rdfs:label``, falling back to
any literal attribute, then to the IRI's local name — with a small cache
so interactive sessions do one lookup per member.
"""

from __future__ import annotations

from ..qb.vocabulary import LABEL
from ..rdf.terms import IRI, Literal, Node
from ..sparql.results import ResultSet
from ..store.endpoint import Endpoint

__all__ = ["LabelResolver", "labeled_results"]


class LabelResolver:
    """Resolves display labels for IRIs through an endpoint, with caching."""

    def __init__(self, endpoint: Endpoint):
        self.endpoint = endpoint
        self._cache: dict[IRI, str] = {}

    def label(self, node: Node | None) -> str:
        """The display label of a term (empty string for unbound)."""
        if node is None:
            return ""
        if isinstance(node, Literal):
            return node.lexical
        if not isinstance(node, IRI):
            return node.n3()
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        resolved = self._lookup(node)
        self._cache[node] = resolved
        return resolved

    def _lookup(self, iri: IRI) -> str:
        result = self.endpoint.select(
            f"SELECT ?l WHERE {{ {iri.n3()} {LABEL.n3()} ?l }} LIMIT 1"
        )
        if result.rows:
            return result.rows[0][0].lexical
        # Fall back to any literal attribute of the entity.
        result = self.endpoint.select(
            f"SELECT ?l WHERE {{ {iri.n3()} ?p ?l . FILTER(isLiteral(?l)) }} LIMIT 1"
        )
        if result.rows:
            return result.rows[0][0].lexical
        return iri.local_name()


def labeled_results(endpoint: Endpoint, results: ResultSet) -> ResultSet:
    """A copy of ``results`` with every IRI replaced by its display label.

    The returned set holds plain literals, which render naturally through
    :meth:`ResultSet.pretty` — this is what the examples and the CLI show
    to the user.
    """
    resolver = LabelResolver(endpoint)
    rows = []
    for row in results.rows:
        rows.append(tuple(
            value if not isinstance(value, IRI) else Literal(resolver.label(value))
            for value in row
        ))
    return ResultSet(results.variables, rows)
