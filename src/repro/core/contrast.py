"""Contrastive analytics over two example sets (paper's future work).

Section 8: "our current approach does not support complex use cases where
the user is interested in contrasting the measure values of two different
sets of examples".  This extension supports exactly that: given two
example tuples (e.g. ``("Germany",)`` vs ``("France",)``), it

1. synthesizes candidate queries for each side with REOLAP;
2. pairs candidates sharing the same grouping-level signature (the two
   sides must be contrasted *on the same view* to be meaningful);
3. executes the shared query once and splits the result rows into the
   side-A slice, the side-B slice, and computes per-aggregate deltas.

The result is an explainable side-by-side comparison in the spirit of the
user-study request "I want to see the sums for my country compared to the
other".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SynthesisError
from ..rdf.terms import Literal, Variable
from ..sparql.results import ResultSet
from ..store.endpoint import Endpoint
from .olap_query import OLAPQuery
from .reolap import reolap
from .virtual_graph import VirtualSchemaGraph

__all__ = ["ContrastResult", "contrast"]


@dataclass(frozen=True)
class ContrastResult:
    """One paired comparison: the shared query and both sides' slices."""

    query: OLAPQuery
    side_a: ResultSet
    side_b: ResultSet
    #: aggregate alias name -> (sum over side A rows, sum over side B rows)
    totals: dict[str, tuple[float, float]]

    def delta(self, alias: str) -> float:
        """side A minus side B for one aggregate column."""
        a, b = self.totals[alias]
        return a - b

    def pretty(self) -> str:
        lines = [self.query.description, ""]
        header = f"{'aggregate':<28} {'side A':>14} {'side B':>14} {'delta':>14}"
        lines.append(header)
        lines.append("-" * len(header))
        for alias, (a, b) in sorted(self.totals.items()):
            lines.append(f"{alias:<28} {a:>14.1f} {b:>14.1f} {a - b:>14.1f}")
        return "\n".join(lines)


def contrast(
    endpoint: Endpoint,
    vgraph: VirtualSchemaGraph,
    example_a: tuple[str, ...],
    example_b: tuple[str, ...],
) -> list[ContrastResult]:
    """Contrast two example sets on every shared query interpretation.

    Raises :class:`SynthesisError` when the two sides admit no common
    grouping signature (they describe incomparable views of the cube).
    """
    queries_a = reolap(endpoint, vgraph, example_a)
    queries_b = reolap(endpoint, vgraph, example_b)
    by_signature_b = {_signature(q): q for q in queries_b}
    pairs = [
        (qa, by_signature_b[_signature(qa)])
        for qa in queries_a
        if _signature(qa) in by_signature_b
    ]
    if not pairs:
        raise SynthesisError(
            f"examples {example_a!r} and {example_b!r} share no query interpretation"
        )
    results: list[ContrastResult] = []
    for query_a, query_b in pairs:
        executed = endpoint.select(query_a.to_select())
        rows_a = [executed.rows[i] for i in query_a.anchor_row_indexes(executed)]
        rows_b = [executed.rows[i] for i in query_b.anchor_row_indexes(executed)]
        side_a = ResultSet(executed.variables, rows_a)
        side_b = ResultSet(executed.variables, rows_b)
        totals: dict[str, tuple[float, float]] = {}
        for measure in query_a.measures:
            for _func, alias in measure.aliases():
                totals[alias.name] = (
                    _column_sum(side_a, alias),
                    _column_sum(side_b, alias),
                )
        results.append(ContrastResult(query_a, side_a, side_b, totals))
    return results


def _signature(query: OLAPQuery) -> tuple:
    return tuple(sorted(d.level.path for d in query.dimensions))


def _column_sum(results: ResultSet, alias: Variable) -> float:
    total = 0.0
    for value in results.column(alias):
        if isinstance(value, Literal) and value.is_numeric:
            total += value.numeric_value()
    return total
