"""Natural-language descriptions of synthesized queries and refinements.

The paper presents each candidate query with a templated description built
from the schema annotations stored alongside the data — e.g. *"Return
SUM(Num Applicants) grouped by 'Country of Destination' and 'Country Of
Origin / Continent'"* (Section 5.1).  The level labels carried by the
virtual schema graph are exactly those annotations, so rendering is pure
templating here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .olap_query import OLAPQuery

__all__ = [
    "describe_query",
    "describe_disaggregate",
    "describe_topk",
    "describe_percentile",
    "describe_similarity",
]


def _join(labels: list[str]) -> str:
    quoted = [f'"{label}"' for label in labels]
    if len(quoted) == 1:
        return quoted[0]
    return ", ".join(quoted[:-1]) + " and " + quoted[-1]


def describe_query(query: "OLAPQuery") -> str:
    """The base template: measures + grouping levels."""
    measures = ", ".join(
        f"SUM/MIN/MAX/AVG({measure.label})" for measure in query.measures
    )
    groups = _join([dimension.label for dimension in query.dimensions])
    text = f"Return {measures} grouped by {groups}"
    anchored = [a.keyword for a in query.anchors]
    if anchored:
        text += f" (matching example: {', '.join(repr(k) for k in anchored)})"
    return text


def describe_disaggregate(base: "OLAPQuery", new_level_label: str) -> str:
    return f"{describe_query(base)} — disaggregated by \"{new_level_label}\""


def describe_topk(base: "OLAPQuery", k: int, aggregate_label: str, descending: bool) -> str:
    direction = "highest" if descending else "lowest"
    return (
        f"{describe_query(base)} — keeping only the {k} {direction} "
        f"values of {aggregate_label}"
    )


def describe_percentile(base: "OLAPQuery", low_pct: int | None, high_pct: int | None,
                        aggregate_label: str) -> str:
    if low_pct is None:
        band = f"below the {high_pct}th percentile"
    elif high_pct is None:
        band = f"above the {low_pct}th percentile"
    else:
        band = f"between the {low_pct}th and {high_pct}th percentile"
    return f"{describe_query(base)} — keeping values {band} of {aggregate_label}"


def describe_similarity(base: "OLAPQuery", k: int, aggregate_label: str,
                        anchor_keywords: list[str]) -> str:
    anchor = ", ".join(repr(k) for k in anchor_keywords) or "the example"
    return (
        f"{describe_query(base)} — restricted to the {k} member combinations "
        f"most similar to {anchor} on {aggregate_label}"
    )
