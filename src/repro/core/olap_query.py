"""The OLAP query model REOLAP synthesizes and ExRef refines.

An :class:`OLAPQuery` is a structured view of a ``SELECT … WHERE … GROUP
BY`` analytical query: its grouping dimensions (virtual-graph levels), its
measures with the four standard aggregates, the restrictions accumulated
by refinements (member restrictions, HAVING thresholds), and the *anchors*
— the dimension members matched from the user's example, which every
refinement must keep in the result set (Problem 2's containment).

The class assembles a :class:`~repro.sparql.ast.SelectQuery` on demand;
the generated text parses back through the engine's own parser, so queries
are portable to any SPARQL endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..rdf.terms import IRI, Node, Variable
from ..sparql.ast import (
    Comparison,
    Expression,
    Filter,
    GroupGraphPattern,
    Projection,
    SelectQuery,
    TermExpr,
    TriplePattern,
    ValuesClause,
)
from ..sparql.builder import agg
from ..sparql.results import ResultSet
from .virtual_graph import VLevel, path_variable

__all__ = ["OLAPQuery", "QueryDimension", "MeasureColumn", "Anchor", "AGGREGATE_FUNCTIONS"]

#: The aggregation functions instantiated for every measure (Section 5.1).
AGGREGATE_FUNCTIONS = ("SUM", "MIN", "MAX", "AVG")

OBS_VAR = Variable("obs")


@dataclass(frozen=True)
class QueryDimension:
    """One grouping dimension: a virtual-graph level and its output variable."""

    level: VLevel

    @property
    def variable(self) -> Variable:
        return self.level.variable()

    @property
    def label(self) -> str:
        return self.level.label


@dataclass(frozen=True)
class MeasureColumn:
    """One measure: its predicate, raw variable, and aggregate aliases."""

    predicate: IRI
    label: str

    @property
    def variable(self) -> Variable:
        return Variable("m_" + _safe(self.predicate.local_name()))

    def alias(self, func: str) -> Variable:
        """The output variable of one aggregate, e.g. ``?sum_num_applicants``."""
        return Variable(f"{func.lower()}_{_safe(self.predicate.local_name())}")

    def aliases(self) -> list[tuple[str, Variable]]:
        return [(func, self.alias(func)) for func in AGGREGATE_FUNCTIONS]


@dataclass(frozen=True)
class SliceConstraint:
    """A sliced-away dimension: pinned to one member, not grouped by.

    The assembled query keeps the BGP chain to the member as a constant
    (``?obs <p> <member>``), so only that member's observations
    contribute, while the column disappears from the output — the OLAP
    *slice* operation (Section 4.2).
    """

    level: VLevel
    member: IRI


@dataclass(frozen=True)
class Anchor:
    """An example member the query is anchored to (from the user input).

    ``group`` identifies which example tuple the anchor came from: with
    multiple example tuples (the paper's footnote 3), a result row matches
    the example when it matches *all* anchors of *some* group.
    """

    level: VLevel
    member: IRI
    keyword: str
    group: int = 0

    @property
    def variable(self) -> Variable:
        return self.level.variable()


@dataclass(frozen=True)
class OLAPQuery:
    """An analytical query over a statistical KG (immutable; see helpers)."""

    observation_class: IRI
    dimensions: tuple[QueryDimension, ...]
    measures: tuple[MeasureColumn, ...]
    anchors: tuple[Anchor, ...] = ()
    member_restrictions: tuple[ValuesClause, ...] = ()
    extra_filters: tuple[Expression, ...] = ()
    slices: tuple[SliceConstraint, ...] = ()
    having: tuple[Expression, ...] = ()
    description: str = ""

    def __post_init__(self):
        if not self.dimensions:
            raise ValueError("an OLAP query needs at least one dimension")
        if not self.measures:
            raise ValueError("an OLAP query needs at least one measure")
        variables = [d.variable for d in self.dimensions]
        if len(set(variables)) != len(variables):
            raise ValueError("duplicate grouping variables in OLAP query")

    # -- structure accessors ---------------------------------------------------

    @property
    def group_variables(self) -> tuple[Variable, ...]:
        return tuple(d.variable for d in self.dimensions)

    def dimension_for_variable(self, variable: Variable) -> QueryDimension:
        for dimension in self.dimensions:
            if dimension.variable == variable:
                return dimension
        raise KeyError(f"no dimension bound to {variable.n3()}")

    def has_dimension_predicate(self, predicate: IRI) -> bool:
        return any(d.level.dimension_predicate == predicate for d in self.dimensions)

    def levels(self) -> list[VLevel]:
        return [d.level for d in self.dimensions]

    def anchored_variables(self) -> set[Variable]:
        """Variables constrained by example anchors present in the query."""
        present = set(self.group_variables)
        return {a.variable for a in self.anchors if a.variable in present}

    # -- SPARQL assembly ---------------------------------------------------------

    def to_select(self, limit: int | None = None) -> SelectQuery:
        """Assemble the executable SELECT query."""
        elements: list = []
        elements.extend(self.member_restrictions)
        elements.append(TriplePattern(OBS_VAR, _RDF_TYPE, self.observation_class))
        seen: set[TriplePattern] = set()
        for dimension in self.dimensions:
            for pattern in _chain_patterns(dimension.level):
                if pattern not in seen:
                    seen.add(pattern)
                    elements.append(pattern)
        for constraint in self.slices:
            for pattern in _slice_patterns(constraint):
                if pattern not in seen:
                    seen.add(pattern)
                    elements.append(pattern)
        for measure in self.measures:
            elements.append(TriplePattern(OBS_VAR, measure.predicate, measure.variable))
        for constraint in self.extra_filters:
            elements.append(Filter(constraint))
        projections = [Projection(TermExpr(v)) for v in self.group_variables]
        for measure in self.measures:
            for func, alias in measure.aliases():
                projections.append(Projection(agg(func, measure.variable), alias))
        return SelectQuery(
            projections=tuple(projections),
            where=GroupGraphPattern(tuple(elements)),
            group_by=self.group_variables,
            having=self.having,
            limit=limit,
        )

    def sparql(self) -> str:
        return self.to_select().to_sparql()

    # -- derivation helpers (used by ExRef) ----------------------------------------

    def with_dimension(self, level: VLevel, description: str | None = None) -> "OLAPQuery":
        """A copy with one more grouping dimension (drill-down)."""
        if level.variable() in set(self.group_variables):
            raise ValueError(f"query already groups by {level.label}")
        return replace(
            self,
            dimensions=self.dimensions + (QueryDimension(level),),
            description=description if description is not None else self.description,
        )

    def with_having(self, constraints: tuple[Expression, ...], description: str) -> "OLAPQuery":
        """A copy with extra HAVING thresholds (subset refinements)."""
        return replace(self, having=self.having + tuple(constraints), description=description)

    def with_member_restriction(
        self, variables: tuple[Variable, ...], rows: tuple[tuple[Node, ...], ...], description: str
    ) -> "OLAPQuery":
        """A copy restricted to given member combinations (similarity search)."""
        clause = ValuesClause(variables, rows)
        return replace(
            self,
            member_restrictions=self.member_restrictions + (clause,),
            description=description,
        )

    def with_filter(self, constraint: Expression, description: str | None = None) -> "OLAPQuery":
        """A copy with an extra WHERE-level FILTER (e.g. member exclusion)."""
        return replace(
            self,
            extra_filters=self.extra_filters + (constraint,),
            description=description if description is not None else self.description,
        )

    def with_slice(self, level: VLevel, member: IRI, description: str) -> "OLAPQuery":
        """A copy with ``level`` sliced: pinned to ``member``, not grouped.

        Requires the query to keep at least one grouping dimension.
        """
        remaining = tuple(d for d in self.dimensions if d.level.path != level.path)
        if len(remaining) == len(self.dimensions):
            raise ValueError(f"query does not group by {level.label}")
        if not remaining:
            raise ValueError("cannot slice away the last grouping dimension")
        return replace(
            self,
            dimensions=remaining,
            slices=self.slices + (SliceConstraint(level, member),),
            description=description,
        )

    def with_anchors(self, anchors: tuple[Anchor, ...]) -> "OLAPQuery":
        return replace(self, anchors=anchors)

    def described(self, description: str) -> "OLAPQuery":
        return replace(self, description=description)

    # -- result inspection ---------------------------------------------------------

    def anchor_row_indexes(self, results: ResultSet) -> list[int]:
        """Indexes of result rows matching the example.

        A row matches when there is some example tuple (anchor *group*)
        whose every anchor with an in-query level variable equals the
        row's value.  This is the example-containment check every
        refinement preserves; with a single example tuple it degenerates
        to "all anchors match".
        """
        variables = set(results.variables)
        groups: dict[int, list[Anchor]] = {}
        for anchor in self.anchors:
            if anchor.variable in variables:
                groups.setdefault(anchor.group, []).append(anchor)
        if not groups:
            return list(range(len(results)))
        columns = {
            anchor: results.index_of(anchor.variable)
            for members in groups.values()
            for anchor in members
        }
        matches = []
        for index, row in enumerate(results.rows):
            for members in groups.values():
                if all(row[columns[a]] == a.member for a in members):
                    matches.append(index)
                    break
        return matches

    def __repr__(self) -> str:
        dims = ", ".join(d.label for d in self.dimensions)
        return f"<OLAPQuery group by [{dims}]>"


_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


def _chain_patterns(level: VLevel) -> list[TriplePattern]:
    """The BGP chain from the observation variable to the level variable.

    Intermediate variables are canonical in the path prefix, so two levels
    of the same dimension share their common patterns (deduplicated by the
    assembler) — grouping by both year and month emits the month chain once.
    """
    patterns = []
    subject: Variable = OBS_VAR
    for depth in range(len(level.path)):
        target = path_variable(level.path[: depth + 1])
        patterns.append(TriplePattern(subject, level.path[depth], target))
        subject = target
    return patterns


def _slice_patterns(constraint: SliceConstraint) -> list[TriplePattern]:
    """The BGP chain for a sliced dimension, ending at the member constant."""
    path = constraint.level.path
    patterns = []
    subject: Variable = OBS_VAR
    for depth in range(len(path)):
        last = depth == len(path) - 1
        target = constraint.member if last else path_variable(path[: depth + 1])
        patterns.append(TriplePattern(subject, path[depth], target))
        if not last:
            subject = target
    return patterns


def _safe(name: str) -> str:
    import re

    cleaned = re.sub(r"[^0-9A-Za-z_]", "_", name).lower()
    return cleaned or "m"
