"""Example-driven Top-K subset refinement (Problem 2b / Section 6.2).

For every (measure, aggregate) column and both orderings, walk the result
rows in order until reaching a tuple ``t_i`` that matches the user example
and whose successor ``t_{i+1}`` does not; the value of the aggregate at
``t_{i+1}`` becomes a HAVING threshold that keeps ``t_i`` (and everything
ranked above it) and excludes ``t_{i+1}`` — i.e. the result is "the top-k
with k = i+1" and is guaranteed to contain the example.  Two refinements
(ascending / descending) are produced per measure and aggregation
function, the fixed output count reported in Figure 9b.
"""

from __future__ import annotations

from ...rdf.terms import Literal
from ...sparql.ast import Comparison, TermExpr
from ...sparql.builder import agg
from ...sparql.results import ResultSet
from ..describe import describe_topk
from ..olap_query import OLAPQuery
from .base import Refinement, RefinementMethod, anchor_rows

__all__ = ["TopK"]


class TopK(RefinementMethod):
    """The TopK operator: threshold filters anchored to the example."""

    name = "topk"

    def propose(self, query: OLAPQuery, results: ResultSet) -> list[Refinement]:
        matching = set(anchor_rows(query, results))
        if not matching or len(results) < 2:
            return []
        proposals: list[Refinement] = []
        for measure in query.measures:
            for func, alias in measure.aliases():
                column_index = results.index_of(alias)
                for descending in (True, False):
                    proposal = self._threshold_proposal(
                        query, results, matching, measure, func, alias.name,
                        column_index, descending,
                    )
                    if proposal is not None:
                        proposals.append(proposal)
        return proposals

    def _threshold_proposal(
        self, query, results, matching, measure, func, alias_name,
        column_index, descending,
    ) -> Refinement | None:
        order = sorted(
            range(len(results)),
            key=lambda i: _numeric(results.rows[i][column_index]),
            reverse=descending,
        )
        cut = None  # index into `order` of t_{i+1}
        for position in range(len(order) - 1):
            if order[position] in matching and order[position + 1] not in matching:
                cut = position + 1
                break
        if cut is None:
            # Either no example row before a non-example row (all matching
            # rows are at the very bottom in this ordering with matching
            # suffix) — no subset smaller than T contains the example here.
            return None
        threshold = results.rows[order[cut]][column_index]
        if not isinstance(threshold, Literal):
            return None
        boundary_value = _numeric(results.rows[order[cut - 1]][column_index])
        if _numeric(threshold) == boundary_value:
            return None  # tie: no threshold separates t_i from t_{i+1}
        op = ">" if descending else "<"
        constraint = Comparison(op, agg(func, measure.variable), TermExpr(threshold))
        k = cut
        aggregate_label = f"{func}({measure.label})"
        refined = query.with_having(
            (constraint,),
            describe_topk(query, k, aggregate_label, descending),
        )
        direction = "highest" if descending else "lowest"
        return Refinement(
            query=refined,
            kind=self.name,
            explanation=(
                f"keep the top-{k} ({direction}) results by {aggregate_label}: "
                f"filter {aggregate_label} {op} {threshold.lexical}"
            ),
        )


def _numeric(term) -> float:
    if isinstance(term, Literal) and term.is_numeric:
        return term.numeric_value()
    return float("-inf")
