"""Example-driven Disaggregate (Problem 2a / Section 6.1).

Enumerate all virtual-graph levels the query does not group by yet and
propose, for each valid one, the query extended with that level as an
additional grouping dimension (``|D(T_r)| = |D(T)| + 1``) — a drill-down.

A candidate level is *invalid* when it would not disaggregate:

* a level already grouped by (no change), or
* a level strictly coarser than one already in the query for the same
  dimension (grouping by both year and continent-of-year would aggregate
  higher, not drill down — the paper discards these).

Drilling *within* a dimension (the query groups by year, the candidate is
month — a strict path prefix) is valid: the refined query groups by year
and month together, which disaggregates every year into its months while
keeping the anchor's year column intact.

Thanks to the virtual graph, no endpoint access is needed: the operation
is linear in the number of levels (``O(|L|)``), as the paper claims.
"""

from __future__ import annotations

from ...sparql.results import ResultSet
from ..describe import describe_disaggregate
from ..olap_query import OLAPQuery
from ..virtual_graph import VirtualSchemaGraph, VLevel
from .base import Refinement, RefinementMethod

__all__ = ["Disaggregate"]


class Disaggregate(RefinementMethod):
    """The Dis operator: one proposal per valid additional level."""

    name = "disaggregate"

    def __init__(self, vgraph: VirtualSchemaGraph):
        self.vgraph = vgraph

    def propose(self, query: OLAPQuery, results: ResultSet | None = None) -> list[Refinement]:
        """All valid one-level drill-downs of ``query``.

        ``results`` is accepted for interface uniformity but unused: this
        operator is purely structural.
        """
        proposals: list[Refinement] = []
        current = {d.level.path for d in query.dimensions}
        for level in self.vgraph.all_levels():
            if not self._valid(level, query, current):
                continue
            refined = query.with_dimension(level)
            refined = refined.described(describe_disaggregate(query, level.label))
            proposals.append(
                Refinement(
                    query=refined,
                    kind=self.name,
                    explanation=f"drill down: additionally group by \"{level.label}\"",
                )
            )
        return proposals

    @staticmethod
    def _valid(level: VLevel, query: OLAPQuery, current_paths: set) -> bool:
        if level.path in current_paths:
            return False  # already grouped by this level
        for existing in query.levels():
            if existing.dimension_predicate != level.dimension_predicate:
                continue
            if existing.is_finer_than(level):
                # The candidate aggregates higher than what the query
                # already shows for this dimension: not a disaggregation.
                return False
        return True
