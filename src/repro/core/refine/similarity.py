"""Example-driven Similarity Search (Problem 2c / Section 6.3, Figure 5).

Restrict the query to the *k* member combinations most similar to the one
the user exemplified.  Following Figure 5:

* the grouping variables matched by the example (the *anchored* dimensions
  δ1..δm) identify the entities being compared — e.g. (Country of
  Destination, Country of Origin) pairs;
* the remaining grouping variables (added by earlier Disaggregate steps,
  δm+1..δn) act as the *feature set*: each distinct combination of their
  values is one vector component, whose value is the aggregated measure
  (0 when a combination does not appear);
* cosine similarity between the example's vector and every other entity's
  vector ranks the candidates, and the top-k (plus the example itself)
  become a VALUES restriction on the anchored variables.

When no dimensions were added yet, each entity has a single scalar — there
cosine degenerates, so entities are ranked by absolute difference of the
measure value instead ("countries with a similar amount of asylum
requests", the paper's introductory example).

One refinement is produced per (measure, aggregate) pair: a fixed number
of reformulations, as Figure 9b reports.
"""

from __future__ import annotations

import numpy as np

from ...rdf.terms import Literal, Node
from ...sparql.results import ResultSet
from ..describe import describe_similarity
from ..olap_query import OLAPQuery
from .base import Refinement, RefinementMethod

__all__ = ["SimilaritySearch"]

DEFAULT_K = 3


class SimilaritySearch(RefinementMethod):
    """The Sim operator: top-k most similar member combinations."""

    name = "similarity"

    def __init__(self, k: int = DEFAULT_K):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k

    def propose(self, query: OLAPQuery, results: ResultSet) -> list[Refinement]:
        anchored_vars = sorted(query.anchored_variables(), key=lambda v: v.name)
        if not anchored_vars or not len(results):
            return []
        added_vars = [v for v in query.group_variables if v not in set(anchored_vars)]
        anchor_combo = self._anchor_combo(query, anchored_vars)
        if anchor_combo is None:
            return []
        anchored_idx = [results.index_of(v) for v in anchored_vars]
        added_idx = [results.index_of(v) for v in added_vars]

        proposals: list[Refinement] = []
        for measure in query.measures:
            for func, alias in measure.aliases():
                value_idx = results.index_of(alias)
                ranked = self._rank(
                    results, anchored_idx, added_idx, value_idx, anchor_combo
                )
                if not ranked:
                    continue
                top = ranked[: self.k]
                rows = (anchor_combo,) + tuple(combo for combo, _ in top)
                aggregate_label = f"{func}({measure.label})"
                refined = query.with_member_restriction(
                    tuple(anchored_vars),
                    rows,
                    describe_similarity(
                        query, self.k, aggregate_label,
                        [a.keyword for a in query.anchors],
                    ),
                )
                names = ", ".join(_combo_text(combo) for combo, _ in top)
                proposals.append(
                    Refinement(
                        query=refined,
                        kind=self.name,
                        explanation=(
                            f"restrict to the {len(top)} combinations most similar "
                            f"to the example on {aggregate_label}: {names}"
                        ),
                    )
                )
        return proposals

    def _anchor_combo(self, query: OLAPQuery, anchored_vars) -> tuple[Node, ...] | None:
        by_var = {}
        for anchor in query.anchors:
            by_var.setdefault(anchor.variable, anchor.member)
        try:
            return tuple(by_var[v] for v in anchored_vars)
        except KeyError:
            return None

    def _rank(
        self, results: ResultSet, anchored_idx, added_idx, value_idx, anchor_combo
    ) -> list[tuple[tuple[Node, ...], float]]:
        """Candidate combos sorted by decreasing similarity to the anchor."""
        vectors: dict[tuple[Node, ...], dict[tuple[Node, ...], float]] = {}
        features: set[tuple[Node, ...]] = set()
        for row in results.rows:
            combo = tuple(row[i] for i in anchored_idx)
            feature = tuple(row[i] for i in added_idx)
            features.add(feature)
            vectors.setdefault(combo, {})[feature] = _numeric(row[value_idx])
        if anchor_combo not in vectors:
            return []
        feature_order = sorted(features, key=_combo_key)
        anchor_vector = _vector(vectors[anchor_combo], feature_order)
        ranked: list[tuple[tuple[Node, ...], float]] = []
        for combo, sparse in vectors.items():
            if combo == anchor_combo:
                continue
            vector = _vector(sparse, feature_order)
            ranked.append((combo, _similarity(anchor_vector, vector)))
        ranked.sort(key=lambda item: (-item[1], _combo_key(item[0])))
        return ranked


def _vector(sparse: dict, feature_order: list) -> np.ndarray:
    return np.array([sparse.get(feature, 0.0) for feature in feature_order], dtype=float)


def _similarity(anchor: np.ndarray, other: np.ndarray) -> float:
    """Cosine similarity; scalar vectors fall back to value closeness."""
    if anchor.size == 1:
        return -abs(float(anchor[0]) - float(other[0]))
    norm = float(np.linalg.norm(anchor) * np.linalg.norm(other))
    if norm == 0.0:
        return 0.0
    return float(np.dot(anchor, other) / norm)


def _numeric(term) -> float:
    if isinstance(term, Literal) and term.is_numeric:
        return term.numeric_value()
    return 0.0


def _combo_key(combo: tuple[Node, ...]) -> tuple:
    return tuple(term.sort_key() if term is not None else (-1,) for term in combo)


def _combo_text(combo: tuple[Node, ...]) -> str:
    parts = []
    for term in combo:
        parts.append(term.local_name() if hasattr(term, "local_name") else str(term))
    return "(" + ", ".join(parts) + ")"
