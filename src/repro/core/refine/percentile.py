"""Example-driven percentile subset refinement (Problem 2b / Section 6.2).

Complementary to Top-K: instead of extreme values, identify the percentile
band of the aggregate distribution in which the example sits and restrict
the query to that band.  For each (measure, aggregate) column the
aggregate values are split at configurable percentile cut points (90th,
75th, 50th, 25th by default); each band containing at least one
example-matching tuple — and strictly fewer tuples than the full result —
yields one refinement with a pair of HAVING bounds.  Unlike Top-K's fixed
two per column, the number of proposals "depends on how the query results
are clustered" (Section 7.1), which the Fig. 9b benchmark shows.
"""

from __future__ import annotations

import numpy as np

from ...rdf.terms import Literal, XSD_DOUBLE
from ...sparql.ast import BoolOp, Comparison, Expression, TermExpr
from ...sparql.builder import agg
from ...sparql.results import ResultSet
from ..describe import describe_percentile
from ..olap_query import OLAPQuery
from .base import Refinement, RefinementMethod, anchor_rows

__all__ = ["Percentile"]

DEFAULT_CUTS = (25, 50, 75, 90)


class Percentile(RefinementMethod):
    """The Perc operator: percentile-band filters anchored to the example."""

    name = "percentile"

    def __init__(self, cuts: tuple[int, ...] = DEFAULT_CUTS):
        if any(not 0 < c < 100 for c in cuts):
            raise ValueError("percentile cut points must be in (0, 100)")
        self.cuts = tuple(sorted(set(cuts)))

    def propose(self, query: OLAPQuery, results: ResultSet) -> list[Refinement]:
        matching = set(anchor_rows(query, results))
        if not matching or len(results) < 2:
            return []
        proposals: list[Refinement] = []
        for measure in query.measures:
            for func, alias in measure.aliases():
                column_index = results.index_of(alias)
                values = np.array(
                    [_numeric(row[column_index]) for row in results.rows], dtype=float
                )
                cut_values = np.percentile(values, self.cuts)
                bands = self._bands(cut_values)
                for (low, high, low_pct, high_pct) in bands:
                    in_band = [
                        i for i, v in enumerate(values)
                        if _in_band(v, low, high)
                    ]
                    if not in_band or len(in_band) >= len(results):
                        continue
                    if not matching.intersection(in_band):
                        continue
                    aggregate_label = f"{func}({measure.label})"
                    constraint = _band_constraint(measure, func, low, high)
                    refined = query.with_having(
                        (constraint,),
                        describe_percentile(query, low_pct, high_pct, aggregate_label),
                    )
                    band_text = _band_text(low_pct, high_pct)
                    proposals.append(
                        Refinement(
                            query=refined,
                            kind=self.name,
                            explanation=(
                                f"keep results with {aggregate_label} {band_text} "
                                f"({len(in_band)} of {len(results)} tuples)"
                            ),
                        )
                    )
        return proposals

    def _bands(self, cut_values) -> list[tuple]:
        """(low, high, low_pct, high_pct) bands; None bounds are open."""
        bands = []
        previous_value, previous_pct = None, None
        for value, pct in zip(cut_values, self.cuts):
            bands.append((previous_value, value, previous_pct, pct))
            previous_value, previous_pct = value, pct
        bands.append((previous_value, None, previous_pct, None))
        return bands


def _in_band(value: float, low: float | None, high: float | None) -> bool:
    if low is not None and value < low:
        return False
    if high is not None and value >= high:
        return False
    return True


def _band_constraint(measure, func: str, low: float | None, high: float | None) -> Expression:
    parts: list[Expression] = []
    aggregate = agg(func, measure.variable)
    if low is not None:
        parts.append(Comparison(">=", aggregate, TermExpr(_literal(low))))
    if high is not None:
        parts.append(Comparison("<", aggregate, TermExpr(_literal(high))))
    if len(parts) == 1:
        return parts[0]
    return BoolOp("&&", tuple(parts))


def _band_text(low_pct: int | None, high_pct: int | None) -> str:
    if low_pct is None:
        return f"below the {high_pct}th percentile"
    if high_pct is None:
        return f"above the {low_pct}th percentile"
    return f"between the {low_pct}th and {high_pct}th percentiles"


def _literal(value: float) -> Literal:
    return Literal(repr(float(value)), datatype=XSD_DOUBLE)


def _numeric(term) -> float:
    if isinstance(term, Literal) and term.is_numeric:
        return term.numeric_value()
    return float("nan")
