"""Example-driven Slice: pin a dimension to the example's member.

Section 4.2 names *slice* among the OLAP filtering operations ("returning
only values where the country of destination is Germany").  The
example-driven version is natural: every grouped dimension carrying an
anchor can be sliced to that anchor's member — the refined query keeps
only the member's observations and drops the now-constant column.

Containment is trivially preserved (the kept slice *is* the example's),
and the explanation is as simple as refinements get, fitting the paper's
simplicity/explainability criteria.
"""

from __future__ import annotations

from ...sparql.results import ResultSet
from ..describe import describe_query
from ..olap_query import OLAPQuery
from .base import Refinement, RefinementMethod

__all__ = ["Slice"]


class Slice(RefinementMethod):
    """The slice operator: one proposal per anchored, droppable dimension."""

    name = "slice"

    def propose(self, query: OLAPQuery, results: ResultSet | None = None) -> list[Refinement]:
        if len(query.dimensions) < 2:
            return []  # slicing the only dimension would leave no grouping
        proposals: list[Refinement] = []
        seen_paths = set()
        for anchor in query.anchors:
            level = anchor.level
            if level.path in seen_paths:
                continue
            if not any(d.level.path == level.path for d in query.dimensions):
                continue
            seen_paths.add(level.path)
            sliced = query.with_slice(level, anchor.member, description="")
            # Anchors of the sliced dimension no longer have a column; the
            # remaining anchors keep constraining the example rows.
            sliced = sliced.described(
                describe_query(sliced)
                + f" — sliced to \"{level.label}\" = {anchor.keyword!r}"
            )
            proposals.append(
                Refinement(
                    query=sliced,
                    kind=self.name,
                    explanation=(
                        f"slice: keep only {anchor.keyword!r} on \"{level.label}\" "
                        f"and drop the column"
                    ),
                )
            )
        return proposals
