"""Example-driven Roll-up: the inverse of Disaggregate.

Section 4.2 names roll-up as the dual of drill-down ("moving between
coarser and finer granularity levels").  The main paper only ships the
Disaggregate direction; this operator completes the pair: for every query
dimension that has a coarser level in the virtual graph (an extension of
its current path), propose the query with that dimension re-grouped at
the coarser level.

Example containment is preserved by *re-anchoring*: the example member of
the rolled-up dimension is replaced by its ancestor(s) at the coarser
level (resolved through the endpoint).  With M-to-N hierarchies a member
has several ancestors; the anchor group is branched so that a row
matching *any* ancestor still counts as matching the example.
"""

from __future__ import annotations

import itertools

from ...rdf.terms import IRI
from ...sparql.results import ResultSet
from ...store.endpoint import Endpoint
from ..olap_query import Anchor, OLAPQuery, QueryDimension
from ..virtual_graph import VirtualSchemaGraph, VLevel
from .base import Refinement, RefinementMethod

__all__ = ["Rollup"]


class Rollup(RefinementMethod):
    """The roll-up operator: re-group one dimension at a coarser level."""

    name = "rollup"

    def __init__(self, vgraph: VirtualSchemaGraph, endpoint: Endpoint):
        self.vgraph = vgraph
        self.endpoint = endpoint

    def propose(self, query: OLAPQuery, results: ResultSet | None = None) -> list[Refinement]:
        proposals: list[Refinement] = []
        current_paths = {d.level.path for d in query.dimensions}
        for index, dimension in enumerate(query.dimensions):
            for coarser in self.vgraph.all_levels():
                if not dimension.level.is_finer_than(coarser):
                    continue
                if coarser.path in current_paths:
                    continue
                refined = self._rolled_up(query, index, coarser)
                if refined is None:
                    continue
                proposals.append(
                    Refinement(
                        query=refined,
                        kind=self.name,
                        explanation=(
                            f"roll up \"{dimension.label}\" to \"{coarser.label}\""
                        ),
                    )
                )
        return proposals

    def _rolled_up(self, query: OLAPQuery, index: int, coarser: VLevel) -> OLAPQuery | None:
        old_level = query.dimensions[index].level
        dimensions = list(query.dimensions)
        dimensions[index] = QueryDimension(coarser)
        anchors = self._reanchored(query, old_level, coarser)
        if anchors is None:
            return None
        import dataclasses

        refined = dataclasses.replace(
            query,
            dimensions=tuple(dimensions),
            anchors=anchors,
        )
        from ..describe import describe_query

        return refined.described(
            describe_query(refined) + f" — rolled up from \"{old_level.label}\""
        )

    def _reanchored(
        self, query: OLAPQuery, old_level: VLevel, coarser: VLevel
    ) -> tuple[Anchor, ...] | None:
        """Anchors with members of ``old_level`` lifted to ``coarser``.

        Returns None when some affected member has no ancestor (it would
        silently vanish from the results, violating containment).
        """
        rollup_steps = coarser.path[len(old_level.path):]
        by_group: dict[int, list[list[Anchor]]] = {}
        for anchor in query.anchors:
            variants: list[Anchor]
            if anchor.level.path == old_level.path:
                ancestors = self._ancestors(anchor.member, rollup_steps)
                if not ancestors:
                    return None
                variants = [
                    Anchor(level=coarser, member=ancestor,
                           keyword=anchor.keyword, group=anchor.group)
                    for ancestor in ancestors
                ]
            else:
                variants = [anchor]
            by_group.setdefault(anchor.group, []).append(variants)

        # Branch each group over the ancestor alternatives (M-to-N case),
        # assigning fresh group ids so any branch matching counts.
        rebuilt: list[Anchor] = []
        next_group = 0
        for group in sorted(by_group):
            for combination in itertools.product(*by_group[group]):
                rebuilt.extend(
                    Anchor(level=a.level, member=a.member,
                           keyword=a.keyword, group=next_group)
                    for a in combination
                )
                next_group += 1
        return tuple(rebuilt)

    def _ancestors(self, member: IRI, steps: tuple[IRI, ...]) -> list[IRI]:
        """Members reached from ``member`` through the rollup steps."""
        chain = " / ".join(p.n3() for p in steps)
        result = self.endpoint.select(
            f"SELECT DISTINCT ?a WHERE {{ {member.n3()} {chain} ?a }}"
        )
        return sorted(
            (row[0] for row in result if isinstance(row[0], IRI)),
            key=lambda iri: iri.value,
        )
