"""ExRef: the example-driven query refinement suite (Section 6).

Four operators, all preserving the user's example in the refined results:

* :class:`Disaggregate` — drill-down by an additional level (Problem 2a);
* :class:`TopK` — extreme-value subsets via HAVING thresholds (Problem 2b);
* :class:`Percentile` — percentile-band subsets (Problem 2b);
* :class:`SimilaritySearch` — top-k most similar member combinations
  (Problem 2c).
"""

from .base import Refinement, RefinementMethod, anchor_rows
from .disaggregate import Disaggregate
from .percentile import Percentile
from .rollup import Rollup
from .similarity import SimilaritySearch
from .slice import Slice
from .topk import TopK

__all__ = [
    "Refinement",
    "RefinementMethod",
    "anchor_rows",
    "Disaggregate",
    "Rollup",
    "Slice",
    "TopK",
    "Percentile",
    "SimilaritySearch",
]
