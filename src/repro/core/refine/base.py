"""Common types for the ExRef refinement suite (Section 6).

Every refinement method takes the current :class:`OLAPQuery` together with
its executed results and returns a list of :class:`Refinement` proposals —
each a new query guaranteed to still contain some tuple matching the
user's original example (the containment requirement of Problem 2), plus
the human-readable explanation the paper's solution criteria call for.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...sparql.results import ResultSet
from ..olap_query import OLAPQuery

__all__ = ["Refinement", "RefinementMethod", "anchor_rows"]


@dataclass(frozen=True)
class Refinement:
    """One proposed refinement: the refined query and its explanation."""

    query: OLAPQuery
    kind: str
    explanation: str

    def __repr__(self) -> str:
        return f"<Refinement {self.kind}: {self.explanation}>"


class RefinementMethod:
    """Interface of a refinement operator (Dis / TopK / Perc / Sim)."""

    #: Short identifier used in session menus and benchmark tables.
    name: str = "abstract"

    def propose(self, query: OLAPQuery, results: ResultSet) -> list[Refinement]:
        """Refinement proposals for ``query`` given its results."""
        raise NotImplementedError


def anchor_rows(query: OLAPQuery, results: ResultSet) -> list[int]:
    """Indexes of result rows matching the query's example anchors."""
    return query.anchor_row_indexes(results)
