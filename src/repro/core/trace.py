"""Exploration traces: exportable provenance of a session.

Every exploration in the paper is a sequence of interactions; analysts
(and the reproducibility-minded) want that sequence as an artifact: which
examples were given, which queries ran, what they returned.  This module
turns a session's history into plain dictionaries (JSON-ready) and a
Markdown report, so a CLI/notebook run leaves an auditable record.
"""

from __future__ import annotations

import json
from typing import Any

from .exploration import account_paths
from .session import ExplorationSession

__all__ = ["export_history", "to_json", "to_markdown"]


def export_history(session: ExplorationSession) -> list[dict[str, Any]]:
    """The session's steps as JSON-ready dictionaries.

    Each entry records the interaction kind, the human description, the
    exact SPARQL text, the anchors, and the result cardinality — enough to
    replay the exploration against any endpoint.
    """
    accounting = account_paths(session.history)
    entries: list[dict[str, Any]] = []
    for index, step in enumerate(session.history):
        entries.append(
            {
                "interaction": index + 1,
                "kind": step.kind,
                "description": step.query.description,
                "sparql": step.query.sparql(),
                "anchors": [
                    {
                        "keyword": anchor.keyword,
                        "member": anchor.member.value,
                        "level": anchor.level.label,
                        "group": anchor.group,
                    }
                    for anchor in step.query.anchors
                ],
                "options_offered": step.options_offered,
                "result_tuples": step.n_tuples,
                "cumulative_paths": accounting.cumulative_paths[index],
            }
        )
    return entries


def to_json(session: ExplorationSession, indent: int = 2) -> str:
    """The exploration trace as a JSON document."""
    return json.dumps(export_history(session), indent=indent)


def to_markdown(session: ExplorationSession) -> str:
    """The exploration trace as a Markdown report."""
    lines = ["# Exploration trace", ""]
    for entry in export_history(session):
        lines.append(f"## Interaction {entry['interaction']}: {entry['kind']}")
        lines.append("")
        lines.append(entry["description"])
        lines.append("")
        if entry["anchors"]:
            anchors = ", ".join(
                f"`{a['keyword']}` → {a['level']}" for a in entry["anchors"]
            )
            lines.append(f"*Anchored to:* {anchors}")
            lines.append("")
        lines.append(
            f"*{entry['result_tuples']} result tuples; "
            f"{entry['options_offered']} options offered; "
            f"{entry['cumulative_paths']} cumulative exploration paths.*"
        )
        lines.append("")
        lines.append("```sparql")
        lines.append(entry["sparql"])
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
