"""The Virtual Schema Graph (Section 5.2 of the paper).

An in-memory summary of how dimension hierarchies are organized: one node
per hierarchy *level* — not per member — plus an implicit observation
root, making it "orders of magnitude smaller than the underlying graph".
Each level is identified by the *predicate path* that reaches its members
from an observation node (e.g. ``country_of_origin / in_continent`` for
the origin-continent level), which is also exactly the BGP chain a
generated query needs.

The graph is built at system bootstrap by crawling the SPARQL endpoint,
given nothing but the observation class: first the dimension and measure
predicates are discovered from the observations, then hierarchies are
followed recursively from dimension members to further non-literal nodes
(with a depth cap guarding against cycles).  This mirrors the paper's
construction and its cost profile — bootstrap time is dominated by the
endpoint's scan performance, not by schema size (Figure 6c).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import BootstrapError
from ..qb.vocabulary import LABEL, MEMBER_OF, ROLLS_UP_TO, TYPE
from ..rdf.namespace import QB, QB4O
from ..rdf.terms import IRI, Variable
from ..store.endpoint import Endpoint

__all__ = ["VLevel", "VirtualSchemaGraph", "DEFAULT_EXCLUDED_PREDICATES"]

#: Vocabulary predicates the crawler must not mistake for hierarchy steps.
DEFAULT_EXCLUDED_PREDICATES = frozenset(
    {TYPE, MEMBER_OF, ROLLS_UP_TO, QB.dataSet, QB.structure, QB4O.inLevel}
)

#: Hierarchies deeper than this are treated as cycles and cut off.
DEFAULT_MAX_DEPTH = 6


@dataclass(frozen=True)
class VLevel:
    """One virtual-graph node: a hierarchy level of some dimension.

    ``path`` is the predicate sequence from the observation root to the
    level's members; ``path[0]`` is the dimension predicate, the rest are
    rollup predicates.  ``label`` is assembled from the predicates'
    ``rdfs:label`` annotations and drives the natural-language rendering of
    queries.
    """

    path: tuple[IRI, ...]
    member_count: int
    label: str
    attribute_predicates: tuple[IRI, ...] = ()
    sample_members: tuple[IRI, ...] = ()

    def __post_init__(self):
        if not self.path:
            raise ValueError("a level path must contain at least the dimension predicate")

    @property
    def dimension_predicate(self) -> IRI:
        return self.path[0]

    @property
    def terminal_predicate(self) -> IRI:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path)

    @property
    def is_base(self) -> bool:
        return len(self.path) == 1

    def is_finer_than(self, other: "VLevel") -> bool:
        """True when this level is a strict refinement (prefix) of ``other``."""
        return (
            len(self.path) < len(other.path)
            and other.path[: len(self.path)] == self.path
        )

    def is_coarser_than(self, other: "VLevel") -> bool:
        return other.is_finer_than(self)

    def variable(self) -> Variable:
        """The canonical query variable naming this level.

        Deterministic in the path, so two query dimensions sharing a path
        prefix share the intermediate variables (and hence BGPs).
        """
        return path_variable(self.path)

    def __repr__(self) -> str:
        return f"<VLevel {self.label!r} depth={self.depth} members={self.member_count}>"


def _sanitize(name: str) -> str:
    cleaned = re.sub(r"[^0-9A-Za-z_]", "_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "p" + cleaned
    return cleaned.lower()


def path_variable(path: tuple[IRI, ...]) -> Variable:
    """The canonical variable for a predicate path from the observation."""
    return Variable("_".join(_sanitize(p.local_name()) for p in path))


class VirtualSchemaGraph:
    """Levels, measures, and the traversal API used by synthesis/refinement."""

    def __init__(
        self,
        observation_class: IRI,
        levels: dict[tuple[IRI, ...], VLevel],
        measures: dict[IRI, str],
        observation_count: int,
        observation_attributes: tuple[IRI, ...] = (),
    ):
        if not levels:
            raise BootstrapError("virtual schema graph has no levels")
        if not measures:
            raise BootstrapError("virtual schema graph has no measures")
        self.observation_class = observation_class
        self.levels = dict(levels)
        self.measures = dict(measures)
        self.observation_count = observation_count
        self.observation_attributes = tuple(observation_attributes)

    # -- traversal -----------------------------------------------------------

    def all_levels(self) -> list[VLevel]:
        """Every level, ordered by path for determinism."""
        return [self.levels[key] for key in sorted(self.levels, key=_path_key)]

    def base_levels(self) -> list[VLevel]:
        return [lvl for lvl in self.all_levels() if lvl.is_base]

    def dimension_predicates(self) -> list[IRI]:
        return sorted({lvl.dimension_predicate for lvl in self.levels.values()},
                      key=lambda p: p.value)

    def level(self, path: tuple[IRI, ...]) -> VLevel:
        try:
            return self.levels[tuple(path)]
        except KeyError:
            raise KeyError(f"no level with path {[p.value for p in path]}") from None

    def levels_of_dimension(self, dimension_predicate: IRI) -> list[VLevel]:
        return [lvl for lvl in self.all_levels()
                if lvl.dimension_predicate == dimension_predicate]

    def levels_with_terminal(self, predicate: IRI) -> list[VLevel]:
        """Levels whose members are reached through ``predicate``.

        This is the structural lookup behind interpretation discovery: a
        member's incoming predicate identifies its candidate levels.
        """
        return [lvl for lvl in self.all_levels() if lvl.terminal_predicate == predicate]

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def n_members(self) -> int:
        """Total member count over all levels (the paper's |N_D|)."""
        return sum(lvl.member_count for lvl in self.levels.values())

    def summary(self) -> str:
        """A small tree rendering of the schema, for logs and examples."""
        lines = [f"observations ({self.observation_count}) of {self.observation_class.n3()}"]
        for level in self.all_levels():
            indent = "  " * level.depth
            lines.append(f"{indent}{level.label} [{level.member_count} members]")
        lines.append("measures: " + ", ".join(sorted(self.measures.values())))
        return "\n".join(lines)

    # -- construction ----------------------------------------------------------

    @classmethod
    def bootstrap(
        cls,
        endpoint: Endpoint,
        observation_class: IRI,
        excluded_predicates: frozenset[IRI] = DEFAULT_EXCLUDED_PREDICATES,
        max_depth: int = DEFAULT_MAX_DEPTH,
        sample_size: int = 3,
    ) -> "VirtualSchemaGraph":
        """Crawl the endpoint and build the virtual schema graph.

        Only the endpoint address and the observation class are required —
        "no other information about the dataset is assumed" (Section 7.1).
        """
        crawler = _Crawler(endpoint, observation_class, excluded_predicates,
                           max_depth, sample_size)
        return crawler.crawl(cls)

    def refreshed(self, endpoint: Endpoint) -> "VirtualSchemaGraph":
        """Recount members after data was appended, without re-crawling.

        This is the paper's incremental-update path: when only new data
        arrives under an unchanged schema, the structure is reusable and
        only the per-level statistics need refreshing.
        """
        updated: dict[tuple[IRI, ...], VLevel] = {}
        for path, level in self.levels.items():
            count = _count_members(endpoint, self.observation_class, path)
            updated[path] = VLevel(
                path=level.path,
                member_count=count,
                label=level.label,
                attribute_predicates=level.attribute_predicates,
                sample_members=level.sample_members,
            )
        n_obs = _count_observations(endpoint, self.observation_class)
        return VirtualSchemaGraph(
            self.observation_class, updated, dict(self.measures), n_obs,
            self.observation_attributes,
        )


def _path_key(path: tuple[IRI, ...]) -> tuple:
    return tuple(p.value for p in path)


class _Crawler:
    """Bootstrap worker issuing the discovery queries against the endpoint."""

    def __init__(self, endpoint, observation_class, excluded, max_depth, sample_size):
        self.endpoint = endpoint
        self.cls = observation_class
        self.excluded = excluded
        self.max_depth = max_depth
        self.sample_size = sample_size

    def crawl(self, factory) -> "VirtualSchemaGraph":
        n_obs = _count_observations(self.endpoint, self.cls)
        if n_obs == 0:
            raise BootstrapError(
                f"no observations of class {self.cls.n3()} in the endpoint"
            )
        dimension_predicates, measure_predicates, obs_attributes = self._observation_predicates()
        if not measure_predicates:
            raise BootstrapError("no numeric measure predicates found on observations")
        levels: dict[tuple[IRI, ...], VLevel] = {}
        for predicate in dimension_predicates:
            self._expand((predicate,), levels)
        measures = {p: self._predicate_label(p) for p in measure_predicates}
        return factory(self.cls, levels, measures, n_obs, tuple(obs_attributes))

    def _observation_predicates(self) -> tuple[list[IRI], list[IRI], list[IRI]]:
        """Classify the predicates attached to observations.

        Non-literal objects → dimension predicates; numeric literals →
        measures; other literals → plain observation attributes.
        """
        result = self.endpoint.select(
            f"SELECT DISTINCT ?p WHERE {{ ?o a {self.cls.n3()} . ?o ?p ?x . "
            f"FILTER(!isLiteral(?x)) }}"
        )
        dimensions = sorted(
            (row[0] for row in result if row[0] not in self.excluded),
            key=lambda p: p.value,
        )
        result = self.endpoint.select(
            f"SELECT DISTINCT ?p WHERE {{ ?o a {self.cls.n3()} . ?o ?p ?x . "
            f"FILTER(isNumeric(?x)) }}"
        )
        measures = sorted((row[0] for row in result), key=lambda p: p.value)
        result = self.endpoint.select(
            f"SELECT DISTINCT ?p WHERE {{ ?o a {self.cls.n3()} . ?o ?p ?x . "
            f"FILTER(isLiteral(?x) && !isNumeric(?x)) }}"
        )
        attributes = sorted((row[0] for row in result), key=lambda p: p.value)
        return dimensions, measures, attributes

    def _expand(self, path: tuple[IRI, ...], levels: dict) -> None:
        """Depth-first: register the level at ``path``, then follow rollups."""
        member_count, samples = self._level_members(path)
        if member_count == 0:
            return
        levels[path] = VLevel(
            path=path,
            member_count=member_count,
            label=" / ".join(self._predicate_label(p) for p in path),
            attribute_predicates=tuple(self._attribute_predicates(path)),
            sample_members=samples,
        )
        if len(path) >= self.max_depth:
            return
        for predicate in self._rollup_predicates(path):
            if predicate in self.excluded or predicate in path:
                continue
            self._expand(path + (predicate,), levels)

    def _level_members(self, path: tuple[IRI, ...]) -> tuple[int, tuple[IRI, ...]]:
        chain = " / ".join(p.n3() for p in path)
        result = self.endpoint.select(
            f"SELECT DISTINCT ?m WHERE {{ ?o a {self.cls.n3()} . ?o {chain} ?m }}"
        )
        members = sorted((row[0] for row in result), key=lambda t: t.sort_key())
        return len(members), tuple(members[: self.sample_size])

    def _rollup_predicates(self, path: tuple[IRI, ...]) -> list[IRI]:
        chain = " / ".join(p.n3() for p in path)
        result = self.endpoint.select(
            f"SELECT DISTINCT ?q WHERE {{ ?o a {self.cls.n3()} . ?o {chain} ?m . "
            f"?m ?q ?x . FILTER(!isLiteral(?x)) }}"
        )
        return sorted((row[0] for row in result), key=lambda p: p.value)

    def _attribute_predicates(self, path: tuple[IRI, ...]) -> list[IRI]:
        chain = " / ".join(p.n3() for p in path)
        result = self.endpoint.select(
            f"SELECT DISTINCT ?q WHERE {{ ?o a {self.cls.n3()} . ?o {chain} ?m . "
            f"?m ?q ?x . FILTER(isLiteral(?x)) }}"
        )
        return sorted((row[0] for row in result), key=lambda p: p.value)

    def _predicate_label(self, predicate: IRI) -> str:
        result = self.endpoint.select(
            f"SELECT ?l WHERE {{ {predicate.n3()} {LABEL.n3()} ?l }} LIMIT 1"
        )
        if result.rows:
            return result.rows[0][0].lexical
        return predicate.local_name().replace("_", " ").title()


def _count_observations(endpoint, observation_class: IRI) -> int:
    result = endpoint.select(
        f"SELECT (COUNT(?o) AS ?n) WHERE {{ ?o a {observation_class.n3()} }}"
    )
    return int(result.rows[0][0].lexical)


def _count_members(endpoint, observation_class: IRI, path: tuple[IRI, ...]) -> int:
    chain = " / ".join(p.n3() for p in path)
    result = endpoint.select(
        f"SELECT (COUNT(DISTINCT ?m) AS ?n) WHERE {{ ?o a {observation_class.n3()} . "
        f"?o {chain} ?m }}"
    )
    return int(result.rows[0][0].lexical)
