"""Analytical views: deriving a statistical KG from a general KG.

Section 3 of the paper: "multi-dimensional data can be extracted from a KG
by specifying an analytical schema over it, which is a set of view
definitions over the graph to define observations, measures, and
dimensions" — and "it is straightforward to obtain a statistical KG by
creating a (materialized) view over an existing KG".  The paper's own
DBpedia dataset is such a view (songs by genre/artist/label/...).

:class:`AnalyticalView` implements that step: given a source KG (any
SPARQL endpoint) and mappings from a fact class to dimension members,
hierarchies, and numeric measures, :meth:`AnalyticalView.materialize`
emits a QB-structured graph ready for Re2xOLAP bootstrap.  Materialization
runs entirely through CONSTRUCT queries against the source endpoint, so it
works on remote stores as well as local graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchemaError
from ..qb.vocabulary import LABEL, OBSERVATION_CLASS, TYPE
from ..rdf.namespace import Namespace
from ..rdf.terms import IRI, Literal
from ..rdf.triple import Triple
from ..store.endpoint import Endpoint
from ..store.graph import Graph

__all__ = ["RollupStep", "DimensionMapping", "MeasureMapping", "AnalyticalView"]


@dataclass(frozen=True)
class RollupStep:
    """One hierarchy step of a view dimension.

    ``name`` becomes the rollup predicate in the view; ``source_path`` is
    the predicate path in the *source* KG from the previous level's
    members to this level's members.
    """

    name: str
    source_path: tuple[IRI, ...]

    def __post_init__(self):
        if not self.source_path:
            raise SchemaError(f"rollup step {self.name!r} needs a source path")


@dataclass(frozen=True)
class DimensionMapping:
    """Maps one view dimension onto the source KG.

    ``source_path`` reaches the base-level members from a fact entity;
    ``hierarchy`` optionally climbs further; ``label_predicate`` names the
    source predicate carrying member labels (``rdfs:label`` by default).
    """

    name: str
    source_path: tuple[IRI, ...]
    hierarchy: tuple[RollupStep, ...] = ()
    label_predicate: IRI = LABEL

    def __post_init__(self):
        if not self.source_path:
            raise SchemaError(f"dimension {self.name!r} needs a source path")


@dataclass(frozen=True)
class MeasureMapping:
    """Maps one numeric measure onto the source KG."""

    name: str
    source_path: tuple[IRI, ...]

    def __post_init__(self):
        if not self.source_path:
            raise SchemaError(f"measure {self.name!r} needs a source path")


@dataclass(frozen=True)
class AnalyticalView:
    """A view definition: fact class + dimension/measure mappings."""

    name: str
    fact_class: IRI
    dimensions: tuple[DimensionMapping, ...]
    measures: tuple[MeasureMapping, ...]
    namespace: str = "http://example.org/view/"

    def __post_init__(self):
        if not self.dimensions:
            raise SchemaError("an analytical view needs at least one dimension")
        if not self.measures:
            raise SchemaError("an analytical view needs at least one measure")
        names = [d.name for d in self.dimensions]
        if len(names) != len(set(names)):
            raise SchemaError("dimension names must be unique")

    # -- view-side IRIs ---------------------------------------------------------

    def dimension_predicate(self, mapping: DimensionMapping) -> IRI:
        return Namespace(self.namespace).term(f"prop/{mapping.name}")

    def rollup_predicate(self, step: RollupStep) -> IRI:
        return Namespace(self.namespace).term(f"prop/{step.name}")

    def measure_predicate(self, mapping: MeasureMapping) -> IRI:
        return Namespace(self.namespace).term(f"measure/{mapping.name}")

    # -- materialization ----------------------------------------------------------

    def materialize(self, source: Endpoint) -> Graph:
        """Run the view against the source endpoint; returns the QB graph."""
        view = Graph()
        self._materialize_observations(source, view)
        self._materialize_measures(source, view)
        self._annotate_predicates(view)
        if len(list(view.subjects(TYPE, OBSERVATION_CLASS))) == 0:
            raise SchemaError(
                f"view {self.name!r} produced no observations: check the "
                f"fact class {self.fact_class.n3()} and measure paths"
            )
        return view

    def _materialize_observations(self, source: Endpoint, view: Graph) -> None:
        for mapping in self.dimensions:
            chain = " / ".join(p.n3() for p in mapping.source_path)
            predicate = self.dimension_predicate(mapping)
            constructed = source.construct(
                f"CONSTRUCT {{ ?obs {TYPE.n3()} {OBSERVATION_CLASS.n3()} . "
                f"?obs {predicate.n3()} ?m . ?m {LABEL.n3()} ?l }} "
                f"WHERE {{ ?obs a {self.fact_class.n3()} . ?obs {chain} ?m . "
                f"FILTER(!isLiteral(?m)) "
                f"OPTIONAL {{ ?m {mapping.label_predicate.n3()} ?l }} }}"
            )
            view.add_all(constructed.triples())
            self._materialize_hierarchy(source, view, mapping)

    def _materialize_hierarchy(
        self, source: Endpoint, view: Graph, mapping: DimensionMapping
    ) -> None:
        # Walk level by level: members of level k are the sources of the
        # k+1 rollup step.
        level_chain = list(mapping.source_path)
        fact = f"?obs a {self.fact_class.n3()} . "
        for step in mapping.hierarchy:
            lower_chain = " / ".join(p.n3() for p in level_chain)
            step_chain = " / ".join(p.n3() for p in step.source_path)
            predicate = self.rollup_predicate(step)
            constructed = source.construct(
                f"CONSTRUCT {{ ?m {predicate.n3()} ?parent . "
                f"?parent {LABEL.n3()} ?pl }} "
                f"WHERE {{ {fact} ?obs {lower_chain} ?m . ?m {step_chain} ?parent . "
                f"FILTER(!isLiteral(?parent)) "
                f"OPTIONAL {{ ?parent {mapping.label_predicate.n3()} ?pl }} }}"
            )
            view.add_all(constructed.triples())
            level_chain.extend(step.source_path)

    def _materialize_measures(self, source: Endpoint, view: Graph) -> None:
        for mapping in self.measures:
            chain = " / ".join(p.n3() for p in mapping.source_path)
            predicate = self.measure_predicate(mapping)
            constructed = source.construct(
                f"CONSTRUCT {{ ?obs {predicate.n3()} ?v }} "
                f"WHERE {{ ?obs a {self.fact_class.n3()} . ?obs {chain} ?v . "
                f"FILTER(isNumeric(?v)) }}"
            )
            view.add_all(constructed.triples())

    def _annotate_predicates(self, view: Graph) -> None:
        """Label the view's predicates so descriptions read naturally."""
        for mapping in self.dimensions:
            view.add(Triple(self.dimension_predicate(mapping), LABEL,
                            Literal(_title(mapping.name))))
            for step in mapping.hierarchy:
                view.add(Triple(self.rollup_predicate(step), LABEL,
                                Literal(_title(step.name))))
        for mapping in self.measures:
            view.add(Triple(self.measure_predicate(mapping), LABEL,
                            Literal(_title(mapping.name))))


def _title(name: str) -> str:
    return name.replace("_", " ").title()
