"""Exploration-path accounting (Figure 8c).

The paper quantifies the *expressiveness* of the framework by counting, at
every interaction of an example workflow, the cumulative number of
distinct exploration paths (queries) the system gives access to and the
cumulative number of result tuples behind them.

We reproduce the estimator implied by the paper's description: each
interaction offers ``options_i`` alternatives to *every* path open after
interaction ``i-1``, so the number of reachable paths multiplies

    ``paths_i = paths_{i-1} * options_i``

and the tuples accessible grow by one executed result set per new path,
estimated with the result size observed on the chosen path

    ``tuples_i = tuples_{i-1} + paths_i * |T_i|``.

The estimate uses only quantities measured on the actually-executed
branch (option counts and result sizes), never enumerating the tree —
which is the point: a handful of interactions opens thousands of paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from .session import ExplorationSession, ExplorationStep

__all__ = ["PathAccounting", "account_paths"]


@dataclass(frozen=True)
class PathAccounting:
    """Cumulative counts after each interaction of a workflow."""

    interactions: tuple[str, ...]
    options: tuple[int, ...]
    tuples_per_step: tuple[int, ...]
    cumulative_paths: tuple[int, ...]
    cumulative_tuples: tuple[int, ...]

    def rows(self) -> list[dict]:
        """One dictionary per interaction, ready for tabular printing."""
        return [
            {
                "interaction": index + 1,
                "kind": self.interactions[index],
                "options": self.options[index],
                "tuples": self.tuples_per_step[index],
                "cumulative_paths": self.cumulative_paths[index],
                "cumulative_tuples": self.cumulative_tuples[index],
            }
            for index in range(len(self.interactions))
        ]


def account_paths(steps: list[ExplorationStep]) -> PathAccounting:
    """Compute Figure 8c's cumulative path/tuple counts for a workflow."""
    kinds: list[str] = []
    options: list[int] = []
    tuples: list[int] = []
    cumulative_paths: list[int] = []
    cumulative_tuples: list[int] = []
    paths = 1
    total_tuples = 0
    for step in steps:
        paths *= max(1, step.options_offered)
        total_tuples += paths * step.n_tuples
        kinds.append(step.kind)
        options.append(step.options_offered)
        tuples.append(step.n_tuples)
        cumulative_paths.append(paths)
        cumulative_tuples.append(total_tuples)
    return PathAccounting(
        interactions=tuple(kinds),
        options=tuple(options),
        tuples_per_step=tuple(tuples),
        cumulative_paths=tuple(cumulative_paths),
        cumulative_tuples=tuple(cumulative_tuples),
    )
