"""Insight extraction over query results.

The user study (Section 7.2) found two recurring information needs:
computing max/min values within groupings, and situating known entities
against context.  The related work the paper positions against (Spade,
Dagger, top-k insight extraction) scores aggregates by statistical
peculiarity.  This module provides those capabilities over an executed
OLAP query's results:

* :func:`column_statistics` — the moments of an aggregate column
  (mean, standard deviation, skewness via scipy);
* :func:`outlier_rows` — rows whose aggregate value deviates by more than
  ``z`` standard deviations;
* :func:`anchor_position` — where the user's example sits in the
  distribution (rank, percentile, z-score), powering messages like
  "Germany is 2.1σ above the mean SUM(Num Applicants)";
* :func:`insight_summary` — the per-aggregate digest of all of the above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from ..rdf.terms import Literal
from ..sparql.results import ResultSet
from .olap_query import OLAPQuery

__all__ = [
    "ColumnStatistics",
    "AnchorPosition",
    "column_statistics",
    "outlier_rows",
    "anchor_position",
    "insight_summary",
]


@dataclass(frozen=True)
class ColumnStatistics:
    """Distribution summary of one aggregate column."""

    column: str
    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    skewness: float

    @property
    def is_skewed(self) -> bool:
        """Right/left-skewed beyond the usual |skew| > 1 rule of thumb."""
        return abs(self.skewness) > 1.0


@dataclass(frozen=True)
class AnchorPosition:
    """Where the example's value sits in the aggregate distribution."""

    column: str
    value: float
    rank: int  # 1 = largest
    percentile: float
    z_score: float

    def describe(self, keyword: str) -> str:
        direction = "above" if self.z_score >= 0 else "below"
        return (
            f"{keyword} ranks #{self.rank} on {self.column} "
            f"({_ordinal(round(self.percentile))} percentile, "
            f"{abs(self.z_score):.1f}σ {direction} the mean)"
        )


def _ordinal(value: int) -> str:
    if 10 <= value % 100 <= 20:
        suffix = "th"
    else:
        suffix = {1: "st", 2: "nd", 3: "rd"}.get(value % 10, "th")
    return f"{value}{suffix}"


def _column_values(results: ResultSet, column: str) -> np.ndarray:
    values = []
    index = results.index_of(column)
    for row in results.rows:
        term = row[index]
        if isinstance(term, Literal) and term.is_numeric:
            values.append(term.numeric_value())
    return np.array(values, dtype=float)


def column_statistics(results: ResultSet, column: str) -> ColumnStatistics:
    """Moments of one numeric result column.

    Raises :class:`ValueError` when the column holds no numeric values.
    """
    values = _column_values(results, column)
    if values.size == 0:
        raise ValueError(f"column {column!r} holds no numeric values")
    skewness = float(scipy_stats.skew(values)) if values.size > 2 else 0.0
    return ColumnStatistics(
        column=column,
        count=int(values.size),
        mean=float(values.mean()),
        std=float(values.std()),
        minimum=float(values.min()),
        maximum=float(values.max()),
        skewness=skewness,
    )


def outlier_rows(results: ResultSet, column: str, z: float = 2.0) -> list[int]:
    """Indexes of rows whose ``column`` value is a |z|-score outlier."""
    if z <= 0:
        raise ValueError("z must be positive")
    index = results.index_of(column)
    values = _column_values(results, column)
    if values.size < 3 or values.std() == 0:
        return []
    mean, std = values.mean(), values.std()
    outliers = []
    for row_index, row in enumerate(results.rows):
        term = row[index]
        if isinstance(term, Literal) and term.is_numeric:
            if abs(term.numeric_value() - mean) > z * std:
                outliers.append(row_index)
    return outliers


def anchor_position(
    query: OLAPQuery, results: ResultSet, column: str
) -> AnchorPosition | None:
    """The example's standing in one aggregate column.

    Uses the first anchor-matching row; returns None when the example does
    not appear in the results or the column is non-numeric there.
    """
    matches = query.anchor_row_indexes(results)
    if not matches or len(matches) == len(results.rows):
        return None
    index = results.index_of(column)
    term = results.rows[matches[0]][index]
    if not (isinstance(term, Literal) and term.is_numeric):
        return None
    value = term.numeric_value()
    values = _column_values(results, column)
    rank = int((values > value).sum()) + 1
    percentile = float((values <= value).mean() * 100)
    z_score = float((value - values.mean()) / values.std()) if values.std() else 0.0
    return AnchorPosition(
        column=column, value=value, rank=rank, percentile=percentile, z_score=z_score
    )


def insight_summary(query: OLAPQuery, results: ResultSet) -> list[str]:
    """Human-readable insights over every aggregate column.

    One line per notable fact: skewed distributions, outlier counts, and
    the example's standing.  Empty when the results carry no signal.
    """
    if not results:
        return []
    insights: list[str] = []
    keyword = ", ".join(sorted({a.keyword for a in query.anchors})) or "the example"
    for measure in query.measures:
        for _func, alias in measure.aliases():
            name = alias.name
            try:
                column_stats = column_statistics(results, name)
            except (KeyError, ValueError):
                continue
            if column_stats.is_skewed:
                side = "right" if column_stats.skewness > 0 else "left"
                insights.append(
                    f"{name} is strongly {side}-skewed "
                    f"(skewness {column_stats.skewness:.1f})"
                )
            outliers = outlier_rows(results, name)
            if outliers:
                insights.append(
                    f"{name} has {len(outliers)} outlier tuple(s) beyond 2σ"
                )
            position = anchor_position(query, results, name)
            if position is not None and abs(position.z_score) >= 1.0:
                insights.append(position.describe(keyword))
    return insights
