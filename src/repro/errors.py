"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  Subsystems raise the more specific
subclasses below, which keeps ``except`` clauses narrow and intent explicit.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class RDFSyntaxError(ReproError):
    """Raised when parsing an RDF serialization (N-Triples / Turtle) fails."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SPARQLSyntaxError(ReproError):
    """Raised when a SPARQL query string cannot be parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"at offset {position}: {message}"
        super().__init__(message)


class QueryEvaluationError(ReproError):
    """Raised when a syntactically valid query cannot be evaluated."""


class QueryTimeoutError(QueryEvaluationError):
    """Raised when query evaluation exceeds the endpoint's deadline."""


class SchemaError(ReproError):
    """Raised for inconsistent cube schema definitions."""


class BootstrapError(ReproError):
    """Raised when virtual schema graph construction fails."""


class ServingError(ReproError):
    """Base class for errors raised by the concurrent serving layer."""


class AdmissionError(ServingError):
    """Raised when the executor's bounded queue is full (backpressure).

    Callers should treat this like an HTTP 503: back off and retry rather
    than queueing unbounded work behind a saturated pool.
    """


class ServiceShutdownError(ServingError):
    """Raised when work is submitted to a service that has shut down."""


class SynthesisError(ReproError):
    """Raised when REOLAP cannot derive any query from the given examples."""


class RefinementError(ReproError):
    """Raised when a refinement operator receives invalid input."""
