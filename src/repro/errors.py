"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  Subsystems raise the more specific
subclasses below, which keeps ``except`` clauses narrow and intent explicit.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class RDFSyntaxError(ReproError):
    """Raised when parsing an RDF serialization (N-Triples / Turtle) fails."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SPARQLSyntaxError(ReproError):
    """Raised when a SPARQL query string cannot be parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"at offset {position}: {message}"
        super().__init__(message)


class QueryEvaluationError(ReproError):
    """Raised when a syntactically valid query cannot be evaluated."""


class QueryTimeoutError(QueryEvaluationError):
    """Raised when query evaluation exceeds the endpoint's deadline."""


class TransientError(ReproError):
    """A fault expected to clear on its own — safe to retry.

    This is the error-hierarchy branch the resilience layer keys on:
    :class:`~repro.resilience.RetryPolicy` retries only transient faults,
    and degraded execution (REOLAP partial candidate sets, recorded failed
    session steps) treats them as endpoint failures rather than caller
    bugs.  Deterministic errors (syntax, bad refinement input) must never
    derive from this class.
    """


class EndpointUnavailableError(TransientError, QueryEvaluationError):
    """The endpoint dropped a query mid-flight (network blip, overload).

    The in-process store never raises this on its own; it models the
    transport-level failures of a remote SPARQL endpoint and is what the
    fault injector raises for its ``transient`` fault kind.
    """


#: What the degradation layers treat as an *endpoint* fault: transient
#: failures plus deadline expiry (the paper's Virtuoso-timeout scenario).
#: Everything else propagates — it signals a caller bug, not a sick store.
FAULT_ERRORS = (TransientError, QueryTimeoutError)


class SnapshotError(ReproError):
    """Raised when a snapshot file cannot be written, read, or validated.

    Covers bad magic/version, truncated sections, and per-section CRC
    checks failing at load time — anything that means the file is not a
    snapshot this build can serve queries from.  The message names the
    failing section so a corrupt byte is diagnosable without a hexdump.
    """


class WALError(ReproError):
    """Raised when the write-ahead log cannot be appended to or replayed.

    A torn tail in the *final* segment is not an error — that is the
    expected shape of a crash mid-append, and replay repairs it by
    truncation.  This class covers genuinely broken states: corruption
    inside a sealed segment, an unwritable log directory, or appends
    attempted after an I/O failure poisoned the writer (the log refuses
    further records rather than risk interleaving a partial one).
    """


class ReadOnlySnapshotError(SnapshotError):
    """Raised on any mutation attempt against a read-only SnapshotView."""


class SchemaError(ReproError):
    """Raised for inconsistent cube schema definitions."""


class BootstrapError(ReproError):
    """Raised when virtual schema graph construction fails."""


class ServingError(ReproError):
    """Base class for errors raised by the concurrent serving layer."""


class AdmissionError(ServingError):
    """Raised when the executor's bounded queue is full (backpressure).

    Callers should treat this like an HTTP 503: back off and retry rather
    than queueing unbounded work behind a saturated pool.
    """


class ServiceShutdownError(ServingError):
    """Raised when work is submitted to a service that has shut down."""


class QuotaExceededError(ServingError):
    """Raised when a tenant's token-bucket quota denies admission.

    Distinct from :class:`AdmissionError` (the shared executor queue is
    full — everybody's problem): a quota denial is *this* tenant spending
    faster than its refill rate, so the HTTP layer maps it to 429 rather
    than 503.  ``retry_after`` says how long until the bucket holds a
    token again.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        self.retry_after = retry_after
        super().__init__(message)


class CircuitOpenError(TransientError, ServingError):
    """Raised when a circuit breaker rejects a call without trying it.

    Transient by nature — the breaker re-probes after its recovery
    timeout — but :class:`~repro.resilience.RetryPolicy` deliberately does
    *not* retry it: failing fast while the breaker is open is the point.
    Callers should back off or serve degraded answers.
    """


class RequestShedError(QueryTimeoutError, ServingError):
    """Raised when a queued request is shed: its deadline expired before a
    worker picked it up, so it fails fast without touching the store.

    Subclasses :class:`QueryTimeoutError` so existing deadline handling
    (serving stats, retry classification) sees it as a timeout.
    """


class SynthesisError(ReproError):
    """Raised when REOLAP cannot derive any query from the given examples."""


class RefinementError(ReproError):
    """Raised when a refinement operator receives invalid input."""
