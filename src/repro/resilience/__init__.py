"""Fault tolerance for the query path: injection, retries, breaking, degradation.

The paper's evaluation already met endpoint failure (the Similarity
experiment hit Virtuoso's 15-minute timeout on DBpedia, Section 7), and
the ROADMAP's production north star serves millions of users — where
transient faults are routine, not exceptional.  This subsystem supplies:

* :mod:`repro.resilience.faults` — deterministic, seeded fault injection
  (:class:`FaultPlan` / :class:`FaultInjector`), the test substrate for
  everything below;
* :mod:`repro.resilience.diskfaults` — the same idea one layer down:
  :class:`FaultyFS` injects disk failures, short writes, and simulated
  power loss (:class:`SimulatedCrash`) into the durable store's file I/O;
* :mod:`repro.resilience.policy` — :class:`RetryPolicy`: exponential
  backoff with deterministic jitter, retrying only the
  :class:`~repro.errors.TransientError` branch;
* :mod:`repro.resilience.breaker` — a closed/open/half-open
  :class:`CircuitBreaker` over a sliding failure-rate window;
* :mod:`repro.resilience.endpoint` — :class:`ResilientEndpoint`, the
  decorator threading retry + breaker (+ optional serve-stale answers)
  under any endpoint consumer, and :func:`try_ask_batch`, the
  partial-verdict batch probe graceful degradation is built on.
"""

from .breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerEvent,
    BreakerStats,
    CircuitBreaker,
)
from .diskfaults import DiskFaultPlan, FaultyFS, SimulatedCrash
from .endpoint import ResilienceStats, ResilientEndpoint, try_ask_batch
from .faults import FAULT_KINDS, OK, Fault, FaultEvent, FaultInjector, FaultPlan
from .policy import RetryPolicy

__all__ = [
    "BreakerEvent",
    "BreakerStats",
    "CircuitBreaker",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "DiskFaultPlan",
    "Fault",
    "FaultEvent",
    "FaultyFS",
    "SimulatedCrash",
    "FaultInjector",
    "FaultPlan",
    "FAULT_KINDS",
    "OK",
    "ResilienceStats",
    "ResilientEndpoint",
    "RetryPolicy",
    "try_ask_batch",
]
