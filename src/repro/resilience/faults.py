"""Deterministic fault injection for the endpoint surface.

The paper's own evaluation met real endpoint failure — the Similarity
experiment hit Virtuoso's 15-minute timeout on DBpedia (Section 7) — but
an in-process store never fails on its own.  :class:`FaultInjector` wraps
any endpoint-shaped object and injects the faults a remote SPARQL service
exhibits: timeouts, transient evaluation errors, added latency, and flaky
keyword lookups.  A :class:`FaultPlan` decides the fault for every call
*deterministically* — either from a seeded RNG or from an explicit
schedule — so a chaos test that fails can be replayed exactly from its
seed, and the injector's event log is the ground truth the chaos suite
checks resilience behaviour against.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..errors import EndpointUnavailableError, QueryTimeoutError
from ..sparql.ast import AskQuery, ConstructQuery
from ..sparql.parser import parse_query
from ..store.endpoint import DEFAULT_TIMEOUT, Endpoint

__all__ = ["FAULT_KINDS", "Fault", "FaultEvent", "FaultInjector", "FaultPlan", "OK"]

#: Fault kinds a plan may emit.  ``ok`` passes the call through untouched.
FAULT_KINDS = ("ok", "timeout", "transient", "latency")


@dataclass(frozen=True)
class Fault:
    """One injection decision: what to do to a single endpoint call."""

    kind: str  # one of FAULT_KINDS
    latency: float = 0.0  # extra seconds before the call proceeds (kind="latency")

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")


#: The no-op decision; plans return it for healthy calls.
OK = Fault("ok")


@dataclass(frozen=True)
class FaultEvent:
    """One line of the injector's event log."""

    index: int  # global call index across the injector's lifetime
    op: str  # "select" | "ask" | "ask_batch" | "construct" | "keyword"
    kind: str  # the fault kind applied ("ok" for clean calls)
    latency: float = 0.0


class FaultPlan:
    """Decides the fault for the *n*-th endpoint call, deterministically.

    Two construction styles:

    * :meth:`random` — a seeded RNG draws one fault per call from
      configurable per-kind rates.  The decision sequence is a pure
      function of ``(seed, call order)``: replaying the same call
      sequence replays the same faults.
    * :meth:`from_schedule` — an explicit map from call index to
      :class:`Fault` (unlisted indices are healthy), for tests that pin
      exactly which probe fails.

    ``ops`` restricts injection to a subset of operations (e.g. only
    ``keyword`` lookups are flaky); other calls always pass through.
    An optional ``outages`` list of ``(start, stop)`` call-index windows
    forces the transient fault for every call inside a window — the
    sustained-failure shape that trips a circuit breaker.
    """

    def __init__(
        self,
        decide: Callable[[int, str], Fault],
        ops: Iterable[str] | None = None,
        outages: Iterable[tuple[int, int]] = (),
    ):
        self._decide = decide
        self._ops = None if ops is None else frozenset(ops)
        self._outages = tuple(outages)

    @classmethod
    def healthy(cls) -> "FaultPlan":
        return cls(lambda index, op: OK)

    @classmethod
    def random(
        cls,
        seed: int,
        timeout_rate: float = 0.0,
        transient_rate: float = 0.0,
        latency_rate: float = 0.0,
        max_latency: float = 0.005,
        ops: Iterable[str] | None = None,
        outages: Iterable[tuple[int, int]] = (),
    ) -> "FaultPlan":
        rng = random.Random(seed)
        lock = threading.Lock()

        def decide(index: int, op: str) -> Fault:
            # One draw per call under a lock: the sequence of decisions is
            # deterministic in call order even with concurrent callers.
            with lock:
                roll = rng.random()
                stretch = rng.random()
            if roll < timeout_rate:
                return Fault("timeout")
            if roll < timeout_rate + transient_rate:
                return Fault("transient")
            if roll < timeout_rate + transient_rate + latency_rate:
                return Fault("latency", latency=stretch * max_latency)
            return OK

        return cls(decide, ops=ops, outages=outages)

    @classmethod
    def from_schedule(
        cls,
        schedule: Mapping[int, Fault | str],
        ops: Iterable[str] | None = None,
    ) -> "FaultPlan":
        faults = {
            index: fault if isinstance(fault, Fault) else Fault(fault)
            for index, fault in schedule.items()
        }
        return cls(lambda index, op: faults.get(index, OK), ops=ops)

    def fault_for(self, index: int, op: str) -> Fault:
        for start, stop in self._outages:
            if start <= index < stop:
                return Fault("transient")
        if self._ops is not None and op not in self._ops:
            return OK
        return self._decide(index, op)


class FaultInjector:
    """An endpoint decorator that injects faults per the plan.

    Duck-types the :class:`~repro.store.Endpoint` query surface, so any
    consumer — REOLAP, refinement operators, :class:`ResilientEndpoint`,
    the serving layer — can run against it unchanged.  Every call first
    asks the plan for a decision, appends a :class:`FaultEvent`, and then
    raises / delays / passes through accordingly:

    * ``timeout`` → :class:`~repro.errors.QueryTimeoutError`
    * ``transient`` → :class:`~repro.errors.EndpointUnavailableError`
    * ``latency`` → ``sleep(latency)`` then delegate
    * ``ok`` → delegate

    ``sleep`` is injectable so chaos tests can use a virtual clock.
    """

    def __init__(
        self,
        inner: Endpoint,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self._inner = inner
        self.plan = plan
        self._sleep = sleep
        self._lock = threading.Lock()
        self._calls = 0
        self._armed = True
        self._events: list[FaultEvent] = []

    # -- attributes consumers read straight through ------------------------

    @property
    def graph(self):
        return self._inner.graph

    @property
    def stats(self):
        return self._inner.stats

    @property
    def cache(self):
        return self._inner.cache

    @property
    def default_timeout(self):
        return self._inner.default_timeout

    @property
    def text_index(self):
        return self._inner.text_index

    def refresh_text_index(self) -> None:
        self._inner.refresh_text_index()

    # -- injection ---------------------------------------------------------

    @property
    def events(self) -> list[FaultEvent]:
        """A copy of the injection log, in call order."""
        with self._lock:
            return list(self._events)

    def faults_injected(self) -> int:
        with self._lock:
            return sum(1 for event in self._events if event.kind != "ok")

    def arm(self) -> None:
        """(Re-)enable injection; on by default."""
        with self._lock:
            self._armed = True

    def disarm(self) -> None:
        """Pass calls through untouched — neither counted nor logged.

        Lets a driver bootstrap (schema crawl, warm-up) against the clean
        store and start the fault schedule at call 0 of the workload it
        actually wants to shake.
        """
        with self._lock:
            self._armed = False

    def _admit(self, op: str) -> None:
        with self._lock:
            if not self._armed:
                return
            index = self._calls
            self._calls += 1
            fault = self.plan.fault_for(index, op)
            self._events.append(FaultEvent(index, op, fault.kind, fault.latency))
        if fault.kind == "timeout":
            raise QueryTimeoutError(f"injected timeout (call {index}, {op})")
        if fault.kind == "transient":
            raise EndpointUnavailableError(
                f"injected transient fault (call {index}, {op})"
            )
        if fault.kind == "latency":
            self._sleep(fault.latency)

    # -- the query surface -------------------------------------------------

    def select(self, query, timeout=DEFAULT_TIMEOUT):
        self._admit("select")
        return self._inner.select(query, timeout=timeout)

    def ask(self, query, timeout=DEFAULT_TIMEOUT):
        self._admit("ask")
        return self._inner.ask(query, timeout=timeout)

    def construct(self, query, timeout=DEFAULT_TIMEOUT):
        self._admit("construct")
        return self._inner.construct(query, timeout=timeout)

    def ask_batch(self, queries, timeout=DEFAULT_TIMEOUT):
        # One decision for the whole batch: a real endpoint drops the one
        # round-trip, not individual candidates inside it.
        self._admit("ask_batch")
        return self._inner.ask_batch(queries, timeout=timeout)

    def query(self, text: str, timeout=DEFAULT_TIMEOUT):
        # Dispatch like Endpoint.query but through our own ask/select/
        # construct so the injection decision lands on the resolved kind.
        parsed = parse_query(text) if isinstance(text, str) else text
        if isinstance(parsed, AskQuery):
            return self.ask(parsed, timeout=timeout)
        if isinstance(parsed, ConstructQuery):
            return self.construct(parsed, timeout=timeout)
        return self.select(parsed, timeout=timeout)

    def resolve_keyword(self, keyword: str, exact: bool = True):
        self._admit("keyword")
        return self._inner.resolve_keyword(keyword, exact=exact)

    # Endpoint's probe logic re-enters through self.ask/self.select, so
    # each probe leg is a separately injectable call.
    is_non_empty = Endpoint.is_non_empty

    def __repr__(self) -> str:
        return f"<FaultInjector {self.faults_injected()}/{self._calls} faulted over {self._inner!r}>"
