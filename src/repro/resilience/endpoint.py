"""The resilient endpoint decorator: retries, breaker, stale answers.

:class:`ResilientEndpoint` wraps any endpoint-shaped object (a real
:class:`~repro.store.Endpoint`, a :class:`~repro.resilience.FaultInjector`
in chaos tests) and gives every call the failure-handling discipline the
ROADMAP's production target demands:

* transient faults are retried per a :class:`~repro.resilience.RetryPolicy`
  (exponential backoff, deterministic jitter, bounded budget);
* persistent faults trip a per-endpoint
  :class:`~repro.resilience.CircuitBreaker`, shedding calls instead of
  queueing them behind a sick store;
* with ``serve_stale=True``, SELECT/ASK/CONSTRUCT answers recorded before
  the breaker opened are served (marked in stats) while it is open — the
  cache-epoch fallback the serving layer exposes as serve-stale mode.

Every retry, trip, shed and stale answer is counted in
:class:`ResilienceStats`, so the chaos suite can assert exact behaviour.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..errors import CircuitOpenError, QueryTimeoutError, TransientError
from ..serving.cache import LRUCache, MISS
from ..sparql.results import ResultSet
from ..store.endpoint import DEFAULT_TIMEOUT, Endpoint
from .breaker import CircuitBreaker
from .policy import RetryPolicy

__all__ = ["ResilienceStats", "ResilientEndpoint", "try_ask_batch"]

#: Errors that count against the breaker: the endpoint itself misbehaved.
#: Deterministic errors (syntax, bad input) are evidence the endpoint is
#: *reachable* and evaluating, so they count as breaker successes.
_ENDPOINT_FAULTS = (TransientError, QueryTimeoutError)


@dataclass
class ResilienceStats:
    """Counters for one resilient endpoint; shared-lock protected."""

    calls: int = 0  # guarded calls entered
    retries: int = 0  # sleep-then-retry transitions
    recovered: int = 0  # calls that succeeded after >= 1 retry
    giveups: int = 0  # transient faults re-raised with budget exhausted
    breaker_rejections: int = 0  # calls shed by the open breaker
    stale_served: int = 0  # shed calls answered from the stale tier
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(self, counter: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + n)

    def snapshot(self) -> "ResilienceStats":
        with self._lock:
            return ResilienceStats(
                self.calls, self.retries, self.recovered, self.giveups,
                self.breaker_rejections, self.stale_served,
            )


class ResilientEndpoint:
    """Retry + circuit-breaker decorator over the endpoint surface.

    ``sleep`` is injectable (chaos tests pass a no-op or virtual clock),
    and the retry jitter comes from the policy's seed, so behaviour under
    a given fault schedule is fully deterministic.
    """

    def __init__(
        self,
        inner: Endpoint,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        serve_stale: bool = False,
        stale_size: int = 256,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self._inner = inner
        # No policy means no retries: a breaker-only (or stale-only)
        # configuration must not silently re-issue queries.
        self.retry = retry if retry is not None else RetryPolicy(max_retries=0)
        self.breaker = breaker
        self.serve_stale = serve_stale
        self._stale = LRUCache(stale_size) if serve_stale else None
        self._sleep = sleep
        self.resilience = ResilienceStats()

    # -- passthrough attributes --------------------------------------------

    @property
    def graph(self):
        return self._inner.graph

    @property
    def stats(self):
        return self._inner.stats

    @property
    def cache(self):
        return self._inner.cache

    @property
    def default_timeout(self):
        return self._inner.default_timeout

    @property
    def text_index(self):
        return self._inner.text_index

    def refresh_text_index(self) -> None:
        self._inner.refresh_text_index()

    @property
    def events(self):
        """The inner injector's fault log, when wrapping an injector."""
        return getattr(self._inner, "events", [])

    # -- the guarded call path ---------------------------------------------

    def _stale_key(self, op: str, query) -> tuple | None:
        if self._stale is None:
            return None
        try:
            text = query if isinstance(query, str) else query.to_sparql()
        except AttributeError:
            return None
        return (op, text)

    def _serve_stale(self, key: tuple | None, shed: CircuitOpenError):
        """Answer a shed call from the last-known-good tier, or re-raise."""
        if key is not None:
            value = self._stale.get(key)
            if value is not MISS:
                self.resilience.add("stale_served")
                if isinstance(value, ResultSet):
                    return ResultSet(value.variables, value.rows)
                return value
        raise shed

    def _call(self, op: str, fn, query, *args, salt_extra: int = 0, **kwargs):
        self.resilience.add("calls")
        stale_key = self._stale_key(op, query)
        attempt = 0
        while True:
            if self.breaker is not None:
                try:
                    self.breaker.acquire()
                except CircuitOpenError as shed:
                    self.resilience.add("breaker_rejections")
                    return self._serve_stale(stale_key, shed)
            try:
                result = fn(query, *args, **kwargs)
            except _ENDPOINT_FAULTS as error:
                if self.breaker is not None:
                    self.breaker.record_failure()
                if self.retry.is_transient(error) and attempt < self.retry.max_retries:
                    self.resilience.add("retries")
                    self._sleep(self.retry.delay(attempt, salt=salt_extra))
                    attempt += 1
                    continue
                self.resilience.add("giveups")
                raise
            except Exception:
                # Deterministic failure: the endpoint answered, the query
                # is at fault.  Health signal for the breaker; no retry.
                if self.breaker is not None:
                    self.breaker.record_success()
                raise
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                if attempt:
                    self.resilience.add("recovered")
                if stale_key is not None:
                    value = result
                    if isinstance(value, ResultSet):
                        value = ResultSet(value.variables, value.rows)
                    self._stale.put(stale_key, value)
                return result

    # -- the query surface -------------------------------------------------

    def select(self, query, timeout=DEFAULT_TIMEOUT):
        return self._call("select", self._inner.select, query, timeout=timeout)

    def ask(self, query, timeout=DEFAULT_TIMEOUT):
        return self._call("ask", self._inner.ask, query, timeout=timeout)

    def construct(self, query, timeout=DEFAULT_TIMEOUT):
        return self._call("construct", self._inner.construct, query, timeout=timeout)

    def query(self, text: str, timeout=DEFAULT_TIMEOUT):
        return self._call("query", self._inner.query, text, timeout=timeout)

    def ask_batch(self, queries, timeout=DEFAULT_TIMEOUT):
        # Retried as a unit; stale answers don't apply to batches (the
        # per-candidate fallback in try_ask_batch handles degradation).
        return self._call("ask_batch", self._inner.ask_batch, queries, timeout=timeout)

    def resolve_keyword(self, keyword: str, exact: bool = True):
        return self._call("keyword", self._inner.resolve_keyword, keyword, exact=exact)

    is_non_empty = Endpoint.is_non_empty

    def __repr__(self) -> str:
        return f"<ResilientEndpoint over {self._inner!r}>"


def try_ask_batch(
    endpoint, queries, timeout=DEFAULT_TIMEOUT
) -> tuple[list["bool | None"], bool]:
    """Best-effort batched ASK: per-candidate fallback, never raises faults.

    Tries ``endpoint.ask_batch`` first; if the endpoint lacks it or the
    batched round-trip fails with an endpoint fault, every *undecided*
    candidate is re-asked individually, each under its own fault budget.
    Returns ``(verdicts, degraded)`` where ``verdicts`` aligns 1:1 with
    ``queries`` (``None`` = could not be decided) and ``degraded`` is True
    iff any fault was absorbed.  Deterministic errors still propagate.
    """
    verdicts: list[bool | None] = [None] * len(queries)
    degraded = False
    if not queries:
        return verdicts, degraded
    ask_batch = getattr(endpoint, "ask_batch", None)
    if ask_batch is not None:
        try:
            batched = ask_batch(list(queries), timeout=timeout)
        except _ENDPOINT_FAULTS:
            degraded = True
        else:
            return list(batched), degraded
    for index, query in enumerate(queries):
        try:
            verdicts[index] = endpoint.ask(query, timeout=timeout)
        except _ENDPOINT_FAULTS:
            degraded = True
    return verdicts, degraded
