"""Disk-level fault injection: the crash harness under the durability layer.

Where :mod:`repro.resilience.faults` injects failures into the *query*
path, this module injects them into the *persistence* path.  The durable
store takes an ``opener`` callable everywhere it touches a file
(:class:`~repro.store.wal.WalWriter`,
:func:`~repro.store.snapshot.save_snapshot`,
:meth:`~repro.store.durable.DurableGraph.open`), and :class:`FaultyFS` is
a drop-in ``open`` that wraps every returned file object in a shim which
counts written bytes and fsyncs globally and, per a :class:`DiskFaultPlan`,
either

* **fails** — raises ``OSError`` at a scheduled byte offset or fsync
  ordinal, modelling a full disk or a dying device the process survives;
* **short-writes** — persists only a prefix of one ``write()`` call, then
  fails, modelling the torn buffers real kernels leave behind; or
* **crashes** — raises :class:`SimulatedCrash` at the scheduled point,
  modelling ``kill -9`` / power loss at byte granularity.

:class:`SimulatedCrash` derives from ``BaseException`` deliberately: the
durability code catches ``OSError`` to clean up after *survivable*
failures (unlink the temp file, poison the WAL writer), and a simulated
power loss must skip exactly that cleanup — a machine losing power does
not unlink its temp files.  Whatever debris the "crash" leaves on disk is
what recovery is then proven against.

Counters are cumulative across every file the injector opens, so a plan
schedules its fault at a point in the *workload*, not in one file — e.g.
"the 3rd fsync of this checkpoint" lands inside ``save_snapshot``
regardless of how the bytes are split across temp files and WAL segments.

>>> plan = DiskFaultPlan(crash_at_byte=1000)
>>> fs = FaultyFS(plan)
>>> # DurableGraph.open(dir, opener=fs) now dies mid-write at byte 1000.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO

__all__ = ["SimulatedCrash", "DiskFaultPlan", "FaultyFS"]


class SimulatedCrash(BaseException):
    """Power loss at a scheduled I/O point.

    A ``BaseException`` so library ``except OSError`` / ``except
    Exception`` cleanup cannot intercept it: everything below the crash
    point stays exactly as a real kill would leave it.
    """


@dataclass
class DiskFaultPlan:
    """When and how the filesystem betrays the writer.

    Byte triggers fire when cumulative bytes written (across all files
    opened through the injector) reach the threshold; fsync triggers fire
    on the Nth fsync (1-based).  ``None`` disables a trigger.  Exactly
    one fault fires per plan — after it, the injector is inert, so a test
    can assert clean behaviour *after* the fault too.
    """

    #: Raise OSError once this many bytes have been written.
    fail_at_byte: int | None = None
    #: Persist only the bytes up to this offset for the triggering
    #: write(), then raise OSError — a torn write.
    short_write_at_byte: int | None = None
    #: Raise SimulatedCrash once this many bytes have been written
    #: (bytes before the threshold in the triggering write DO land,
    #: like a power cut mid-stream).
    crash_at_byte: int | None = None
    #: Raise OSError on the Nth fsync (1-based).
    fail_at_fsync: int | None = None
    #: Raise SimulatedCrash on the Nth fsync, before it persists.
    crash_at_fsync: int | None = None


class FaultyFS:
    """An ``open``-compatible callable whose files fail to plan.

    Tracks cumulative ``bytes_written`` and ``fsyncs`` across every file
    it has opened, and ``fired`` — the name of the trigger that went off,
    or ``None``.  Reads are never faulted: recovery code must be able to
    examine whatever the fault left behind.
    """

    def __init__(self, plan: DiskFaultPlan):
        self.plan = plan
        self.bytes_written = 0
        self.fsyncs = 0
        self.fired: str | None = None

    def __call__(self, path, mode="r", *args, **kwargs):
        handle = open(path, mode, *args, **kwargs)
        if "r" in mode and "+" not in mode:
            return handle  # plain read: never faulted
        return _FaultyFile(handle, self)

    # -- trigger checks, called by the file shim ----------------------------

    def _on_write(self, handle: IO, data) -> int:
        plan = self.plan
        view = memoryview(data) if not isinstance(data, (bytes, bytearray)) else data
        length = len(view)
        if self.fired is None and plan.crash_at_byte is not None:
            if self.bytes_written + length >= plan.crash_at_byte:
                keep = max(0, plan.crash_at_byte - self.bytes_written)
                if keep:
                    handle.write(view[:keep])
                    handle.flush()
                self.bytes_written += keep
                self.fired = "crash_at_byte"
                raise SimulatedCrash(
                    f"simulated power loss at byte {plan.crash_at_byte}"
                )
        if self.fired is None and plan.short_write_at_byte is not None:
            if self.bytes_written + length >= plan.short_write_at_byte:
                keep = max(0, plan.short_write_at_byte - self.bytes_written)
                if keep:
                    handle.write(view[:keep])
                    handle.flush()
                self.bytes_written += keep
                self.fired = "short_write_at_byte"
                raise OSError(28, "No space left on device (injected short write)")
        if self.fired is None and plan.fail_at_byte is not None:
            if self.bytes_written + length >= plan.fail_at_byte:
                self.fired = "fail_at_byte"
                raise OSError(5, "Input/output error (injected)")
        written = handle.write(view)
        self.bytes_written += length if written is None else written
        return length if written is None else written

    def _on_fsync(self) -> None:
        plan = self.plan
        self.fsyncs += 1
        if self.fired is None and plan.crash_at_fsync is not None:
            if self.fsyncs >= plan.crash_at_fsync:
                self.fired = "crash_at_fsync"
                raise SimulatedCrash(
                    f"simulated power loss at fsync #{self.fsyncs}"
                )
        if self.fired is None and plan.fail_at_fsync is not None:
            if self.fsyncs >= plan.fail_at_fsync:
                self.fired = "fail_at_fsync"
                raise OSError(5, "Input/output error (injected fsync)")


class _FaultyFile:
    """File-object proxy routing writes/fsyncs through the injector.

    The store never calls a ``fsync`` method on the handle — its idiom is
    ``handle.flush(); os.fsync(handle.fileno())`` — so the shim checks
    the fsync triggers inside :meth:`fileno`, the one call that uniquely
    precedes every real barrier.  Everything else proxies through.
    """

    def __init__(self, handle: IO, fs: FaultyFS):
        self._handle = handle
        self._fs = fs

    def write(self, data) -> int:
        return self._fs._on_write(self._handle, data)

    def fileno(self) -> int:
        # The store's fsync idiom is os.fsync(handle.fileno()); firing
        # the fsync triggers here means the injected fault lands exactly
        # where the real barrier would.
        self._fs._on_fsync()
        return self._handle.fileno()

    def __getattr__(self, name):
        return getattr(self._handle, name)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._handle.close()
        return False

    def __iter__(self):
        return iter(self._handle)
