"""Retry policy: exponential backoff with deterministic jitter.

Only *transient* faults are retried (the :class:`~repro.errors.TransientError`
branch of the hierarchy): a syntax error will fail identically on every
attempt, and retrying a full query timeout doubles the very latency the
deadline was bounding — so timeouts are retried only when the caller opts
in.  Jitter is derived from ``(seed, attempt, salt)``, not from a global
RNG, so a retry schedule is reproducible in tests and across runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import CircuitOpenError, QueryTimeoutError, TransientError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) one endpoint call is retried.

    ``max_retries`` is the per-call retry budget: a call makes at most
    ``1 + max_retries`` attempts.  The delay before retry *n* (0-based) is
    ``min(max_delay, base_delay * multiplier**n)`` stretched by a
    deterministic jitter factor in ``[1 - jitter, 1 + jitter]``.
    """

    max_retries: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retry_timeouts: bool = False

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def is_transient(self, error: BaseException) -> bool:
        """Whether the policy classifies ``error`` as retryable."""
        if isinstance(error, CircuitOpenError):
            # Transient in the hierarchy, but retrying against an open
            # breaker defeats the fail-fast the breaker exists to provide.
            return False
        if isinstance(error, QueryTimeoutError):
            return self.retry_timeouts
        return isinstance(error, TransientError)

    def delay(self, attempt: int, salt: int = 0) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered but pure.

        ``salt`` decorrelates concurrent callers (pass e.g. a per-call
        counter) without sacrificing reproducibility.
        """
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if not self.jitter or not raw:
            return raw
        # Ints hash to themselves, so this seeding is stable across
        # processes regardless of PYTHONHASHSEED.
        stretch = random.Random(hash((self.seed, attempt, salt))).uniform(
            1.0 - self.jitter, 1.0 + self.jitter
        )
        return raw * stretch

    def delays(self, salt: int = 0) -> list[float]:
        """The full backoff schedule for one call, for logs and tests."""
        return [self.delay(attempt, salt) for attempt in range(self.max_retries)]
