"""Per-endpoint circuit breaker: closed / open / half-open.

When an endpoint fails persistently, retrying every call just piles load
onto a sick service and stalls every analyst behind the retry budget.
The breaker watches the recent failure rate and, past a threshold, *opens*:
calls are rejected immediately with
:class:`~repro.errors.CircuitOpenError` (shed, not queued).  After a
recovery timeout it admits a limited number of *probe* calls (half-open);
one failed probe re-opens it, enough successful probes close it again.

The clock is injectable, every transition is appended to an event log,
and all state lives under one lock — so the chaos suite can drive the
state machine deterministically and assert its exact trajectory.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..errors import CircuitOpenError

__all__ = ["BreakerEvent", "BreakerStats", "CircuitBreaker", "CLOSED", "HALF_OPEN", "OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerEvent:
    """One state transition (or shed decision) with its timestamp."""

    at: float  # clock() when it happened
    transition: str  # "trip" | "probe" | "close" | "reopen" | "reject"
    state: str  # state after the event


@dataclass
class BreakerStats:
    """Lifetime counters, updated under the breaker's lock."""

    trips: int = 0  # closed/half-open -> open transitions
    rejections: int = 0  # calls shed while open / probe slots exhausted
    probes: int = 0  # calls admitted in half-open state
    closes: int = 0  # half-open -> closed recoveries

    def snapshot(self) -> "BreakerStats":
        return BreakerStats(self.trips, self.rejections, self.probes, self.closes)


class CircuitBreaker:
    """Failure-rate breaker over a sliding window of call outcomes.

    The window holds the last ``window`` outcomes; once it has at least
    ``min_calls`` samples and the failure fraction reaches
    ``failure_rate``, the breaker trips.  While open, :meth:`acquire`
    raises; after ``recovery_timeout`` seconds it moves to half-open and
    admits up to ``half_open_probes`` concurrent probes.  Any probe
    failure re-opens the breaker (restarting the recovery clock); once
    ``half_open_probes`` probes *succeed*, it closes and the window
    resets.

    Usage is a three-call protocol per guarded call::

        breaker.acquire()        # raises CircuitOpenError when shedding
        try:
            result = call()
        except fault:
            breaker.record_failure()
        else:
            breaker.record_success()

    A responsive endpoint returning a *deterministic* error (e.g. a
    syntax error) is evidence of health, so callers should record it as a
    success — the breaker tracks the service, not the queries.
    """

    def __init__(
        self,
        failure_rate: float = 0.5,
        window: int = 16,
        min_calls: int = 4,
        recovery_timeout: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        name: str = "endpoint",
    ):
        if not 0.0 < failure_rate <= 1.0:
            raise ValueError("failure_rate must be in (0, 1]")
        if window < 1 or min_calls < 1 or half_open_probes < 1:
            raise ValueError("window, min_calls and half_open_probes must be >= 1")
        self.failure_rate = failure_rate
        self.window = window
        self.min_calls = min_calls
        self.recovery_timeout = recovery_timeout
        self.half_open_probes = half_open_probes
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._stats = BreakerStats()
        self._events: list[BreakerEvent] = []

    # -- introspection -----------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    @property
    def stats(self) -> BreakerStats:
        with self._lock:
            return self._stats.snapshot()

    @property
    def events(self) -> list[BreakerEvent]:
        with self._lock:
            return list(self._events)

    def _effective_state(self) -> str:
        # OPEN decays to HALF_OPEN lazily on observation; no timer thread.
        if self._state == OPEN and self._clock() - self._opened_at >= self.recovery_timeout:
            self._state = HALF_OPEN
            self._probes_in_flight = 0
            self._probe_successes = 0
        return self._state

    def _log(self, transition: str) -> None:
        self._events.append(BreakerEvent(self._clock(), transition, self._state))

    # -- the call protocol -------------------------------------------------

    def acquire(self) -> None:
        """Admit one call, or raise :class:`CircuitOpenError` to shed it."""
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return
            if state == HALF_OPEN and self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                self._stats.probes += 1
                self._log("probe")
                return
            self._stats.rejections += 1
            self._log("reject")
            retry_in = max(0.0, self._opened_at + self.recovery_timeout - self._clock())
            raise CircuitOpenError(
                f"circuit breaker for {self.name!r} is {state}; "
                f"call shed (retry in ~{retry_in:.2f}s)"
            )

    def record_success(self) -> None:
        with self._lock:
            state = self._effective_state()
            if state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._state = CLOSED
                    self._outcomes.clear()
                    self._stats.closes += 1
                    self._log("close")
                return
            self._outcomes.append(False)

    def record_failure(self) -> None:
        with self._lock:
            state = self._effective_state()
            if state == HALF_OPEN:
                # One bad probe is enough: reopen and restart recovery.
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._state = OPEN
                self._opened_at = self._clock()
                self._stats.trips += 1
                self._log("reopen")
                return
            if state == OPEN:
                return
            self._outcomes.append(True)
            if len(self._outcomes) >= self.min_calls:
                failures = sum(self._outcomes)
                if failures / len(self._outcomes) >= self.failure_rate:
                    self._state = OPEN
                    self._opened_at = self._clock()
                    self._stats.trips += 1
                    self._log("trip")

    def reset(self) -> None:
        """Force-close the breaker and clear its window (ops override)."""
        with self._lock:
            self._state = CLOSED
            self._outcomes.clear()
            self._probes_in_flight = 0
            self._probe_successes = 0

    def __repr__(self) -> str:
        stats = self.stats
        return (f"<CircuitBreaker {self.name!r} {self.state}: "
                f"{stats.trips} trips, {stats.rejections} shed>")
