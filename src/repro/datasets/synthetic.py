"""Generic synthetic statistical-KG generation helpers.

The three dataset modules (:mod:`~repro.datasets.eurostat`,
:mod:`~repro.datasets.production`, :mod:`~repro.datasets.dbpedia`) define
schema-faithful instances; this module holds the pieces they share: scaled
level sizing and a one-call ``generate`` wrapper around
:class:`~repro.qb.cube.CubeBuilder`.
"""

from __future__ import annotations

import math

from ..qb.cube import CubeBuilder, StatisticalKG
from ..qb.schema import CubeSchema

__all__ = ["scaled", "generate", "year_labels", "month_labels", "numbered_labels"]


def scaled(size: int, scale: float, minimum: int = 2) -> int:
    """``size`` scaled by ``scale``, never below ``minimum``.

    Dataset schemas are defined at the paper's full member counts; tests
    and quick benchmarks shrink them uniformly with ``scale`` < 1.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return max(minimum, int(math.ceil(size * scale)))


def generate(schema: CubeSchema, n_observations: int, seed: int = 0) -> StatisticalKG:
    """Materialize ``schema`` with ``n_observations`` observations."""
    return CubeBuilder(schema, seed=seed).build(n_observations)


def year_labels(first: int, count: int) -> tuple[str, ...]:
    """Labels ``"2010", "2011", ...`` for a year level."""
    return tuple(str(first + i) for i in range(count))


_MONTHS = (
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
)


def month_labels(first_year: int, count: int) -> tuple[str, ...]:
    """Labels ``"January 2010", ...`` cycling months across years."""
    labels = []
    for index in range(count):
        year = first_year + index // 12
        labels.append(f"{_MONTHS[index % 12]} {year}")
    return tuple(labels)


def numbered_labels(stem: str, count: int) -> tuple[str, ...]:
    """Labels ``"Product 0", "Product 1", ...`` for synthetic levels."""
    return tuple(f"{stem} {index}" for index in range(count))
