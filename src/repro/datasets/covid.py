"""A COVID-19 statistical KG (the paper's introductory motivation).

The introduction cites "recent COVID-19 data" published as Linked Open
Data (the EU datathon's COVID-19 linked dataset) as a driving example of
statistical KGs.  This generator produces a schema-faithful equivalent:
daily case observations with dimensions Country (→ continent), Reporting
Date (day → week → month), Age Group, and Indicator (cases / deaths /
hospitalizations), and a count measure.

It doubles as a fourth, structurally different workload: a three-level
time hierarchy, which neither Eurostat (two levels) nor Production (flat
time) exercises.
"""

from __future__ import annotations

from ..qb.cube import StatisticalKG
from ..qb.schema import CubeSchema, DimensionSpec, HierarchySpec, LevelSpec, MeasureSpec
from .eurostat import CONTINENTS, COUNTRIES
from .synthetic import generate, scaled

__all__ = ["covid_schema", "generate_covid", "INDICATORS"]

NAMESPACE = "http://example.org/covid/"

INDICATORS = ("Confirmed Cases", "Deaths", "Hospital Admissions", "ICU Admissions")

AGE_GROUPS = ("0-9", "10-19", "20-39", "40-59", "60-79", "80+")


def _day_labels(count: int) -> tuple[str, ...]:
    labels = []
    for index in range(count):
        month = index // 28
        day = index % 28 + 1
        labels.append(f"2020-{month % 12 + 1:02d}-{day:02d}"
                      if month < 12 else f"2021-{month % 12 + 1:02d}-{day:02d}")
    return tuple(labels)


def _week_labels(count: int) -> tuple[str, ...]:
    return tuple(f"Week {index + 1} 2020" if index < 53 else f"Week {index - 52} 2021"
                 for index in range(count))


def _month_labels(count: int) -> tuple[str, ...]:
    months = ("January", "February", "March", "April", "May", "June", "July",
              "August", "September", "October", "November", "December")
    return tuple(f"{months[index % 12]} {2020 + index // 12}" for index in range(count))


def covid_schema(scale: float = 1.0) -> CubeSchema:
    """The COVID-19 cube: a deep time hierarchy (day → week → month)."""
    n_days = scaled(336, scale, minimum=8)
    n_weeks = max(2, n_days // 7)
    n_months = max(2, n_days // 28)
    n_countries = scaled(60, scale, minimum=3)
    n_continents = scaled(6, min(1.0, scale), minimum=2)
    n_ages = scaled(6, min(1.0, scale), minimum=2)
    n_indicators = scaled(4, min(1.0, scale), minimum=2)

    day = LevelSpec("day", n_days, label_values=_day_labels(n_days))
    week = LevelSpec("week", n_weeks, label_values=_week_labels(n_weeks))
    month = LevelSpec("month", n_months, label_values=_month_labels(n_months))
    country = LevelSpec("country", n_countries, pool="country",
                        label_values=COUNTRIES[:n_countries] if n_countries <= len(COUNTRIES)
                        else tuple(f"Country {i}" for i in range(n_countries)))
    continent = LevelSpec("continent", n_continents,
                          label_values=CONTINENTS[:n_continents])
    age = LevelSpec("age_group", n_ages, label_values=AGE_GROUPS[:n_ages])
    indicator = LevelSpec("indicator", n_indicators,
                          label_values=INDICATORS[:n_indicators])

    return CubeSchema(
        name="covid",
        namespace=NAMESPACE,
        dimensions=(
            DimensionSpec(
                "reporting_date",
                (
                    HierarchySpec("date_weekly", (day, week, month),
                                  rollup_names=("in_week", "in_month")),
                ),
                predicate_name="reporting_date",
            ),
            DimensionSpec(
                "country",
                (HierarchySpec("geo", (country, continent), rollup_names=("in_continent",)),),
            ),
            DimensionSpec("age", (HierarchySpec("age", (age,)),), predicate_name="age_group"),
            DimensionSpec("indicator", (HierarchySpec("indicator", (indicator,)),)),
        ),
        measures=(MeasureSpec("count", low=0, high=100_000, integral=True),),
        observation_attributes=1,
    )


def generate_covid(n_observations: int = 2000, scale: float = 0.2, seed: int = 0) -> StatisticalKG:
    """Generate the COVID-19 KG (deterministic for a given seed)."""
    return generate(covid_schema(scale), n_observations, seed=seed)
