"""Schema-faithful synthetic versions of the paper's evaluation datasets.

Each module defines the cube schema of one dataset from Table 3 (Eurostat
asylum applications, macro-economic Production, DBpedia Creative Works)
and a ``generate_*`` function producing a deterministic
:class:`~repro.qb.cube.StatisticalKG` at a chosen observation count and
member-pool scale.
"""

from .covid import covid_schema, generate_covid
from .dbpedia import dbpedia_schema, generate_dbpedia
from .eurostat import eurostat_schema, generate_eurostat
from .production import generate_production, production_schema
from .synthetic import generate, month_labels, numbered_labels, scaled, year_labels

__all__ = [
    "eurostat_schema",
    "generate_eurostat",
    "production_schema",
    "generate_production",
    "dbpedia_schema",
    "generate_dbpedia",
    "covid_schema",
    "generate_covid",
    "generate",
    "scaled",
    "year_labels",
    "month_labels",
    "numbered_labels",
]
