"""The Eurostat asylum-applications dataset (schema-faithful synthetic).

The paper's Eurostat KG records asylum applications to EU countries, with
dimensions Sex, Age Range, Reference Period (month → year), Country of
Origin (country → continent, country → economic region) and Country of
Destination (country → continent), and one measure (number of applicants).
Table 3 reports 9 levels and 373 dimension members, which this schema
reproduces exactly at ``scale=1.0``; the observation count scales
independently (the paper used ~15M — REOLAP's cost is independent of it,
which the Fig. 7 benchmark verifies).

The country pools are *shared* between Origin and Destination, so a
keyword like "Germany" legitimately resolves to members of two dimensions
— the ambiguity driving REOLAP's interpretation enumeration.
"""

from __future__ import annotations

from ..qb.cube import StatisticalKG
from ..qb.schema import CubeSchema, DimensionSpec, HierarchySpec, LevelSpec, MeasureSpec
from .synthetic import generate, month_labels, numbered_labels, scaled, year_labels

__all__ = ["eurostat_schema", "generate_eurostat", "COUNTRIES", "CONTINENTS"]

NAMESPACE = "http://example.org/eurostat/"

COUNTRIES = (
    "Germany", "France", "Italy", "Spain", "Poland", "Romania", "Netherlands",
    "Belgium", "Greece", "Portugal", "Sweden", "Hungary", "Austria", "Denmark",
    "Finland", "Norway", "Ireland", "Croatia", "Bulgaria", "Slovakia",
    "Lithuania", "Slovenia", "Latvia", "Estonia", "Cyprus", "Luxembourg",
    "Malta", "Iceland", "Switzerland", "United Kingdom", "Syria", "Afghanistan",
    "Iraq", "Iran", "Pakistan", "Nigeria", "Eritrea", "Somalia", "Sudan",
    "Ethiopia", "China", "India", "Bangladesh", "Sri Lanka", "Vietnam",
    "Russia", "Ukraine", "Turkey", "Georgia", "Armenia", "Albania", "Serbia",
    "Kosovo", "Bosnia", "Morocco", "Algeria", "Tunisia", "Libya", "Egypt",
    "Ghana", "Senegal", "Mali", "Guinea", "Ivory Coast", "Cameroon", "Congo",
    "Angola", "Kenya", "Uganda", "Rwanda", "Venezuela", "Colombia", "Brazil",
    "Peru", "Ecuador", "Bolivia", "Argentina", "Chile", "Mexico", "Haiti",
    "Cuba", "El Salvador", "Honduras", "Guatemala", "Nicaragua", "Jordan",
    "Lebanon", "Yemen", "Saudi Arabia", "Kuwait", "Qatar", "Nepal", "Myanmar",
    "Thailand", "Cambodia", "Laos", "Philippines", "Indonesia", "Malaysia",
    "Mongolia", "Kazakhstan", "Uzbekistan", "Tajikistan", "Kyrgyzstan",
    "Turkmenistan", "Azerbaijan", "Belarus", "Moldova", "North Macedonia",
    "Montenegro", "Japan",
)

CONTINENTS = ("Europe", "Asia", "Africa", "North America", "South America", "Oceania")

AGE_RANGES = ("0-13", "14-17", "18-34", "35-49", "50-64", "65-79", "80+", "Unknown Age")

SEXES = ("Male", "Female", "Total")


def quarter_labels(first_year: int, count: int) -> tuple[str, ...]:
    """Labels ``"Q1 2010", "Q2 2010", ...`` for a quarter level."""
    return tuple(f"Q{i % 4 + 1} {first_year + i // 4}" for i in range(count))


def eurostat_schema(scale: float = 1.0) -> CubeSchema:
    """The asylum-applications cube schema.

    At ``scale=1.0``: |D|=5, |M|=1, |L|=9 and |N_D|=373 (3 sexes + 8 age
    ranges + 120 months + 40 quarters + 10 years + 90 origin countries +
    6 continents + 90 destination countries + 6 continents, counted per
    level), matching Table 3's |L| and |N_D| exactly.  The paper counts
    |D|=4 and |H|=8 under its own (unstated) convention; we report ours
    (|D|=5, |H|=6 maximal chains).

    Origin and destination share one country/continent pool with identical
    sub-hierarchies, so the virtual-graph crawler discovers exactly the
    nine declared levels.
    """
    n_countries = scaled(90, scale)
    n_continents = scaled(6, min(1.0, scale), minimum=2)
    n_months = scaled(120, scale, minimum=12)
    n_years = max(2, n_months // 12)
    n_quarters = max(2, n_months // 3)
    n_ages = scaled(8, min(1.0, scale), minimum=2)
    n_sexes = scaled(3, min(1.0, scale), minimum=2)

    country = LevelSpec(
        "country", n_countries, pool="country",
        label_values=_cycle(COUNTRIES, n_countries),
    )
    continent = LevelSpec(
        "continent", n_continents, pool="continent",
        label_values=_cycle(CONTINENTS, n_continents),
    )
    month = LevelSpec("month", n_months, label_values=month_labels(2010, n_months))
    quarter = LevelSpec("quarter", n_quarters, label_values=quarter_labels(2010, n_quarters))
    year = LevelSpec("year", n_years, label_values=year_labels(2010, n_years))
    age = LevelSpec("age_range", n_ages, label_values=_cycle(AGE_RANGES, n_ages))
    sex = LevelSpec("sex", n_sexes, label_values=_cycle(SEXES, n_sexes))

    return CubeSchema(
        name="eurostat",
        namespace=NAMESPACE,
        dimensions=(
            DimensionSpec("sex", (HierarchySpec("sex", (sex,)),)),
            DimensionSpec("age", (HierarchySpec("age", (age,)),)),
            DimensionSpec(
                "ref_period",
                (
                    HierarchySpec("ref_period_year", (month, year), rollup_names=("in_year",)),
                    HierarchySpec("ref_period_quarter", (month, quarter), rollup_names=("in_quarter",)),
                ),
                predicate_name="ref_period",
            ),
            DimensionSpec(
                "citizen",
                (HierarchySpec("citizen_geo", (country, continent), rollup_names=("in_continent",)),),
                predicate_name="country_of_origin",
            ),
            DimensionSpec(
                "destination",
                (HierarchySpec("destination_geo", (country, continent), rollup_names=("in_continent",)),),
                predicate_name="country_of_destination",
            ),
        ),
        measures=(MeasureSpec("num_applicants", low=0, high=5000, integral=True),),
        # Eurostat is the triple-richest dataset in Fig. 6b: extra literal
        # attributes per observation reproduce that density.
        observation_attributes=4,
    )


def generate_eurostat(n_observations: int = 2000, scale: float = 1.0, seed: int = 0) -> StatisticalKG:
    """Generate the Eurostat KG (deterministic for a given seed)."""
    return generate(eurostat_schema(scale), n_observations, seed=seed)


def _cycle(labels: tuple[str, ...], count: int) -> tuple[str, ...]:
    """The first ``count`` labels, extending with numbered variants."""
    if count <= len(labels):
        return labels[:count]
    extra = tuple(f"{labels[i % len(labels)]} ({i // len(labels) + 1})" for i in range(len(labels), count))
    return labels + extra
