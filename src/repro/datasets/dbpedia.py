"""The DBpedia Creative-Works analytical view (schema-faithful synthetic).

The paper extracts an analytical view over DBpedia "describing songs
categorized by genre, artist, label, instrument, and director" with
|D|=5, |M|=1, |H|=14, |L|=23 and |N_D|=87160 (Table 3).  Two properties
make it the worst case of the evaluation:

* a large, heterogeneous member population (87k members vs. Eurostat's
  373), and
* **M-to-N hierarchy steps** — "a song can be associated with multiple
  genres"; here several rollup steps assign 2-3 parents per member, which
  blows up result sets in the Similarity-Search refinement (Section 7.1).

Dimensions also *share member pools* (the countries of artists and record
labels, the eras of genres and directors), reproducing the paper's remark
that DBpedia has "a high number of dimensions sharing similar values".

Defaults generate a scaled-down instance; ``scale=1.0`` reproduces the
full member counts (slow to build in pure Python, fine for parity runs).
"""

from __future__ import annotations

from ..qb.cube import StatisticalKG
from ..qb.schema import CubeSchema, DimensionSpec, HierarchySpec, LevelSpec, MeasureSpec
from .synthetic import generate, numbered_labels, scaled

__all__ = ["dbpedia_schema", "generate_dbpedia"]

NAMESPACE = "http://example.org/dbpedia/"

# Full-scale member counts per level; the artist level absorbs the
# remainder so that sum(level sizes over all dimension levels) == 87160.
_FULL_SIZES = {
    "genre": 1500,
    "supergenre": 150,
    "genre_family": 30,
    "era": 20,
    "market_segment": 10,
    "collective": 3000,
    "movement": 50,
    "kcountry": 120,
    "decade": 12,
    "parent_label": 1200,
    "conglomerate": 40,
    "record_label": 8000,
    "instrument": 300,
    "instrument_family": 40,
    "instrument_region": 25,
    "studio": 3000,
    "nationality": 120,
    "director": 30000,
}


def _artist_size(scale: float) -> int:
    """Artist level size making |N_D| hit 87160 at scale=1.0."""
    total_target = 87160
    # Level occurrences per dimension (shared pools count once per level).
    occurrences = {
        "genre": 1, "supergenre": 1, "genre_family": 1, "era": 2,
        "market_segment": 1, "collective": 1, "movement": 1, "kcountry": 2,
        "decade": 2, "parent_label": 1, "conglomerate": 2, "record_label": 1,
        "instrument": 1, "instrument_family": 1, "instrument_region": 1,
        "studio": 1, "nationality": 1, "director": 1,
    }
    others = sum(_FULL_SIZES[name] * count for name, count in occurrences.items())
    artist_full = total_target - others
    return scaled(artist_full, scale, minimum=5)


def dbpedia_schema(scale: float = 0.05) -> CubeSchema:
    """The Creative-Works cube: 5 dimensions, 14 hierarchies, 23 levels."""

    def level(name: str, pool: str | None = None, parents: int = 1,
              stem: str | None = None) -> LevelSpec:
        size = scaled(_FULL_SIZES[name], scale, minimum=2)
        return LevelSpec(
            name, size, pool=pool, parents_per_member=parents,
            label_values=numbered_labels(stem or name.replace("_", " ").title(), size),
        )

    # Shared pools: 'era' (genres & directors), 'kcountry' (artists &
    # labels), 'decade' (artists & labels), 'conglomerate' (labels & studios).
    genre = level("genre")
    supergenre = level("supergenre", parents=2)  # M-to-N: multi-genre parents
    genre_family = level("genre_family")
    genre_era = level("era", pool="era", stem="Era")
    segment = level("market_segment")

    artist = LevelSpec(
        "artist", _artist_size(scale),
        label_values=numbered_labels("Artist", _artist_size(scale)),
    )
    collective = level("collective", parents=2)  # artists in several bands
    movement = level("movement")
    artist_country = level("kcountry", pool="kcountry", stem="Country")
    artist_decade = level("decade", pool="decade", stem="Decade")

    record_label = level("record_label")
    parent_label = level("parent_label")
    conglomerate = level("conglomerate", pool="conglomerate")
    label_country = level("kcountry", pool="kcountry", stem="Country")
    label_decade = level("decade", pool="decade", stem="Decade")

    instrument = level("instrument")
    instrument_family = level("instrument_family")
    instrument_region = level("instrument_region")

    director = level("director")
    studio = level("studio", parents=2)  # directors work for several studios
    studio_conglomerate = level("conglomerate", pool="conglomerate")
    nationality = level("nationality")
    director_era = level("era", pool="era", stem="Era")

    return CubeSchema(
        name="dbpedia",
        namespace=NAMESPACE,
        dimensions=(
            DimensionSpec(
                "genre",
                (
                    HierarchySpec("genre_tree", (genre, supergenre, genre_family),
                                  rollup_names=("sub_genre_of", "in_family")),
                    HierarchySpec("genre_era", (genre, genre_era), rollup_names=("from_era",)),
                    HierarchySpec("genre_segment", (genre, segment), rollup_names=("in_segment",)),
                ),
            ),
            DimensionSpec(
                "artist",
                (
                    HierarchySpec("artist_groups", (artist, collective, movement),
                                  rollup_names=("member_of_band", "in_movement")),
                    HierarchySpec("artist_geo", (artist, artist_country), rollup_names=("born_in",)),
                    HierarchySpec("artist_time", (artist, artist_decade), rollup_names=("active_in",)),
                ),
            ),
            DimensionSpec(
                "record_label",
                (
                    HierarchySpec("label_tree", (record_label, parent_label, conglomerate),
                                  rollup_names=("owned_by", "part_of")),
                    HierarchySpec("label_geo", (record_label, label_country), rollup_names=("based_in",)),
                    HierarchySpec("label_time", (record_label, label_decade), rollup_names=("founded_in",)),
                ),
            ),
            DimensionSpec(
                "instrument",
                (
                    HierarchySpec("instrument_tree", (instrument, instrument_family),
                                  rollup_names=("in_instrument_family",)),
                    HierarchySpec("instrument_geo", (instrument, instrument_region),
                                  rollup_names=("originates_from",)),
                ),
            ),
            DimensionSpec(
                "director",
                (
                    HierarchySpec("director_studio", (director, studio, studio_conglomerate),
                                  rollup_names=("works_for", "part_of")),
                    HierarchySpec("director_geo", (director, nationality), rollup_names=("has_nationality",)),
                    HierarchySpec("director_time", (director, director_era), rollup_names=("from_era",)),
                ),
            ),
        ),
        measures=(MeasureSpec("duration_seconds", low=30, high=3600, integral=True),),
        observation_attributes=1,
    )


def generate_dbpedia(n_observations: int = 1000, scale: float = 0.05, seed: int = 0) -> StatisticalKG:
    """Generate the DBpedia Creative-Works KG (deterministic per seed)."""
    return generate(dbpedia_schema(scale), n_observations, seed=seed)
