"""The Production dataset (macro-economic production statistics).

The paper's Production KG records "macro-economic information about
materials, energy, and monetary production across 43 countries for more
than 160 industries, and 200 products or services" with |D|=7, |M|=1,
|L|=9 and |N_D|=6444 (Table 3).  This schema reproduces those
characteristics: seven dimensions (producing and consuming country,
industry, product, year, flow type, unit), with industry → sector,
product → product category, and country → world region hierarchies.

Producer and consumer countries share one member pool, so country keywords
are ambiguous across two dimensions, as in the real data.
"""

from __future__ import annotations

from ..qb.cube import StatisticalKG
from ..qb.schema import CubeSchema, DimensionSpec, HierarchySpec, LevelSpec, MeasureSpec
from .synthetic import generate, numbered_labels, scaled, year_labels

__all__ = ["production_schema", "generate_production", "PRODUCTION_COUNTRIES"]

NAMESPACE = "http://example.org/production/"

PRODUCTION_COUNTRIES = (
    "United States", "China", "Japan", "Germany", "India", "United Kingdom",
    "France", "Italy", "Brazil", "Canada", "Russia", "South Korea",
    "Australia", "Spain", "Mexico", "Indonesia", "Netherlands", "Turkey",
    "Saudi Arabia", "Switzerland", "Poland", "Belgium", "Sweden", "Argentina",
    "Norway", "Austria", "United Arab Emirates", "Nigeria", "Israel",
    "South Africa", "Ireland", "Denmark", "Singapore", "Malaysia",
    "Philippines", "Colombia", "Chile", "Finland", "Bangladesh", "Egypt",
    "Vietnam", "Portugal", "Czechia",
)

FLOW_TYPES = ("Production", "Import", "Export", "Consumption", "Stock Change")

UNITS = ("USD", "EUR", "Tonnes", "Megawatt Hours", "Cubic Metres", "Hours Worked")


def production_schema(scale: float = 1.0) -> CubeSchema:
    """The production-statistics cube schema.

    At ``scale=1.0``: |D|=7, |M|=1, |L|=9, |N_D|=6444 — 43 producer
    countries + 43 consumer countries + 2800 industries + 25 sectors +
    products + 60 categories + 30 years + 5 flow types + 6 units, with the
    product level sized so the member total hits Table 3's 6444 exactly.
    """
    n_countries = scaled(43, min(1.0, scale), minimum=3)
    n_industries = scaled(2800, scale, minimum=5)
    n_sectors = scaled(25, min(1.0, scale), minimum=2)
    n_categories = scaled(60, min(1.0, scale), minimum=2)
    n_years = scaled(30, min(1.0, scale), minimum=2)
    n_flows = scaled(5, min(1.0, scale), minimum=2)
    n_units = scaled(6, min(1.0, scale), minimum=2)
    if scale >= 1.0:
        # Size products so the member total hits Table 3's |N_D| = 6444.
        others = (2 * n_countries + n_industries + n_sectors
                  + n_categories + n_years + n_flows + n_units)
        n_products = 6444 - others
    else:
        n_products = scaled(3400, scale, minimum=5)

    country = LevelSpec(
        "country", n_countries, pool="country",
        label_values=_take(PRODUCTION_COUNTRIES, n_countries),
    )
    industry = LevelSpec("industry", n_industries, label_values=numbered_labels("Industry", n_industries))
    sector = LevelSpec("sector", n_sectors, label_values=numbered_labels("Sector", n_sectors))
    product = LevelSpec("product", n_products, label_values=numbered_labels("Product", n_products))
    category = LevelSpec("product_category", n_categories, label_values=numbered_labels("Category", n_categories))
    year = LevelSpec("year", n_years, label_values=year_labels(1990, n_years))
    flow = LevelSpec("flow_type", n_flows, label_values=_take(FLOW_TYPES, n_flows))
    unit = LevelSpec("unit", n_units, label_values=_take(UNITS, n_units))

    return CubeSchema(
        name="production",
        namespace=NAMESPACE,
        dimensions=(
            DimensionSpec(
                "producer",
                (HierarchySpec("producer_geo", (country,)),),
                predicate_name="producer_country",
            ),
            DimensionSpec(
                "consumer",
                (HierarchySpec("consumer_geo", (country,)),),
                predicate_name="consumer_country",
            ),
            DimensionSpec(
                "industry",
                (HierarchySpec("industry", (industry, sector), rollup_names=("in_sector",)),),
            ),
            DimensionSpec(
                "product",
                (HierarchySpec("product", (product, category), rollup_names=("in_category",)),),
            ),
            DimensionSpec("year", (HierarchySpec("year", (year,)),)),
            DimensionSpec("flow", (HierarchySpec("flow", (flow,)),), predicate_name="flow_type"),
            DimensionSpec("unit", (HierarchySpec("unit", (unit,)),)),
        ),
        measures=(MeasureSpec("amount", low=0, high=1_000_000, integral=False),),
        observation_attributes=0,
    )


def generate_production(n_observations: int = 2000, scale: float = 1.0, seed: int = 0) -> StatisticalKG:
    """Generate the Production KG (deterministic for a given seed)."""
    return generate(production_schema(scale), n_observations, seed=seed)


def _take(labels: tuple[str, ...], count: int) -> tuple[str, ...]:
    if count <= len(labels):
        return labels[:count]
    return labels + tuple(f"{labels[i % len(labels)]} ({i // len(labels) + 1})" for i in range(len(labels), count))
