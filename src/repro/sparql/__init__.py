"""SPARQL subset engine: parser, evaluator, and query builder.

This subpackage replaces the external triplestore's query processor.  It
parses SPARQL text into an AST (:mod:`repro.sparql.parser`), evaluates it
against any graph exposing the pattern-matching API
(:mod:`repro.sparql.eval`), and offers a programmatic builder used by
REOLAP's query generation (:mod:`repro.sparql.builder`).
"""

from .ast import (
    Aggregate,
    AlternativePath,
    Arithmetic,
    AskQuery,
    BindClause,
    BoolOp,
    Comparison,
    ConstructQuery,
    ExistsFilter,
    MinusPattern,
    OneOrMorePath,
    ZeroOrMorePath,
    Expression,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    InExpr,
    InversePath,
    NotExpr,
    OptionalPattern,
    OrderCondition,
    Projection,
    PropertyPath,
    Query,
    SelectQuery,
    SequencePath,
    TermExpr,
    TriplePattern,
    UnionPattern,
    ValuesClause,
)
from .aggregator import AggregatePlan, compile_aggregate, compile_aggregate_ex
from .batch import BatchStats, ask_bgp_batch, order_batch, simple_bgp
from .builder import SelectBuilder, agg, path, var
from .compiler import BGPPlan, compile_bgp
from .eval import Evaluator, evaluate_query
from .operators import WherePlan, compile_where
from .explain import PlanStep, QueryPlan, explain
from .expressions import ExpressionError, effective_boolean_value, evaluate
from .parser import parse_query
from .results import SERIALIZERS, ResultSet, to_csv, to_sparql_json, to_tsv

__all__ = [
    "parse_query",
    "Evaluator",
    "evaluate_query",
    "BGPPlan",
    "compile_bgp",
    "WherePlan",
    "compile_where",
    "AggregatePlan",
    "compile_aggregate",
    "compile_aggregate_ex",
    "BatchStats",
    "ask_bgp_batch",
    "order_batch",
    "simple_bgp",
    "explain",
    "QueryPlan",
    "PlanStep",
    "ResultSet",
    "SERIALIZERS",
    "to_csv",
    "to_sparql_json",
    "to_tsv",
    "SelectBuilder",
    "var",
    "path",
    "agg",
    "SelectQuery",
    "AskQuery",
    "ConstructQuery",
    "Query",
    "BindClause",
    "ExistsFilter",
    "MinusPattern",
    "OneOrMorePath",
    "ZeroOrMorePath",
    "GroupGraphPattern",
    "TriplePattern",
    "Projection",
    "Filter",
    "ValuesClause",
    "OptionalPattern",
    "UnionPattern",
    "OrderCondition",
    "Expression",
    "TermExpr",
    "Comparison",
    "Arithmetic",
    "BoolOp",
    "NotExpr",
    "FunctionCall",
    "InExpr",
    "Aggregate",
    "PropertyPath",
    "SequencePath",
    "InversePath",
    "AlternativePath",
    "ExpressionError",
    "evaluate",
    "effective_boolean_value",
]
