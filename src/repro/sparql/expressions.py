"""Expression evaluation with SPARQL error semantics.

Expressions are evaluated against a solution binding (``dict[Variable,
Node]``).  Type errors and unbound variables raise :class:`ExpressionError`
— SPARQL's "error" value — which FILTER treats as false and aggregates
skip, rather than aborting the query.
"""

from __future__ import annotations

import re
from typing import Mapping

from ..rdf.terms import (
    IRI,
    BNode,
    Literal,
    Node,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
)
from .ast import (
    Aggregate,
    Arithmetic,
    BoolOp,
    Comparison,
    Expression,
    FunctionCall,
    InExpr,
    NotExpr,
    TermExpr,
)

__all__ = [
    "ExpressionError",
    "evaluate",
    "apply_function",
    "effective_boolean_value",
    "term_compare",
]

Binding = Mapping[Variable, Node]

TRUE = Literal("true", datatype=XSD_BOOLEAN)
FALSE = Literal("false", datatype=XSD_BOOLEAN)


class ExpressionError(Exception):
    """SPARQL expression error: filters treat it as false."""


def _boolean(value: bool) -> Literal:
    return TRUE if value else FALSE


def _numeric(value: float | int) -> Literal:
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    return Literal(repr(value), datatype=XSD_DOUBLE)


def _as_number(term: Node) -> float:
    if isinstance(term, Literal):
        if term.is_numeric:
            return term.numeric_value()
        # Plain literals holding digits still compare numerically in many
        # endpoints; we stay strict and require a numeric datatype.
    raise ExpressionError(f"not a number: {term!r}")


def effective_boolean_value(term: Node) -> bool:
    """SPARQL EBV: booleans by value, numbers by non-zero, strings by length."""
    if isinstance(term, Literal):
        if term.datatype == XSD_BOOLEAN:
            return term.lexical in ("true", "1")
        if term.is_numeric:
            try:
                return term.numeric_value() != 0
            except ValueError as exc:
                raise ExpressionError(str(exc)) from exc
        if term.datatype is None or term.datatype.value.endswith("#string"):
            return len(term.lexical) > 0
    raise ExpressionError(f"no effective boolean value for {term!r}")


def term_compare(left: Node, right: Node, op: str) -> bool:
    """Compare two terms per SPARQL operator semantics.

    Equality/inequality are defined for all terms (RDF term equality, with
    numeric value equality for numeric literals).  Ordering requires
    compatible literals (both numeric, or both plain/string, or both the
    same datatype) and raises :class:`ExpressionError` otherwise.
    """
    if op in ("=", "!="):
        equal = _terms_equal(left, right)
        return equal if op == "=" else not equal
    # Ordering operators.
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left.is_numeric and right.is_numeric:
            lv, rv = left.numeric_value(), right.numeric_value()
        elif _string_like(left) and _string_like(right):
            lv, rv = left.lexical, right.lexical
        elif left.datatype == right.datatype and left.datatype is not None:
            lv, rv = left.lexical, right.lexical
        else:
            raise ExpressionError(f"incomparable literals {left!r} and {right!r}")
        if op == "<":
            return lv < rv
        if op == "<=":
            return lv <= rv
        if op == ">":
            return lv > rv
        if op == ">=":
            return lv >= rv
    raise ExpressionError(f"cannot order {left!r} and {right!r}")


def _string_like(literal: Literal) -> bool:
    return literal.datatype is None or literal.datatype.value.endswith("#string")


def _terms_equal(left: Node, right: Node) -> bool:
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left.is_numeric and right.is_numeric:
            return left.numeric_value() == right.numeric_value()
        return left == right
    return left == right


def evaluate(expression: Expression, binding: Binding) -> Node:
    """Evaluate ``expression`` under ``binding``; returns an RDF term.

    Raises :class:`ExpressionError` for unbound variables or type errors.
    """
    if isinstance(expression, TermExpr):
        term = expression.term
        if isinstance(term, Variable):
            value = binding.get(term)
            if value is None:
                raise ExpressionError(f"unbound variable {term.n3()}")
            return value
        return term
    if isinstance(expression, Comparison):
        left = evaluate(expression.left, binding)
        right = evaluate(expression.right, binding)
        return _boolean(term_compare(left, right, expression.op))
    if isinstance(expression, Arithmetic):
        left = _as_number(evaluate(expression.left, binding))
        right = _as_number(evaluate(expression.right, binding))
        return _numeric(_apply_arith(expression.op, left, right))
    if isinstance(expression, BoolOp):
        return _eval_bool_op(expression, binding)
    if isinstance(expression, NotExpr):
        inner = effective_boolean_value(evaluate(expression.operand, binding))
        return _boolean(not inner)
    if isinstance(expression, InExpr):
        return _eval_in(expression, binding)
    if isinstance(expression, FunctionCall):
        return _eval_function(expression, binding)
    if isinstance(expression, Aggregate):
        raise ExpressionError("aggregate outside of grouping context")
    raise ExpressionError(f"unsupported expression {expression!r}")


def _apply_arith(op: str, left: float, right: float) -> float | int:
    if op == "+":
        result = left + right
    elif op == "-":
        result = left - right
    elif op == "*":
        result = left * right
    else:
        if right == 0:
            raise ExpressionError("division by zero")
        result = left / right
    if isinstance(result, float) and result.is_integer() and op != "/":
        return int(result)
    return result


def _eval_bool_op(expression: BoolOp, binding: Binding) -> Literal:
    """Short-circuit && / || with SPARQL's error-tolerant semantics.

    ``true || error`` is true and ``false && error`` is false; an error
    only propagates when the other operands cannot decide the result.
    """
    is_and = expression.op == "&&"
    pending_error: ExpressionError | None = None
    for operand in expression.operands:
        try:
            value = effective_boolean_value(evaluate(operand, binding))
        except ExpressionError as exc:
            pending_error = exc
            continue
        if is_and and not value:
            return FALSE
        if not is_and and value:
            return TRUE
    if pending_error is not None:
        raise pending_error
    return TRUE if is_and else FALSE


def _eval_in(expression: InExpr, binding: Binding) -> Literal:
    needle = evaluate(expression.operand, binding)
    found = False
    for option in expression.options:
        candidate = evaluate(option, binding)
        if _terms_equal(needle, candidate):
            found = True
            break
    return _boolean(found != expression.negated)


def _eval_function(call: FunctionCall, binding: Binding) -> Node:
    name = call.name.upper()
    if name == "BOUND":
        arg = call.args[0]
        if not (isinstance(arg, TermExpr) and isinstance(arg.term, Variable)):
            raise ExpressionError("BOUND requires a variable")
        return _boolean(binding.get(arg.term) is not None)
    if name == "COALESCE":
        for arg in call.args:
            try:
                return evaluate(arg, binding)
            except ExpressionError:
                continue
        raise ExpressionError("COALESCE: all arguments errored")
    if name == "IF":
        condition = effective_boolean_value(evaluate(call.args[0], binding))
        return evaluate(call.args[1 if condition else 2], binding)

    args = [evaluate(a, binding) for a in call.args]
    return apply_function(name, args, call.name)


def apply_function(name: str, args: list[Node], display_name: str) -> Node:
    """Apply an already-evaluated, strict builtin function to term arguments.

    ``name`` must be upper-cased; ``display_name`` is the source spelling
    used in error messages.  Non-strict forms (BOUND, COALESCE, IF) never
    reach here — their callers dispatch before evaluating arguments.
    """
    first = args[0] if args else None
    if name == "STR":
        if isinstance(first, IRI):
            return Literal(first.value)
        if isinstance(first, Literal):
            return Literal(first.lexical)
        raise ExpressionError("STR of a blank node")
    if name == "LANG":
        if isinstance(first, Literal):
            return Literal(first.language or "")
        raise ExpressionError("LANG requires a literal")
    if name == "DATATYPE":
        if isinstance(first, Literal):
            if first.language is not None:
                return IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString")
            return first.datatype or IRI("http://www.w3.org/2001/XMLSchema#string")
        raise ExpressionError("DATATYPE requires a literal")
    if name in ("ISIRI", "ISURI"):
        return _boolean(isinstance(first, IRI))
    if name == "ISLITERAL":
        return _boolean(isinstance(first, Literal))
    if name == "ISBLANK":
        return _boolean(isinstance(first, BNode))
    if name == "ISNUMERIC":
        return _boolean(isinstance(first, Literal) and first.is_numeric)
    if name == "REGEX":
        text = _string_arg(args[0])
        pattern = _string_arg(args[1])
        flags = _string_arg(args[2]) if len(args) > 2 else ""
        re_flags = re.IGNORECASE if "i" in flags else 0
        try:
            return _boolean(re.search(pattern, text, re_flags) is not None)
        except re.error as exc:
            raise ExpressionError(f"invalid regex: {exc}") from exc
    if name == "ABS":
        value = abs(_as_number(first))
        # SPARQL ABS/CEIL/FLOOR/ROUND keep integral results integral.
        return _numeric(int(value) if value.is_integer() else value)
    if name in ("CEIL", "FLOOR", "ROUND"):
        import math

        value = _as_number(first)
        if name == "CEIL":
            return _numeric(math.ceil(value))
        if name == "FLOOR":
            return _numeric(math.floor(value))
        return _numeric(int(round(value)))
    if name == "STRLEN":
        return _numeric(len(_string_arg(first)))
    if name == "UCASE":
        return Literal(_string_arg(first).upper())
    if name == "LCASE":
        return Literal(_string_arg(first).lower())
    if name == "CONTAINS":
        return _boolean(_string_arg(args[1]) in _string_arg(args[0]))
    if name == "STRSTARTS":
        return _boolean(_string_arg(args[0]).startswith(_string_arg(args[1])))
    if name == "STRENDS":
        return _boolean(_string_arg(args[0]).endswith(_string_arg(args[1])))
    raise ExpressionError(f"unsupported function {display_name}")


def _string_arg(term: Node | None) -> str:
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, IRI):
        return term.value
    raise ExpressionError(f"expected string-valued term, got {term!r}")
