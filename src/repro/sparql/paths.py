"""Property path evaluation.

Evaluates SPARQL 1.1 property paths (sequence ``/``, inverse ``^``,
alternative ``|``) directly against a graph's pattern-matching API.  The
evaluator asks for all (subject, object) pairs connected by the path, with
either end optionally bound; direction of traversal is chosen by which end
is bound so bound-object lookups do not scan the store.
"""

from __future__ import annotations

from typing import Iterator, Union

from ..rdf.terms import IRI, Node
from .ast import (
    AlternativePath,
    InversePath,
    OneOrMorePath,
    PropertyPath,
    SequencePath,
    ZeroOrMorePath,
)

__all__ = ["eval_path", "path_first_predicates"]

PathLike = Union[IRI, PropertyPath]


def eval_path(
    graph, path: PathLike, s: Node | None, o: Node | None, deadline=None
) -> Iterator[tuple[Node, Node]]:
    """Yield (subject, object) pairs connected by ``path`` in ``graph``.

    ``s`` / ``o`` restrict the endpoints when bound.  Pairs are deduplicated,
    matching SPARQL's set semantics for path results.  ``deadline`` (a
    cooperative checker with a ``check()`` method) bounds closure and
    sequence traversals that may run long before yielding a single pair.
    """
    seen: set[tuple[Node, Node]] = set()
    for pair in _eval(graph, path, s, o, deadline):
        if pair not in seen:
            seen.add(pair)
            yield pair


def _eval(
    graph, path: PathLike, s: Node | None, o: Node | None, deadline=None
) -> Iterator[tuple[Node, Node]]:
    if isinstance(path, IRI):
        for triple in graph.triples(s, path, o):
            yield triple.s, triple.o
        return
    if isinstance(path, InversePath):
        for subj, obj in _eval(graph, path.step, o, s, deadline):
            yield obj, subj
        return
    if isinstance(path, AlternativePath):
        for option in path.options:
            yield from _eval(graph, option, s, o, deadline)
        return
    if isinstance(path, SequencePath):
        yield from _eval_sequence(graph, list(path.steps), s, o, deadline)
        return
    if isinstance(path, (OneOrMorePath, ZeroOrMorePath)):
        include_zero = isinstance(path, ZeroOrMorePath)
        yield from _eval_closure(graph, path.step, s, o, include_zero, deadline)
        return
    raise TypeError(f"unsupported path type {type(path).__name__}")


def _eval_closure(
    graph, step: PathLike, s: Node | None, o: Node | None, include_zero: bool,
    deadline=None,
) -> Iterator[tuple[Node, Node]]:
    """Transitive (``+``) / reflexive-transitive (``*``) closure by BFS.

    The zero-length case is restricted to nodes incident to the inner
    path (SPARQL's "all graph terms" zero-length semantics is unbounded
    and never useful over a statistical KG's hierarchies).
    """
    if s is not None:
        yield from ((s, target) for target in _reachable(graph, step, s, include_zero, True, deadline)
                    if o is None or target == o)
        return
    if o is not None:
        yield from ((source, o) for source in _reachable(graph, step, o, include_zero, False, deadline))
        return
    # Both ends free: start a forward BFS from every inner-path subject.
    starts: set[Node] = set()
    for subj, obj in _eval(graph, step, None, None, deadline):
        if deadline is not None:
            deadline.check()
        starts.add(subj)
        if include_zero:
            starts.add(obj)
    for start in starts:
        for target in _reachable(graph, step, start, include_zero, True, deadline):
            yield start, target


def _reachable(
    graph, step: PathLike, start: Node, include_zero: bool, forward: bool,
    deadline=None,
) -> list[Node]:
    found: list[Node] = [start] if include_zero else []
    seen: set[Node] = {start}
    frontier = [start]
    while frontier:
        if deadline is not None:
            deadline.check()
        node = frontier.pop()
        pairs = (
            _eval(graph, step, node, None, deadline)
            if forward else _eval(graph, step, None, node, deadline)
        )
        for subj, obj in pairs:
            # Per-edge, not just per-hop: one node with adversarial
            # fan-out must not blow past the request deadline while its
            # frontier entry is being expanded.  The checker is
            # stride-based, so this stays cheap on the hot path.
            if deadline is not None:
                deadline.check()
            neighbor = obj if forward else subj
            if neighbor not in seen:
                seen.add(neighbor)
                found.append(neighbor)
                frontier.append(neighbor)
            elif neighbor == start and not include_zero and start not in found:
                found.append(start)  # cycle back to the start counts for '+'
    return found


def _eval_sequence(
    graph, steps: list[PathLike], s: Node | None, o: Node | None, deadline=None
) -> Iterator[tuple[Node, Node]]:
    if len(steps) == 1:
        yield from _eval(graph, steps[0], s, o, deadline)
        return
    if s is not None or o is None:
        # Forward traversal: bind the first step, recurse on the rest.
        head, rest = steps[0], steps[1:]
        for subj, middle in _eval(graph, head, s, None, deadline):
            if deadline is not None:
                deadline.check()
            for _, obj in _eval_sequence(graph, rest, middle, o, deadline):
                yield subj, obj
        return
    # Only the object is bound: traverse backwards to avoid a full scan.
    front, tail = steps[:-1], steps[-1]
    for middle, obj in _eval(graph, tail, None, o, deadline):
        if deadline is not None:
            deadline.check()
        for subj, _ in _eval_sequence(graph, front, None, middle, deadline):
            yield subj, obj


def path_first_predicates(path: PathLike) -> list[IRI]:
    """The IRIs a path may start with, used for cardinality estimation."""
    if isinstance(path, IRI):
        return [path]
    if isinstance(path, InversePath):
        return path.iris()[:1] if path.iris() else []
    if isinstance(path, SequencePath):
        return path_first_predicates(path.steps[0])
    if isinstance(path, AlternativePath):
        result: list[IRI] = []
        for option in path.options:
            result.extend(path_first_predicates(option))
        return result
    if isinstance(path, (OneOrMorePath, ZeroOrMorePath)):
        return path_first_predicates(path.step)
    return []
