"""Register-level expression programs.

:mod:`.expressions` evaluates ASTs against decoded ``dict[Variable, Node]``
bindings — the term-space interpreter's native currency.  The compiled
engine works in flat integer-register rows, so evaluating a filter there
used to mean materializing a binding dict per row just to throw it away.

This module compiles an :class:`~.ast.Expression` once against a slot map
(variable → register index) into a closure tree that reads registers
directly and decodes ids through a caller-supplied codec — in practice the
memoized ``_ExecContext.decode``, so each distinct id is decoded at most
once per execution regardless of how many rows or expressions touch it.

Semantics match :func:`.expressions.evaluate` exactly: unbound variables
and type errors raise :class:`~.expressions.ExpressionError` (SPARQL's
"error" value), ``&&``/``||`` short-circuit error-tolerantly, and
BOUND/COALESCE/IF stay non-strict.  Variables absent from the slot map are
compiled to always-error closures — the register file is the single source
of truth for what can ever be bound.

The ``special`` hook lets the aggregator splice in closures for
:class:`~.ast.Aggregate` nodes (reading accumulator outputs instead of
registers); outside a grouping context aggregates error as usual.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from ..rdf.terms import Node, Variable
from .ast import (
    Aggregate,
    Arithmetic,
    BoolOp,
    Comparison,
    Expression,
    FunctionCall,
    InExpr,
    NotExpr,
    TermExpr,
)
from .expressions import (
    FALSE,
    ExpressionError,
    _apply_arith,
    _as_number,
    _boolean,
    _numeric,
    _terms_equal,
    apply_function,
    effective_boolean_value,
    term_compare,
)

__all__ = ["RegisterProgram", "compile_expression"]

Decode = Callable[[int], Node]
Fn = Callable[[Sequence[Optional[int]], Decode], Node]


class RegisterProgram:
    """A compiled expression over an integer-register row.

    ``fn(row, decode)`` returns an RDF term or raises
    :class:`ExpressionError`; ``slots`` lists the register indices the
    program reads (sorted), which the vectorized engine uses to pick
    distinct-value fast paths.
    """

    __slots__ = ("expression", "fn", "slots")

    def __init__(self, expression: Expression, fn: Fn, slots: tuple[int, ...]):
        self.expression = expression
        self.fn = fn
        self.slots = slots

    def __call__(self, row: Sequence[Optional[int]], decode: Decode) -> Node:
        return self.fn(row, decode)


def compile_expression(
    expression: Expression,
    slots: Mapping[Variable, int],
    special: Optional[Callable[[Expression], Optional[Fn]]] = None,
) -> RegisterProgram:
    """Compile ``expression`` against ``slots`` into a :class:`RegisterProgram`."""
    used: set[int] = set()
    fn = _compile(expression, slots, used, special)
    return RegisterProgram(expression, fn, tuple(sorted(used)))


def _raising(message: str) -> Fn:
    def fn(row, decode):
        raise ExpressionError(message)

    return fn


def _compile(
    expression: Expression,
    slots: Mapping[Variable, int],
    used: set[int],
    special: Optional[Callable[[Expression], Optional[Fn]]],
) -> Fn:
    if special is not None:
        hooked = special(expression)
        if hooked is not None:
            return hooked
    if isinstance(expression, TermExpr):
        term = expression.term
        if isinstance(term, Variable):
            slot = slots.get(term)
            if slot is None:
                return _raising(f"unbound variable {term.n3()}")
            used.add(slot)
            message = f"unbound variable {term.n3()}"

            def read(row, decode, slot=slot, message=message):
                tid = row[slot]
                if tid is None:
                    raise ExpressionError(message)
                return decode(tid)

            return read
        return lambda row, decode, term=term: term
    if isinstance(expression, Comparison):
        left = _compile(expression.left, slots, used, special)
        right = _compile(expression.right, slots, used, special)
        op = expression.op
        return lambda row, decode: _boolean(
            term_compare(left(row, decode), right(row, decode), op)
        )
    if isinstance(expression, Arithmetic):
        left = _compile(expression.left, slots, used, special)
        right = _compile(expression.right, slots, used, special)
        op = expression.op
        return lambda row, decode: _numeric(
            _apply_arith(op, _as_number(left(row, decode)), _as_number(right(row, decode)))
        )
    if isinstance(expression, BoolOp):
        operands = [_compile(o, slots, used, special) for o in expression.operands]
        is_and = expression.op == "&&"

        def bool_op(row, decode, operands=operands, is_and=is_and):
            pending_error: ExpressionError | None = None
            for operand in operands:
                try:
                    value = effective_boolean_value(operand(row, decode))
                except ExpressionError as exc:
                    pending_error = exc
                    continue
                if is_and and not value:
                    return _boolean(False)
                if not is_and and value:
                    return _boolean(True)
            if pending_error is not None:
                raise pending_error
            return _boolean(is_and)

        return bool_op
    if isinstance(expression, NotExpr):
        inner = _compile(expression.operand, slots, used, special)
        return lambda row, decode: _boolean(
            not effective_boolean_value(inner(row, decode))
        )
    if isinstance(expression, InExpr):
        needle = _compile(expression.operand, slots, used, special)
        options = [_compile(o, slots, used, special) for o in expression.options]
        negated = expression.negated

        def in_expr(row, decode, needle=needle, options=options, negated=negated):
            target = needle(row, decode)
            found = False
            for option in options:
                if _terms_equal(target, option(row, decode)):
                    found = True
                    break
            return _boolean(found != negated)

        return in_expr
    if isinstance(expression, FunctionCall):
        return _compile_function(expression, slots, used, special)
    if isinstance(expression, Aggregate):
        return _raising("aggregate outside of grouping context")
    return _raising(f"unsupported expression {expression!r}")


def _compile_function(
    call: FunctionCall,
    slots: Mapping[Variable, int],
    used: set[int],
    special: Optional[Callable[[Expression], Optional[Fn]]],
) -> Fn:
    name = call.name.upper()
    if name == "BOUND":
        arg = call.args[0]
        if not (isinstance(arg, TermExpr) and isinstance(arg.term, Variable)):
            return _raising("BOUND requires a variable")
        slot = slots.get(arg.term)
        if slot is None:
            return lambda row, decode: FALSE
        used.add(slot)
        return lambda row, decode, slot=slot: _boolean(row[slot] is not None)
    if name == "COALESCE":
        arg_fns = [_compile(a, slots, used, special) for a in call.args]

        def coalesce(row, decode, arg_fns=arg_fns):
            for fn in arg_fns:
                try:
                    return fn(row, decode)
                except ExpressionError:
                    continue
            raise ExpressionError("COALESCE: all arguments errored")

        return coalesce
    if name == "IF":
        condition = _compile(call.args[0], slots, used, special)
        then_fn = _compile(call.args[1], slots, used, special)
        else_fn = _compile(call.args[2], slots, used, special)

        def if_fn(row, decode):
            if effective_boolean_value(condition(row, decode)):
                return then_fn(row, decode)
            return else_fn(row, decode)

        return if_fn
    arg_fns = [_compile(a, slots, used, special) for a in call.args]
    display = call.name

    def strict(row, decode, name=name, arg_fns=arg_fns, display=display):
        args = [fn(row, decode) for fn in arg_fns]
        return apply_function(name, args, display)

    return strict
