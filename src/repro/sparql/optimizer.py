"""Selectivity-based join ordering for basic graph patterns.

Greedy plan: repeatedly pick the cheapest remaining triple pattern, where a
pattern's cost is its index cardinality with constants bound, discounted
when it shares variables with the patterns already planned (a join on a
bound variable is far more selective than a cartesian extension).  This is
the standard heuristic used by SPARQL engines without full statistics and
is the subject of the `optimizer` ablation benchmark.
"""

from __future__ import annotations

from ..rdf.terms import IRI, Variable
from .ast import PropertyPath, TriplePattern
from .paths import path_first_predicates

__all__ = ["order_patterns", "estimate_cardinality"]

# Discount applied per already-bound variable in a pattern; chosen so that a
# single shared variable beats a constant-only pattern of similar size.
_JOIN_DISCOUNT = 20.0


def estimate_cardinality(graph, pattern: TriplePattern) -> int:
    """Upper-bound match count for a pattern, using only constants."""
    s = pattern.s if not isinstance(pattern.s, Variable) else None
    o = pattern.o if not isinstance(pattern.o, Variable) else None
    predicate = pattern.p
    if isinstance(predicate, Variable):
        return graph.count(s, None, o)
    if isinstance(predicate, PropertyPath):
        firsts = path_first_predicates(predicate)
        if not firsts:
            return graph.count(None, None, None)
        # A path is at most as frequent as its first step(s); the object
        # constraint applies to the *last* step so it cannot be pushed here.
        return sum(graph.count(s, p, None) for p in firsts)
    return graph.count(s, predicate, o)


def order_patterns(
    graph, patterns: list[TriplePattern], bound: set[Variable] | None = None
) -> list[TriplePattern]:
    """Return ``patterns`` reordered for evaluation.

    ``bound`` holds variables already bound by earlier stages (VALUES or an
    enclosing pattern); patterns touching them are treated as selective.
    """
    remaining = list(patterns)
    bound_vars: set[Variable] = set(bound) if bound else set()
    ordered: list[TriplePattern] = []
    base_costs = {id(p): float(estimate_cardinality(graph, p)) for p in remaining}
    while remaining:
        best_index = 0
        best_cost = float("inf")
        for index, pattern in enumerate(remaining):
            cost = base_costs[id(pattern)]
            shared = len(pattern.variables() & bound_vars)
            cost = cost / (_JOIN_DISCOUNT ** shared)
            # Prefer patterns that join with what's bound over disconnected
            # ones of equal cost, to avoid cartesian products.
            if shared == 0 and bound_vars and pattern.variables():
                cost *= _JOIN_DISCOUNT
            if cost < best_cost:
                best_cost = cost
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound_vars |= chosen.variables()
    return ordered
