"""Selectivity-based join ordering for basic graph patterns.

Greedy plan: repeatedly pick the cheapest remaining triple pattern, where a
pattern's cost is the expected number of matches *per already-bound row*.
When the graph exposes the statistics catalog
(:meth:`~repro.store.graph.Graph.predicate_stats`), that expectation comes
from real per-predicate fanouts: a pattern whose subject is already bound
costs ``triples(p) / distinct_subjects(p)`` and so on.  Graphs without the
catalog — and patterns with variable or path predicates — fall back to the
classic fixed per-bound-variable discount.  All cardinalities come from
the store's incremental counters, so ordering is O(patterns²), not O(data).
"""

from __future__ import annotations

from ..rdf.terms import IRI, Variable
from .ast import PropertyPath, TriplePattern
from .paths import path_first_predicates

__all__ = ["order_patterns", "estimate_cardinality"]

# Fallback discount applied per already-bound variable in a pattern when no
# statistics catalog is available; chosen so that a single shared variable
# beats a constant-only pattern of similar size.
_JOIN_DISCOUNT = 20.0


def estimate_cardinality(graph, pattern: TriplePattern) -> int:
    """Upper-bound match count for a pattern, using only constants."""
    s = pattern.s if not isinstance(pattern.s, Variable) else None
    o = pattern.o if not isinstance(pattern.o, Variable) else None
    predicate = pattern.p
    if isinstance(predicate, Variable):
        return graph.count(s, None, o)
    if isinstance(predicate, PropertyPath):
        firsts = path_first_predicates(predicate)
        if not firsts:
            return graph.count(None, None, None)
        # A path is at most as frequent as its first step(s); the object
        # constraint applies to the *last* step so it cannot be pushed here.
        return sum(graph.count(s, p, None) for p in firsts)
    return graph.count(s, predicate, o)


def order_patterns(
    graph, patterns: list[TriplePattern], bound: set[Variable] | None = None
) -> list[TriplePattern]:
    """Return ``patterns`` reordered for evaluation.

    ``bound`` holds variables already bound by earlier stages (VALUES or an
    enclosing pattern); patterns touching them are treated as selective.
    """
    remaining = list(patterns)
    bound_vars: set[Variable] = set(bound) if bound else set()
    ordered: list[TriplePattern] = []
    base_costs = {id(p): float(estimate_cardinality(graph, p)) for p in remaining}
    stats_fn = getattr(graph, "predicate_stats", None)
    infinity = float("inf")
    while remaining:
        best_index = 0
        # Ties on per-row cost (common once fanouts reach ~1) break toward
        # the smaller base cardinality: cheaper to probe, fewer dead rows.
        best_key = (infinity, infinity)
        for index, pattern in enumerate(remaining):
            base = base_costs[id(pattern)]
            variables = pattern.variables()
            shared = variables & bound_vars
            if shared:
                cost = _expected_fanout(stats_fn, pattern, shared, base)
                if cost is None:
                    cost = base / (_JOIN_DISCOUNT ** len(shared))
            else:
                cost = base
                # Penalize disconnected patterns so joins with what's bound
                # come first, avoiding cartesian products.
                if bound_vars and variables:
                    cost *= _JOIN_DISCOUNT
            key = (cost, base)
            if key < best_key:
                best_key = key
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound_vars |= chosen.variables()
    return ordered


def _expected_fanout(stats_fn, pattern: TriplePattern, shared, base: float) -> float | None:
    """Expected matches per bound input row, from the statistics catalog.

    Each already-bound join variable divides the pattern's base cardinality
    by the predicate's distinct count on that side — e.g. a bound subject
    probing ``p`` is expected to match ``triples(p) / distinct_subjects(p)``
    objects.  Returns None (caller falls back to the fixed discount) when
    there is no catalog or the predicate is not a constant IRI.
    """
    if stats_fn is None or not isinstance(pattern.p, IRI):
        return None
    stats = None
    cost = base
    divided = False
    if isinstance(pattern.s, Variable) and pattern.s in shared:
        stats = stats_fn(pattern.p)
        cost /= max(stats.distinct_subjects, 1)
        divided = True
    if isinstance(pattern.o, Variable) and pattern.o in shared:
        if stats is None:
            stats = stats_fn(pattern.p)
        cost /= max(stats.distinct_objects, 1)
        divided = True
    return cost if divided else None
