"""Programmatic SPARQL query construction.

REOLAP's ``GetQuery`` step assembles queries from virtual-graph paths
rather than strings; this fluent builder is the API it uses.  Built queries
are plain AST objects, so they serialize with ``to_sparql()`` and round-trip
through the parser — a property the test suite checks for every generated
query.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..rdf.terms import IRI, Literal, Term, Variable, literal_from_python
from .ast import (
    Aggregate,
    Comparison,
    Expression,
    Filter,
    GroupGraphPattern,
    InExpr,
    OrderCondition,
    Projection,
    PropertyPath,
    SelectQuery,
    SequencePath,
    TermExpr,
    TriplePattern,
    ValuesClause,
)

__all__ = ["SelectBuilder", "path", "var", "agg"]


def var(name: str) -> Variable:
    """Shorthand for :class:`Variable`."""
    return Variable(name)


def path(*steps: IRI) -> IRI | SequencePath:
    """A sequence property path; collapses to the IRI for a single step."""
    if not steps:
        raise ValueError("path() requires at least one step")
    if len(steps) == 1:
        return steps[0]
    return SequencePath(tuple(steps))


def agg(func: str, variable: Variable | None = None, distinct: bool = False) -> Aggregate:
    """An aggregate expression over a variable (None = ``COUNT(*)``)."""
    arg = None if variable is None else TermExpr(variable)
    return Aggregate(func, arg, distinct=distinct)


class SelectBuilder:
    """Accumulates the pieces of a SELECT query, then :meth:`build`\\ s it.

    >>> q = (SelectBuilder()
    ...      .select(var("x"))
    ...      .where(var("x"), IRI("urn:p"), Literal("y"))
    ...      .build())
    >>> "SELECT ?x" in q.to_sparql()
    True
    """

    def __init__(self) -> None:
        self._projections: list[Projection] = []
        self._elements: list = []
        self._group_by: list[Variable] = []
        self._having: list[Expression] = []
        self._order_by: list[OrderCondition] = []
        self._limit: int | None = None
        self._offset: int | None = None
        self._distinct = False
        self._select_all = False

    # -- SELECT clause -----------------------------------------------------

    def select(self, *variables: Variable) -> "SelectBuilder":
        for variable in variables:
            self._projections.append(Projection(TermExpr(variable)))
        return self

    def select_expr(self, expression: Expression, alias: Variable) -> "SelectBuilder":
        self._projections.append(Projection(expression, alias))
        return self

    def select_agg(self, func: str, variable: Variable, alias: Variable, distinct: bool = False) -> "SelectBuilder":
        return self.select_expr(agg(func, variable, distinct), alias)

    def select_star(self) -> "SelectBuilder":
        self._select_all = True
        return self

    def distinct(self, enabled: bool = True) -> "SelectBuilder":
        self._distinct = enabled
        return self

    # -- WHERE clause --------------------------------------------------------

    def where(self, s, p, o) -> "SelectBuilder":
        """Add one triple pattern; ``p`` may be an IRI, variable, or path."""
        self._elements.append(TriplePattern(s, p, o))
        return self

    def where_path(self, s, steps: Sequence[IRI], o) -> "SelectBuilder":
        """Add a pattern whose predicate is the sequence path over ``steps``."""
        return self.where(s, path(*steps), o)

    def filter(self, expression: Expression) -> "SelectBuilder":
        self._elements.append(Filter(expression))
        return self

    def filter_equals(self, variable: Variable, value) -> "SelectBuilder":
        term = value if isinstance(value, Term) else literal_from_python(value)
        return self.filter(Comparison("=", TermExpr(variable), TermExpr(term)))

    def filter_in(self, variable: Variable, values: Iterable) -> "SelectBuilder":
        options = tuple(
            TermExpr(v if isinstance(v, Term) else literal_from_python(v)) for v in values
        )
        return self.filter(InExpr(TermExpr(variable), options))

    def filter_range(
        self, variable: Variable, low=None, high=None,
        low_inclusive: bool = True, high_inclusive: bool = True,
    ) -> "SelectBuilder":
        """Add a numeric range filter; either bound may be omitted."""
        if low is None and high is None:
            raise ValueError("filter_range requires at least one bound")
        if low is not None:
            term = low if isinstance(low, Term) else literal_from_python(low)
            op = ">=" if low_inclusive else ">"
            self.filter(Comparison(op, TermExpr(variable), TermExpr(term)))
        if high is not None:
            term = high if isinstance(high, Term) else literal_from_python(high)
            op = "<=" if high_inclusive else "<"
            self.filter(Comparison(op, TermExpr(variable), TermExpr(term)))
        return self

    def values(self, variables: Sequence[Variable], rows: Iterable[Sequence]) -> "SelectBuilder":
        prepared = tuple(
            tuple(
                None if cell is None else (cell if isinstance(cell, Term) else literal_from_python(cell))
                for cell in row
            )
            for row in rows
        )
        self._elements.append(ValuesClause(tuple(variables), prepared))
        return self

    # -- solution modifiers ----------------------------------------------------

    def group_by(self, *variables: Variable) -> "SelectBuilder":
        self._group_by.extend(variables)
        return self

    def having(self, expression: Expression) -> "SelectBuilder":
        self._having.append(expression)
        return self

    def order_by(self, expression: Expression | Variable, ascending: bool = True) -> "SelectBuilder":
        if isinstance(expression, Variable):
            expression = TermExpr(expression)
        self._order_by.append(OrderCondition(expression, ascending))
        return self

    def limit(self, count: int) -> "SelectBuilder":
        if count < 0:
            raise ValueError("LIMIT must be non-negative")
        self._limit = count
        return self

    def offset(self, count: int) -> "SelectBuilder":
        if count < 0:
            raise ValueError("OFFSET must be non-negative")
        self._offset = count
        return self

    # -- construction ----------------------------------------------------------

    def build(self) -> SelectQuery:
        return SelectQuery(
            projections=tuple(self._projections),
            where=GroupGraphPattern(tuple(self._elements)),
            distinct=self._distinct,
            group_by=tuple(self._group_by),
            having=tuple(self._having),
            order_by=tuple(self._order_by),
            limit=self._limit,
            offset=self._offset,
            select_all=self._select_all,
        )
