"""Query plan explanation.

``explain`` reports how the evaluator would execute a SELECT query's basic
graph pattern: the join order the optimizer chose and the per-pattern
cardinality estimates that drove it.  This is a diagnostic surface — the
runtime behaviour is unchanged — used when investigating slow generated
queries and by the optimizer ablation write-up.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import SelectQuery, TriplePattern
from .optimizer import estimate_cardinality, order_patterns
from .parser import parse_query

__all__ = ["PlanStep", "QueryPlan", "explain"]


@dataclass(frozen=True)
class PlanStep:
    """One BGP join step: the pattern, its estimate, and new bindings."""

    position: int
    pattern: TriplePattern
    estimated_cardinality: int
    binds: tuple[str, ...]

    def render(self) -> str:
        bound = ", ".join(f"?{name}" for name in self.binds) or "(nothing new)"
        return (
            f"{self.position}. {self.pattern.to_sparql()}  "
            f"[est. {self.estimated_cardinality} matches; binds {bound}]"
        )


@dataclass(frozen=True)
class QueryPlan:
    """The ordered join plan of one query's basic graph pattern."""

    steps: tuple[PlanStep, ...]
    optimized: bool

    def render(self) -> str:
        header = "join order (optimizer %s):" % ("on" if self.optimized else "off")
        return "\n".join([header] + ["  " + step.render() for step in self.steps])


def explain(graph, query: SelectQuery | str, optimize: bool = True) -> QueryPlan:
    """The BGP execution plan ``Evaluator`` would use for ``query``.

    Only the top-level group's triple patterns are planned (OPTIONAL /
    UNION sub-groups are planned independently at evaluation time).
    """
    if isinstance(query, str):
        parsed = parse_query(query)
        if not isinstance(parsed, SelectQuery):
            raise TypeError("explain() requires a SELECT query")
        query = parsed
    patterns = query.where.triple_patterns()
    ordered = order_patterns(graph, list(patterns)) if optimize and len(patterns) > 1 else list(patterns)
    steps = []
    bound: set[str] = set()
    for position, pattern in enumerate(ordered, start=1):
        fresh = tuple(
            sorted(v.name for v in pattern.variables() if v.name not in bound)
        )
        bound.update(fresh)
        steps.append(
            PlanStep(
                position=position,
                pattern=pattern,
                estimated_cardinality=estimate_cardinality(graph, pattern),
                binds=fresh,
            )
        )
    return QueryPlan(steps=tuple(steps), optimized=optimize)
