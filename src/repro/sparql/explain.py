"""Query plan explanation.

``explain`` reports how the evaluator would execute a SELECT query.  Two
layers are rendered:

* an ``engine:`` header saying which engine :class:`~repro.sparql.eval.
  Evaluator` would *really* use — ``compiled`` when the unified id-space
  operator pipeline accepts the query, ``term-space`` (with the decline
  reason) when it falls back — decided by running the actual compiler,
  not by re-implementing its rules;
* for compiled queries, the full physical plan tree: every operator
  (IndexScan/NestedProbe, Filter, ValuesBind, Bind, SubqueryScan,
  LeftJoin, Union, Exists, Minus, PathClosure) with its cardinality
  estimate where one exists, nested OPTIONAL/UNION/EXISTS/MINUS/
  subquery sub-pipelines indented beneath their parent, plus the
  AggregateFold and OrderLimit stages when the query has them.

The flat ``steps`` list (join order + per-pattern estimates over the
top-level group) is kept as the stable diagnostic surface used by the
optimizer ablation write-up.  This module never executes the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast import SelectQuery, TriplePattern
from .optimizer import estimate_cardinality, order_patterns
from .parser import parse_query

__all__ = ["PlanStep", "QueryPlan", "explain"]


@dataclass(frozen=True)
class PlanStep:
    """One BGP join step: the pattern, its estimate, and new bindings."""

    position: int
    pattern: TriplePattern
    estimated_cardinality: int
    binds: tuple[str, ...]

    def render(self) -> str:
        bound = ", ".join(f"?{name}" for name in self.binds) or "(nothing new)"
        return (
            f"{self.position}. {self.pattern.to_sparql()}  "
            f"[est. {self.estimated_cardinality} matches; binds {bound}]"
        )


@dataclass(frozen=True)
class QueryPlan:
    """The execution plan of one query: engine, operator tree, join order."""

    steps: tuple[PlanStep, ...]
    optimized: bool
    #: ``"compiled"`` or ``"term-space"`` — what the Evaluator would use.
    engine: str = "term-space"
    #: why compilation declined (None when ``engine == "compiled"``).
    decline_reason: str | None = None
    #: rendered physical-operator tree lines (empty for term-space plans).
    tree: tuple[str, ...] = field(default=())
    #: rendered batched-execution lines (empty for term-space plans).
    vectorized: tuple[str, ...] = field(default=())

    def render(self) -> str:
        if self.engine == "compiled":
            lines = ["engine: compiled"]
        else:
            reason = f" ({self.decline_reason})" if self.decline_reason else ""
            lines = [f"engine: term-space{reason}"]
        if self.tree:
            lines.append("physical plan:")
            lines.extend("  " + line for line in self.tree)
        if self.vectorized:
            lines.append("vectorized:")
            lines.extend("  " + line for line in self.vectorized)
        header = "join order (optimizer %s):" % ("on" if self.optimized else "off")
        lines.append(header)
        lines.extend("  " + step.render() for step in self.steps)
        return "\n".join(lines)


def _pipeline_lines(pipeline, indent: str = "") -> list[str]:
    """Render one GroupPipeline's operators, recursing into sub-plans.

    Uses the pipeline's representative schedule (empty entry mask), so
    filter placement shown here is the top-level one; nested groups may
    re-interleave filters per entry row at run time.
    """
    if pipeline.empty:
        return [f"{indent}EmptyGroup {pipeline.empty_pattern.to_sparql()}"
                "  [constant absent from graph]"]
    lines: list[str] = []
    for op in pipeline.display_ops():
        detail = op.describe()
        line = f"{indent}{op.kind}"
        if detail:
            line += f" {detail}"
        if op.estimate is not None:
            line += f"  [est. {op.estimate}]"
        lines.append(line)
        for label, child in op.children():
            lines.append(f"{indent}  {label}:")
            lines.extend(_pipeline_lines(child, indent + "    "))
    return lines


def _vectorized_lines(where_plan, batch_size, parallel) -> tuple[str, ...]:
    """Render what batched execution would do over ``where_plan``.

    Delegates to the vectorized engine's own static analyzer so explain
    never drifts from the real driver-selection and pushdown rules.
    """
    from .vectorized import analyze_plan

    info = analyze_plan(where_plan, batch_size=batch_size, parallel=parallel)
    lines = [
        f"backend {info['backend']}; batch size {info['batch_size']}; "
        f"parallel {info['parallel']}"
    ]
    if info["driver"] is None:
        lines.append("driver: (none — batches fall back per-row)")
    else:
        lines.append(f"driver: {info['driver']}  "
                     f"[~{info['morsels']} morsel(s)]")
    for pattern in info["pushed"]:
        lines.append(f"semi-join pushdown: {pattern}")
    return tuple(lines)


def _compiled_tree(graph, query: SelectQuery, optimize: bool,
                   batch_size=None, parallel=None):
    """(engine, reason, tree, vectorized lines) via the real compilers."""
    from .aggregator import compile_aggregate_ex
    from .operators import OrderLimit, compile_where

    if query.is_aggregate_query:
        plan, reason = compile_aggregate_ex(graph, query, optimize=optimize)
        if plan is None:
            return "term-space", reason, (), ()
        lines = _pipeline_lines(plan.body.root)
        keys = ", ".join(v.n3() for v in plan.group_vars) or "(single group)"
        lines.append(
            f"AggregateFold {len(plan.specs)} aggregates; keys {keys}"
        )
        where_plan = plan.body
    else:
        plan, reason = compile_where(graph, query.where, optimize=optimize)
        if plan is None:
            return "term-space", reason, (), ()
        lines = _pipeline_lines(plan.root)
        where_plan = plan
    vec = _vectorized_lines(where_plan, batch_size, parallel)
    if query.order_by:
        top_k = None
        if query.limit is not None:
            top_k = query.limit + (query.offset or 0)
        if not query.is_aggregate_query and query.distinct:
            # Solution-space top-k would truncate rows DISTINCT still needs.
            top_k = None
        order = OrderLimit(tuple(query.order_by), top_k)
        lines.append(f"OrderLimit {order.describe()}")
    return "compiled", None, tuple(lines), vec


def explain(
    graph,
    query: SelectQuery | str,
    optimize: bool = True,
    compile: bool = True,
    batch_size: int | None = None,
    parallel: int | None = None,
) -> QueryPlan:
    """The execution plan ``Evaluator`` would use for ``query``.

    ``optimize``/``compile`` mirror the Evaluator's flags, so the
    ``engine:`` header reflects what an identically configured evaluator
    does.  The flat join-order steps cover the top-level group's triple
    patterns; the physical plan tree covers the whole WHERE clause.
    ``batch_size``/``parallel`` feed the vectorized section: which scan
    drives morsels, how many morsels the store would split into, and
    which probes were pushed down as semi-join filters.
    """
    if isinstance(query, str):
        parsed = parse_query(query)
        if not isinstance(parsed, SelectQuery):
            raise TypeError("explain() requires a SELECT query")
        query = parsed
    if not isinstance(query, SelectQuery):
        raise TypeError("explain() requires a SELECT query")

    if compile:
        engine, reason, tree, vec = _compiled_tree(
            graph, query, optimize, batch_size=batch_size, parallel=parallel)
    else:
        engine, reason, tree, vec = "term-space", "compile-disabled", (), ()

    patterns = query.where.triple_patterns()
    ordered = order_patterns(graph, list(patterns)) if optimize and len(patterns) > 1 else list(patterns)
    steps = []
    bound: set[str] = set()
    for position, pattern in enumerate(ordered, start=1):
        fresh = tuple(
            sorted(v.name for v in pattern.variables() if v.name not in bound)
        )
        bound.update(fresh)
        steps.append(
            PlanStep(
                position=position,
                pattern=pattern,
                estimated_cardinality=estimate_cardinality(graph, pattern),
                binds=fresh,
            )
        )
    return QueryPlan(
        steps=tuple(steps),
        optimized=optimize,
        engine=engine,
        decline_reason=reason,
        tree=tree,
        vectorized=vec,
    )
