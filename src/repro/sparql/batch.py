"""Batched existence checks for BGPs that share evaluation prefixes.

REOLAP validates every candidate query by probing whether its WHERE clause
has at least one solution (Section 5.3).  Sibling candidates differ in a
few grouping levels but share most of their anchored patterns, so checking
them one ASK at a time re-joins the same prefix over and over.  This
module compiles each candidate BGP to id-space steps (:mod:`.compiler`)
and merges the step sequences into a **prefix trie**: two candidates whose
ordered patterns agree on a prefix produce byte-identical step tuples
(constants are ids, variables are first-occurrence register slots), so
they share trie nodes and the shared prefix is evaluated once per batch.

A single depth-first walk over the trie answers every candidate: a row of
register bindings that survives to a leaf proves that candidate non-empty,
and subtrees whose candidates are all proven are pruned.  Each node counts
how many times its step was probed, which is how tests (and the endpoint
statistics) observe the sharing.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import GroupGraphPattern, TriplePattern
from .compiler import compile_bgp, id_backend
from .eval import _Deadline
from .optimizer import estimate_cardinality, order_patterns

__all__ = ["BatchStats", "ask_bgp_batch", "order_batch", "simple_bgp"]


@dataclass
class BatchStats:
    """What one batched evaluation did, for observability and tests."""

    candidates: int = 0  #: BGPs merged into the trie
    total_steps: int = 0  #: sum of the candidates' step counts
    unique_steps: int = 0  #: trie nodes — steps actually represented
    probes: int = 0  #: step executions performed during the walk

    @property
    def steps_shared(self) -> int:
        """Steps deduplicated away by prefix sharing."""
        return self.total_steps - self.unique_steps


def simple_bgp(where: GroupGraphPattern) -> list[TriplePattern] | None:
    """The pattern list of a WHERE clause that is a pure conjunctive BGP.

    Returns None when the group holds anything besides triple patterns
    (filters, OPTIONAL, UNION, ...) or is empty — those queries take the
    ordinary evaluation path.
    """
    patterns: list[TriplePattern] = []
    for element in where.elements:
        if not isinstance(element, TriplePattern):
            return None
        patterns.append(element)
    return patterns or None


def order_batch(
    graph, bgps: list[list[TriplePattern]], optimize: bool = True
) -> list[list[TriplePattern]]:
    """Reorder each BGP to maximize trie sharing without losing selectivity.

    A pattern the candidates all agree on can only be shared if every
    candidate evaluates it at the same position — but running the join
    optimizer per candidate puts each candidate's *own* anchors first and
    destroys the common prefix.  So the patterns present in **every** BGP
    become a shared prefix, ordered most-selective-first (cheap via the
    statistics catalog), and only the candidate-specific remainder is
    optimizer-ordered, with the prefix variables counted as bound.
    """
    if len(bgps) < 2:
        return [order_patterns(graph, b) if optimize and len(b) > 1 else list(b) for b in bgps]
    seen: set[TriplePattern] = set()
    universal = []
    for pattern in bgps[0]:
        if pattern not in seen and all(pattern in other for other in bgps[1:]):
            seen.add(pattern)  # dedup: each shared pattern joins the prefix once
            universal.append(pattern)
    universal.sort(key=lambda p: (estimate_cardinality(graph, p), p.to_sparql()))
    prefix_vars = {v for p in universal for v in p.variables()}
    ordered: list[list[TriplePattern]] = []
    for patterns in bgps:
        rest = list(patterns)
        for shared in universal:
            rest.remove(shared)
        if optimize and len(rest) > 1:
            rest = order_patterns(graph, rest, bound=prefix_vars)
        ordered.append(universal + rest)
    return ordered


class _TrieNode:
    __slots__ = ("children", "leaves", "subtree", "probes")

    def __init__(self) -> None:
        self.children: dict[tuple, _TrieNode] = {}
        self.leaves: list[int] = []  # candidates whose BGP ends here
        self.subtree: list[int] = []  # candidates at or below this node
        self.probes = 0


def ask_bgp_batch(
    graph, bgps: list[list[TriplePattern]], timeout: float | None = None
) -> tuple[list[bool | None], BatchStats]:
    """Existence-check many *ordered* BGPs against one graph, at once.

    Returns one verdict per input BGP: True/False when the batch engine
    decided it, None when that BGP cannot be compiled (no id backend,
    property-path predicate) and the caller must fall back to a normal
    ASK.  Raises :class:`~repro.errors.QueryTimeoutError` when the shared
    walk exceeds ``timeout`` seconds.
    """
    stats = BatchStats()
    results: list[bool | None] = [None] * len(bgps)
    if id_backend(graph) is None:
        return results, stats

    root = _TrieNode()
    width = 0
    for index, patterns in enumerate(bgps):
        plan = compile_bgp(graph, patterns)
        if plan is None:
            continue  # caller falls back to the interpreter
        if plan.empty:
            results[index] = False  # an unseen constant: provably empty
            continue
        results[index] = False  # pending; flipped by the walk
        stats.candidates += 1
        stats.total_steps += len(plan.steps)
        width = max(width, plan.num_registers)
        node = root
        node.subtree.append(index)
        # Keyed on (step, eqs): a repeated-variable step (?x <p> ?x) has
        # the same positional tuple as a plain two-variable step, so the
        # equality pairs must be part of the node identity.
        for step, eqs in zip(plan.steps, plan.step_eqs):
            key = (step, eqs)
            child = node.children.get(key)
            if child is None:
                child = _TrieNode()
                node.children[key] = child
                stats.unique_steps += 1
            child.subtree.append(index)
            node = child
        node.leaves.append(index)

    if stats.candidates:
        _walk(graph, root, [None] * width, results, _Deadline(timeout))
        stats.probes = _sum_probes(root)
    return results, stats


def _walk(graph, root: _TrieNode, row: list, results: list, deadline) -> None:
    """One DFS over the trie proving candidates non-empty as rows survive.

    The row is a shared register file: step tuples encode their register
    slots, and two candidates only share a node when their slot layouts
    agree on the whole prefix, so a single row serves every branch.
    """
    _, index = id_backend(graph)
    match = index.match
    check = deadline.check

    def visit(node: _TrieNode, row: list) -> None:
        for leaf in node.leaves:
            results[leaf] = True  # a surviving row reached this candidate's end
        for (step, eqs), child in node.children.items():
            if all(results[i] for i in child.subtree):
                continue  # everything below is already proven
            child.probes += 1
            sc, ss, pc, ps, oc, os_ = step
            s = sc if ss is None else row[ss]
            p = pc if ps is None else row[ps]
            o = oc if os_ is None else row[os_]
            for sid, pid, oid in match(s, p, o):
                check()
                new = row.copy()
                if s is None:
                    new[ss] = sid
                if p is None:
                    new[ps] = pid
                if o is None:
                    new[os_] = oid
                if eqs and not all(new[a] == new[b] for a, b in eqs):
                    continue  # repeated-variable step: registers must agree
                visit(child, new)
                if all(results[i] for i in child.subtree):
                    break  # early exit: no open question below this child

    visit(root, row)


def _sum_probes(node: _TrieNode) -> int:
    total = node.probes
    for child in node.children.values():
        total += _sum_probes(child)
    return total
