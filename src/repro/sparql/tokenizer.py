"""Tokenizer for the SPARQL subset grammar.

Produces a flat list of :class:`Token` objects consumed by the
recursive-descent parser.  Keywords are recognized case-insensitively, as
required by the SPARQL specification.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import SPARQLSyntaxError

__all__ = ["Token", "tokenize"]

KEYWORDS = {
    "SELECT", "ASK", "DISTINCT", "REDUCED", "WHERE", "FILTER", "OPTIONAL",
    "UNION", "VALUES", "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC",
    "LIMIT", "OFFSET", "PREFIX", "BASE", "AS", "IN", "NOT", "UNDEF",
    "TRUE", "FALSE", "A", "FROM", "NAMED", "BIND", "EXISTS", "MINUS",
    "CONSTRUCT",
}

FUNCTIONS = {
    "STR", "LANG", "DATATYPE", "BOUND", "REGEX", "ABS", "CEIL", "FLOOR",
    "ROUND", "STRLEN", "UCASE", "LCASE", "CONTAINS", "STRSTARTS", "STRENDS",
    "ISLITERAL", "ISIRI", "ISURI", "ISBLANK", "ISNUMERIC", "COALESCE", "IF",
}

AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG", "SAMPLE", "GROUP_CONCAT"}

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<var>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<double>[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
  | (?P<decimal>[+-]?\d*\.\d+)
  | (?P<integer>[+-]?\d+)
  | (?P<bnode>_:[A-Za-z0-9_.-]+)
  | (?P<langtag>@[A-Za-z]{1,8}(?:-[A-Za-z0-9]{1,8})*)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<pname>[A-Za-z][\w-]*:[\w.%-]*|:[\w.%-]+)
  | (?P<punct>\^\^|&&|\|\||!=|<=|>=|[{}()\[\].;,/|^*=<>!+\-])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

# A word immediately followed by ':' forms a prefixed name, so words must be
# checked against the upcoming character.
_PNAME_AFTER_WORD_RE = re.compile(r":[\w.%-]*")


@dataclass(frozen=True)
class Token:
    """One lexical token: its kind, surface text, and source offset."""

    kind: str
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenize a SPARQL query string.

    Raises :class:`SPARQLSyntaxError` on any character outside the grammar.
    """
    tokens: list[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SPARQLSyntaxError(f"unexpected character {text[pos]!r}", pos)
        kind = match.lastgroup or ""
        value = match.group(0)
        start = pos
        pos = match.end()
        if kind in ("ws", "comment"):
            continue
        if kind == "word":
            pname_match = _PNAME_AFTER_WORD_RE.match(text, pos)
            if pname_match is not None:
                value = value + pname_match.group(0)
                pos = pname_match.end()
                tokens.append(Token("pname", value, start))
                continue
            upper = value.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, start))
            elif upper in FUNCTIONS:
                tokens.append(Token("function", upper, start))
            elif upper in AGGREGATES:
                tokens.append(Token("aggregate", upper, start))
            else:
                raise SPARQLSyntaxError(f"unknown identifier {value!r}", start)
            continue
        tokens.append(Token(kind, value, start))
    tokens.append(Token("eof", "", length))
    return tokens
