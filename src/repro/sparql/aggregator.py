"""Fused id-space GROUP BY / aggregation over the unified operator pipeline.

Every query the paper's workloads actually run — REOLAP candidates,
refinement probes, the figure benchmarks — is an aggregate ``SELECT …
GROUP BY`` over observations.  The physical-operator layer
(:mod:`repro.sparql.operators`) streams id-space register rows for *any*
supported WHERE body — plain BGPs, OPTIONAL drill-downs, UNION'd
interpretation candidates, VALUES-bound member lists, property-path
closures — and this module folds those rows into groups without ever
materializing a solution list:

* **hash-group on register tuples** — the group key is a tuple of integer
  ids read straight out of the pipeline's register file (``None`` for
  unbound keys); the dictionary is bijective, so id-tuple grouping equals
  term-tuple grouping with none of the decoding;
* **streaming accumulators** — COUNT/SUM/AVG/MIN/MAX/SAMPLE/GROUP_CONCAT
  fold each row into small per-group state as the pipeline produces it
  (DISTINCT variants keep a per-group id-set), so no solution list is
  ever materialized;
* **memoized decode** — SUM/AVG decode each *distinct* literal id to its
  numeric value once per execution (MIN/MAX memoize sort keys,
  GROUP_CONCAT lexical forms); group keys are decoded once per group, at
  the projection boundary.

:func:`compile_aggregate_ex` lowers a qualifying query into an
:class:`AggregatePlan` — operator pipeline → fused aggregation → HAVING —
and returns ``(None, reason)`` for everything else, which keeps the
term-space ``_aggregate`` path as the semantics-preserving fallback.  A
query qualifies when:

* its WHERE clause compiles under :func:`repro.sparql.operators
  .compile_where` — which now takes BIND, FILTER [NOT] EXISTS, MINUS
  and subqueries, so bodies holding them fuse too; the remaining
  declines (with their reason strings) are exotic path shapes and
  graphs without an id backend;
* GROUP BY keys are plain variables (unbound keys are fine: they group
  under a ``None`` component, exactly like the term-space path);
* every aggregate in the projections and HAVING clauses takes either no
  argument (``COUNT(*)``) or a bare variable — the shapes REOLAP and the
  refinement operators generate.

Error semantics mirror the term-space evaluator exactly: rows whose
aggregate argument is unbound are skipped (which also covers OPTIONAL- and
UNION-introduced unbound registers), a non-numeric value makes SUM/AVG
error (projection → ``None``, HAVING → group dropped), GROUP_CONCAT errors
on blank nodes, and empty groups error for MIN/MAX/SAMPLE.

Plans depend on the graph's id assignment, so the serving cache's
``plans`` tier stores them under the same ``(query, graph uid, epoch)``
identity discipline as compiled WHERE plans.
"""

from __future__ import annotations

from ..rdf.terms import IRI, Literal, Node, Variable, XSD_INTEGER
from .ast import (
    Aggregate,
    Arithmetic,
    BoolOp,
    Comparison,
    Expression,
    FunctionCall,
    InExpr,
    NotExpr,
    SelectQuery,
    TermExpr,
)
from .expressions import ExpressionError, effective_boolean_value
from .operators import _ExecContext, compile_where
from .rexpr import compile_expression

__all__ = ["AggregatePlan", "compile_aggregate", "compile_aggregate_ex"]


class _AggError:
    """Sentinel carried by an accumulator whose aggregate errored.

    Stored instead of a term so one errored aggregate does not abort the
    whole group: projections render it as ``None``, HAVING drops the
    group — SPARQL's expression-error semantics.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<aggregate error>"


_ERROR = _AggError()


def _number_literal(value: float) -> Literal:
    from .eval import _number_literal as _impl

    return _impl(value)


# --------------------------------------------------------------------------
# Streaming accumulators
#
# Each accumulator consumes the integer id bound to its argument variable
# (None when unbound — the row is skipped, matching the term-space engine's
# skip-on-argument-error rule) and produces an RDF term, or the _ERROR
# sentinel, at group finalization.  Decoding is shared across groups
# through the execution-wide memos owned by _ExecState.
# --------------------------------------------------------------------------


class _ExecState:
    """Per-execution decode memos shared by every group's accumulators."""

    __slots__ = ("decode", "terms", "numbers", "strings", "sort_keys")

    def __init__(self, decode):
        self.decode = decode  # TermDictionary.decode
        self.terms: dict[int, Node] = {}
        self.numbers: dict[int, object] = {}
        self.strings: dict[int, object] = {}
        self.sort_keys: dict[int, tuple] = {}

    def term(self, term_id: int) -> Node:
        term = self.terms.get(term_id)
        if term is None:
            term = self.decode(term_id)
            self.terms[term_id] = term
        return term

    def number(self, term_id: int):
        value = self.numbers.get(term_id)
        if value is None:
            term = self.term(term_id)
            if isinstance(term, Literal) and term.is_numeric:
                # A NaN literal raises ValueError here, exactly as the
                # term-space path's numeric_value() call does.
                value = term.numeric_value()
            else:
                value = _ERROR
            self.numbers[term_id] = value
        return value

    def string(self, term_id: int):
        value = self.strings.get(term_id)
        if value is None:
            term = self.term(term_id)
            if isinstance(term, Literal):
                value = term.lexical
            elif isinstance(term, IRI):
                value = term.value
            else:
                value = _ERROR  # GROUP_CONCAT over a blank node errors
            self.strings[term_id] = value
        return value

    def sort_key(self, term_id: int) -> tuple:
        key = self.sort_keys.get(term_id)
        if key is None:
            key = self.term(term_id).sort_key()
            self.sort_keys[term_id] = key
        return key


class _CountAll:
    """COUNT(*) — counts group members; DISTINCT is a no-op, exactly as in
    the term-space path (COUNT(*) never sees per-row values to dedup)."""

    __slots__ = ("n",)

    def __init__(self, state, distinct=False):
        self.n = 0

    def add(self, value_id) -> None:
        self.n += 1

    def add_batch(self, ids, total, state) -> bool:
        self.n += total
        return True

    def finish(self, state):
        return Literal(str(self.n), datatype=XSD_INTEGER)


class _Count:
    __slots__ = ("n", "seen")

    def __init__(self, state, distinct=False):
        self.n = 0
        self.seen = set() if distinct else None

    def add(self, value_id) -> None:
        if value_id is None:
            return
        if self.seen is not None:
            self.seen.add(value_id)
        else:
            self.n += 1

    def add_batch(self, ids, total, state) -> bool:
        if ids is None or not len(ids):
            return True
        if self.seen is not None:
            self.seen.update(ids.tolist())
        else:
            self.n += int(len(ids))
        return True

    def finish(self, state):
        n = len(self.seen) if self.seen is not None else self.n
        return Literal(str(n), datatype=XSD_INTEGER)


class _Sum:
    """SUM / AVG.  Non-distinct folds in row order; DISTINCT keeps ids in
    first-occurrence order (insertion-ordered dict) and folds at finish,
    so float summation order matches the term-space engine's exactly."""

    __slots__ = ("total", "n", "errored", "seen", "average", "state")

    def __init__(self, state, distinct=False, average=False):
        self.total = 0.0
        self.n = 0
        self.errored = False
        self.seen = {} if distinct else None
        self.average = average
        self.state = state

    def add(self, value_id) -> None:
        if value_id is None or self.errored:
            return
        if self.seen is not None:
            self.seen[value_id] = None
            return
        value = self.state.number(value_id)
        if value is _ERROR:
            self.errored = True
            return
        self.total += value
        self.n += 1

    def add_batch(self, ids, total, state) -> bool:
        """Bulk fold, exact only: distinct ids accumulate by first
        occurrence; non-distinct sums vectorize as value × multiplicity
        when every distinct value is an exact integer and the running
        total plus the batch's absolute mass stays below 2**53 (then
        every float addition the sequential fold would perform is exact,
        so addition is order-free), otherwise the caller replays the
        rows in order — mid-stream switching is sound because everything
        already folded was exact."""
        import numpy as _np  # only reached from the numpy batch path

        if self.errored or ids is None or not len(ids):
            return True
        if self.seen is not None:
            uniq, first = _np.unique(ids, return_index=True)
            for j in _np.argsort(first, kind="stable").tolist():
                self.seen[int(uniq[j])] = None
            return True
        number = self.state.number
        uniq, counts = _np.unique(ids, return_counts=True)
        delta = 0
        delta_abs = 0
        try:
            for term_id, count in zip(uniq.tolist(), counts.tolist()):
                value = number(term_id)
                if value is _ERROR:
                    self.errored = True
                    return True
                if abs(value) >= 2 ** 53 or not float(value).is_integer():
                    return False
                ivalue = int(value)
                delta += ivalue * count
                delta_abs += abs(ivalue) * count
        except (OverflowError, TypeError):
            return False
        # Grouping v*c is only order-free while every float addition stays
        # exact.  The sequential fold's intermediates are bounded by
        # |total| + Σ|v|·c, so that bound (plus an integer-valued running
        # total — a replayed inexact batch poisons associativity) below
        # 2**53 pins batched == tuple bit-for-bit; otherwise replay rows.
        if not self.total.is_integer():
            return False
        if abs(self.total) + delta_abs >= 2 ** 53:
            return False
        self.total += delta
        self.n += int(len(ids))
        return True

    def finish(self, state):
        if self.seen is not None:
            for value_id in self.seen:
                value = state.number(value_id)
                if value is _ERROR:
                    return _ERROR
                self.total += value
                self.n += 1
        elif self.errored:
            return _ERROR
        if self.average:
            if not self.n:
                return Literal("0", datatype=XSD_INTEGER)
            return _number_literal(self.total / self.n)
        return _number_literal(self.total)


class _MinMax:
    """Single-pass MIN/MAX over term sort keys.

    Tie handling replicates the stable full sort the term-space engine
    performs: MIN keeps the first minimal value, MAX the last maximal one.
    With DISTINCT, "last" means the value whose *first occurrence* is
    latest — repeats of an already-seen id are ignored, mirroring the
    first-occurrence dedup that precedes the sort.
    """

    __slots__ = ("best", "best_key", "is_max", "seen", "state")

    def __init__(self, state, distinct=False, is_max=False):
        self.best = None
        self.best_key = None
        self.is_max = is_max
        self.seen = set() if distinct else None
        self.state = state

    def add(self, value_id) -> None:
        if value_id is None:
            return
        if self.seen is not None:
            if value_id in self.seen:
                return
            self.seen.add(value_id)
        key = self.state.sort_key(value_id)
        if self.best is None:
            self.best, self.best_key = value_id, key
        elif self.is_max:
            if key >= self.best_key:
                self.best, self.best_key = value_id, key
        elif key < self.best_key:
            self.best, self.best_key = value_id, key

    def add_batch(self, ids, total, state) -> bool:
        """Bulk min/max over per-distinct sort keys, replicating the
        sequential tie rules: MIN keeps the earliest minimal value, MAX
        the latest maximal one.  DISTINCT ties depend on global first
        occurrences, so that mode replays rows instead."""
        import numpy as _np

        if ids is None or not len(ids):
            return True
        if self.seen is not None:
            return False
        sort_key = self.state.sort_key
        if self.is_max:
            # last occurrence = len - 1 - first occurrence in the reverse
            uniq, rev_first = _np.unique(ids[::-1], return_index=True)
            best = best_key = None
            best_pos = -1
            for j, term_id in enumerate(uniq.tolist()):
                key = sort_key(term_id)
                pos = int(len(ids)) - 1 - int(rev_first[j])
                if best is None or key > best_key or (
                        key == best_key and pos > best_pos):
                    best, best_key, best_pos = term_id, key, pos
            if self.best is None or best_key >= self.best_key:
                self.best, self.best_key = best, best_key
        else:
            uniq, first = _np.unique(ids, return_index=True)
            best = best_key = None
            best_pos = -1
            for j, term_id in enumerate(uniq.tolist()):
                key = sort_key(term_id)
                pos = int(first[j])
                if best is None or key < best_key or (
                        key == best_key and pos < best_pos):
                    best, best_key, best_pos = term_id, key, pos
            if self.best is None or best_key < self.best_key:
                self.best, self.best_key = best, best_key
        return True

    def finish(self, state):
        if self.best is None:
            return _ERROR  # MIN/MAX over an empty group
        return state.term(self.best)


class _Sample:
    __slots__ = ("first",)

    def __init__(self, state, distinct=False):
        self.first = None

    def add(self, value_id) -> None:
        if self.first is None and value_id is not None:
            self.first = value_id

    def add_batch(self, ids, total, state) -> bool:
        if self.first is None and ids is not None and len(ids):
            self.first = int(ids[0])
        return True

    def finish(self, state):
        if self.first is None:
            return _ERROR  # SAMPLE over an empty group
        return state.term(self.first)


class _GroupConcat:
    __slots__ = ("parts", "errored", "seen", "state")

    def __init__(self, state, distinct=False):
        self.parts: list[str] = []
        self.errored = False
        self.seen = set() if distinct else None
        self.state = state

    def add(self, value_id) -> None:
        if value_id is None or self.errored:
            return
        if self.seen is not None:
            if value_id in self.seen:
                return
            self.seen.add(value_id)
        part = self.state.string(value_id)
        if part is _ERROR:
            self.errored = True
            return
        self.parts.append(part)

    def add_batch(self, ids, total, state) -> bool:
        """String concatenation stays a row loop, but over a per-batch
        decoded string table (one decode per distinct id)."""
        import numpy as _np

        if self.errored or ids is None or not len(ids):
            return True
        string = self.state.string
        table = {
            term_id: string(term_id) for term_id in _np.unique(ids).tolist()
        }
        seen = self.seen
        parts = self.parts
        for term_id in ids.tolist():
            if seen is not None:
                if term_id in seen:
                    continue
                seen.add(term_id)
            part = table[term_id]
            if part is _ERROR:
                self.errored = True
                return True
            parts.append(part)
        return True

    def finish(self, state):
        if self.errored:
            return _ERROR
        return Literal(" ".join(self.parts))


#: func → (accumulator class, extra kwargs)
_ACCUMULATORS = {
    "COUNT": (_Count, {}),
    "SUM": (_Sum, {}),
    "AVG": (_Sum, {"average": True}),
    "MIN": (_MinMax, {}),
    "MAX": (_MinMax, {"is_max": True}),
    "SAMPLE": (_Sample, {}),
    "GROUP_CONCAT": (_GroupConcat, {}),
}


# --------------------------------------------------------------------------
# Output programs: projections / HAVING over finished accumulators
# --------------------------------------------------------------------------


class _Program:
    """One projection or HAVING expression, pre-analyzed at compile time.

    ``kind`` picks the per-group fast path: ``"agg"`` reads one finished
    aggregate, ``"key"`` reads one group-key id and decodes it through
    the execution memo, ``"general"`` runs a register-level expression
    program (:mod:`repro.sparql.rexpr`) over a synthetic row of
    ``key ids + finished aggregate values`` — aggregate reads are
    spliced in through the compiler's ``special`` hook, so no AST is
    rebuilt per group and no key-binding dict is ever constructed.
    """

    __slots__ = ("kind", "index", "variable", "expression", "program")

    def __init__(self, kind, index=None, variable=None, expression=None,
                 program=None):
        self.kind = kind
        self.index = index
        self.variable = variable
        self.expression = expression
        self.program = program

    def run(self, agg_values: list, key: tuple, state: "_ExecState") -> Node:
        if self.kind == "agg":
            value = agg_values[self.index]
            if value is _ERROR:
                raise ExpressionError("aggregate evaluation errored")
            return value
        if self.kind == "key":
            term_id = key[self.index]
            if term_id is None:
                raise ExpressionError(f"unbound variable {self.variable.n3()}")
            return state.term(term_id)
        return self.program(list(key) + agg_values, state.term)


def _collect_aggregates(
    expression: Expression, specs: list[Aggregate], index: dict
) -> bool:
    """Register the aggregates inside ``expression``; False if unsupported.

    Supported aggregate shapes: no argument (``COUNT(*)``) or a bare
    variable.  Anything else — computed arguments like ``SUM(?a * ?b)`` —
    declines the whole query to the term-space path.
    """
    if isinstance(expression, Aggregate):
        if expression.arg is not None and not (
            isinstance(expression.arg, TermExpr)
            and isinstance(expression.arg.term, Variable)
        ):
            return False
        if expression not in index:
            index[expression] = len(specs)
            specs.append(expression)
        return True
    if isinstance(expression, (Comparison, Arithmetic)):
        return _collect_aggregates(expression.left, specs, index) and \
            _collect_aggregates(expression.right, specs, index)
    if isinstance(expression, BoolOp):
        return all(_collect_aggregates(o, specs, index) for o in expression.operands)
    if isinstance(expression, NotExpr):
        return _collect_aggregates(expression.operand, specs, index)
    if isinstance(expression, FunctionCall):
        return all(_collect_aggregates(a, specs, index) for a in expression.args)
    if isinstance(expression, InExpr):
        return _collect_aggregates(expression.operand, specs, index) and all(
            _collect_aggregates(o, specs, index) for o in expression.options
        )
    return True


def _program_for(expression: Expression, index: dict,
                 group_vars: tuple[Variable, ...]) -> _Program:
    if isinstance(expression, Aggregate):
        return _Program("agg", index=index[expression])
    if isinstance(expression, TermExpr) and isinstance(expression.term, Variable) \
            and expression.term in group_vars:
        return _Program("key", index=group_vars.index(expression.term),
                        variable=expression.term)
    # General expression: compile against a synthetic row laid out as
    # [key ids..., finished aggregate values...].  Group keys read like
    # registers (ids decoded through the execution memo); aggregate
    # nodes splice in closures reading the already-finished value.
    slots = {variable: i for i, variable in enumerate(group_vars)}
    base = len(group_vars)

    def special(expr, base=base, agg_index=index):
        if not isinstance(expr, Aggregate):
            return None
        position = base + agg_index[expr]

        def read_aggregate(row, decode, position=position):
            value = row[position]
            if value is _ERROR:
                raise ExpressionError("aggregate evaluation errored")
            return value

        return read_aggregate

    program = compile_expression(expression, slots, special=special)
    return _Program("general", expression=expression, program=program)


# --------------------------------------------------------------------------
# Plan compilation
# --------------------------------------------------------------------------


def compile_aggregate_ex(graph, query: SelectQuery, optimize: bool = True):
    """Lower a qualifying aggregate SELECT into an :class:`AggregatePlan`.

    Returns ``(plan, None)`` on success and ``(None, reason)`` whenever
    any qualifying rule (see the module docstring) fails; callers fall
    back to the term-space aggregation path, which handles the full
    language, and can feed the reason string into the endpoint's
    per-decline tally.
    """
    if not isinstance(query, SelectQuery) or not query.is_aggregate_query:
        return None, "not-aggregate"
    if query.select_all:
        return None, "select-all"
    for variable in query.group_by:
        if not isinstance(variable, Variable):
            return None, "group-key-expression"

    specs: list[Aggregate] = []
    index: dict[Aggregate, int] = {}
    for projection in query.projections:
        if not _collect_aggregates(projection.expression, specs, index):
            return None, "aggregate-argument"
    for having in query.having:
        if not _collect_aggregates(having, specs, index):
            return None, "aggregate-argument"
    try:
        variables = [p.variable for p in query.projections]
    except ValueError:
        # Aliasing error: let the term-space path raise it.
        return None, "projection-alias"

    body, reason = compile_where(graph, query.where, optimize=optimize)
    if body is None:
        return None, reason

    projection_programs = tuple(
        _program_for(p.expression, index, query.group_by) for p in query.projections
    )
    having_programs = tuple(
        _program_for(h, index, query.group_by) for h in query.having
    )
    plan = AggregatePlan(
        body=body,
        group_vars=tuple(query.group_by),
        specs=tuple(specs),
        projection_programs=projection_programs,
        having_programs=having_programs,
        variables=variables,
    )
    return plan, None


def compile_aggregate(graph, query: SelectQuery, optimize: bool = True):
    """Plan-or-``None`` wrapper over :func:`compile_aggregate_ex`."""
    plan, _reason = compile_aggregate_ex(graph, query, optimize=optimize)
    return plan


class AggregatePlan:
    """An executable fused pipeline + group-by + aggregate plan.

    ``body`` is the compiled :class:`repro.sparql.operators.WherePlan` for
    the query's WHERE clause — FILTER placement, OPTIONAL/UNION/VALUES and
    property-path closure all live inside it; this class only folds its
    register rows.  Plans are immutable after construction and hold no
    per-execution state, so they are safe to cache and share across
    threads; each :meth:`execute` builds its own accumulators and decode
    memos.
    """

    __slots__ = (
        "body", "group_vars", "key_slots", "specs", "builders",
        "projection_programs", "having_programs", "variables",
    )

    def __init__(self, body, group_vars, specs,
                 projection_programs, having_programs, variables):
        self.body = body
        self.group_vars = group_vars
        # Group-key registers; None = variable never bound by the body, so
        # its key component is always None (SPARQL keeps such groups).
        self.key_slots = tuple(body.slots.get(v) for v in group_vars)
        self.specs = specs
        # (class, value slot or None, kwargs) per accumulator.  A variable
        # the body never binds behaves as always-unbound: every row's
        # argument errors and is skipped (slot None).
        self.builders = tuple(self._builder(spec, body) for spec in specs)
        self.projection_programs = projection_programs
        self.having_programs = having_programs
        self.variables = variables

    @staticmethod
    def _builder(spec: Aggregate, body):
        if spec.arg is None:
            return (_CountAll, None, {})
        cls, extra = _ACCUMULATORS[spec.func]
        kwargs = dict(extra)
        if spec.distinct:
            kwargs["distinct"] = True
        return (cls, body.slots.get(spec.arg.term), kwargs)

    def _new_group(self, state):
        """Fresh accumulators for one group, paired with their feeders.

        Returns ``(accumulators, feeders)`` where feeders are prebound
        ``(add_method, slot)`` pairs — the accumulation loop then costs one
        method call per aggregate per row with no per-row introspection.
        """
        accumulators = [
            cls(state, **kwargs) for cls, _slot, kwargs in self.builders
        ]
        feeders = [
            (acc.add, slot)
            for acc, (_cls, slot, _kwargs) in zip(accumulators, self.builders)
        ]
        return accumulators, feeders

    def execute(self, deadline, vec=None) -> tuple[list[tuple], list[Variable]]:
        """Run the fused pipeline; returns ``(rows, variables)``.

        With ``vec`` (a :class:`repro.sparql.vectorized.VecConfig`) the
        body executes batched and groups fold through the accumulators'
        bulk entry points; otherwise rows stream tuple-at-a-time.  The
        caller (``Evaluator.select``) applies DISTINCT, ORDER BY with
        the bounded top-k heap, and OFFSET/LIMIT — identically for fused
        and term-space results.
        """
        # Decoding goes through the execution context's codec: it
        # intercepts plan-local pseudo-ids (negative) before they can
        # reach the dictionary — so VALUES/path constants never seen by
        # the graph still decode correctly — and additionally covers ids
        # minted *during* the run (BIND results, subquery cells).
        groups: dict[tuple, tuple[list, list]] = {}
        check = deadline.check

        if vec is not None:
            state = self._fold_batched(deadline, vec, groups)
        else:
            ctx = _ExecContext(self.body, deadline)
            state = _ExecState(ctx.decode)
            rows_iter, _ctx = self.body.rows_stream(deadline, ctx)
            key_slots = self.key_slots
            get_group = groups.get
            for row in rows_iter:
                check()
                key = tuple(
                    None if slot is None else row[slot] for slot in key_slots
                )
                entry = get_group(key)
                if entry is None:
                    entry = self._new_group(state)
                    groups[key] = entry
                for add, slot in entry[1]:
                    add(None if slot is None else row[slot])

        if not groups and not self.group_vars:
            # SPARQL: with no GROUP BY there is exactly one group, even
            # over zero solutions (COUNT(*) = 0, SUM = 0, MIN errors, ...).
            groups[()] = self._new_group(state)

        out_rows: list[tuple] = []
        for key, (accumulators, _feeders) in groups.items():
            check()
            agg_values = [acc.finish(state) for acc in accumulators]
            keep = True
            for program in self.having_programs:
                try:
                    value = program.run(agg_values, key, state)
                    if not effective_boolean_value(value):
                        keep = False
                        break
                except ExpressionError:
                    keep = False
                    break
            if not keep:
                continue
            row_out = []
            for program in self.projection_programs:
                try:
                    row_out.append(program.run(agg_values, key, state))
                except ExpressionError:
                    row_out.append(None)
            out_rows.append(tuple(row_out))
        return out_rows, list(self.variables)

    def _fold_batched(self, deadline, vec, groups) -> "_ExecState":
        """Consume batched body execution, folding whole column segments.

        Single-key (or keyless) grouping with numpy partitions each
        batch by key id — groups are created in first-occurrence order,
        matching the streaming dict — and feeds each accumulator its
        bound-id segment in row order.  Multi-key grouping, list-backed
        columns and the no-numpy backend fold row-wise straight from the
        batch columns instead (still batch-produced upstream).

        Builds (and returns) the decode state over the batch run's own
        execution context, so ids minted during the run decode.
        """
        from .vectorized import UNBOUND, _VecCtx, _np, collect_batches

        vctx = _VecCtx(self.body, deadline, vec)
        state = _ExecState(vctx.tctx.decode)
        check = deadline.check
        key_slots = self.key_slots
        for batch in collect_batches(self.body, deadline, vec, vctx):
            check()
            fast = _np is not None and len(key_slots) <= 1
            if fast:
                for col in batch.cols:
                    if isinstance(col, list):
                        fast = False
                        break
            if not fast:
                self._fold_batch_rows(batch, state, groups, check)
                continue
            col = None
            if key_slots and key_slots[0] is not None:
                col = batch.cols[key_slots[0]]
            if col is None:
                key = (None,) if key_slots else ()
                segments = [(key, None)]
            else:
                uniq, first, inverse = _np.unique(
                    col, return_index=True, return_inverse=True
                )
                if len(uniq) == 1:
                    kid = int(uniq[0])
                    segments = [((None if kid == UNBOUND else kid,), None)]
                else:
                    order = _np.argsort(inverse, kind="stable")
                    bounds = _np.searchsorted(
                        inverse[order], _np.arange(len(uniq) + 1)
                    )
                    segments = []
                    for j in _np.argsort(first, kind="stable").tolist():
                        kid = int(uniq[j])
                        segments.append((
                            (None if kid == UNBOUND else kid,),
                            order[bounds[j]:bounds[j + 1]],
                        ))
            for key, rows_idx in segments:
                entry = groups.get(key)
                if entry is None:
                    entry = self._new_group(state)
                    groups[key] = entry
                accumulators, feeders = entry
                total = batch.n if rows_idx is None else int(len(rows_idx))
                for acc, (add, slot) in zip(accumulators, feeders):
                    ids = None
                    if slot is not None:
                        vcol = batch.cols[slot]
                        if vcol is not None:
                            sub = vcol if rows_idx is None else vcol[rows_idx]
                            ids = sub[sub != UNBOUND]
                    if not acc.add_batch(ids, total, state):
                        # exact ordered fold for this accumulator only
                        for term_id in ids.tolist():
                            add(term_id)
        return state

    def _fold_batch_rows(self, batch, state, groups, check) -> None:
        """Row-wise fold directly from batch columns (slow-group path)."""
        from .vectorized import UNBOUND

        key_slots = self.key_slots
        needed = {slot for slot in key_slots if slot is not None}
        needed.update(
            slot for _cls, slot, _kwargs in self.builders if slot is not None
        )
        lists = {}
        for slot in needed:
            col = batch.cols[slot]
            if col is None:
                lists[slot] = None
            elif isinstance(col, list):
                lists[slot] = col
            else:
                lists[slot] = col.tolist()

        def cell(slot, i):
            vals = lists[slot]
            if vals is None:
                return None
            value = vals[i]
            return None if value == UNBOUND else value

        get_group = groups.get
        for i in range(batch.n):
            check()
            key = tuple(
                None if slot is None else cell(slot, i) for slot in key_slots
            )
            entry = get_group(key)
            if entry is None:
                entry = self._new_group(state)
                groups[key] = entry
            for add, slot in entry[1]:
                add(None if slot is None else cell(slot, i))

    def __repr__(self) -> str:
        return (
            f"<AggregatePlan {self.body.num_slots} registers, "
            f"{len(self.group_vars)} keys, {len(self.specs)} aggregates>"
        )
