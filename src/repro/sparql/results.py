"""Query result containers and wire-format serializers.

A :class:`ResultSet` is what ``SELECT`` evaluation returns: an ordered list
of output variables and one row per solution, each row a tuple of terms (or
``None`` for unbound positions, e.g. from OPTIONAL).  It supports
column access, conversion to dictionaries, and pretty-printing — the pieces
the exploration session and the benchmark harness need to present results
the way the paper's Tables do.

The module also hosts the standard SPARQL result serializations shared by
the HTTP front-end (:mod:`repro.server`) and the CLI ``--format`` flag:

* :func:`to_sparql_json` — SPARQL 1.1 Query Results JSON
  (``application/sparql-results+json``), for SELECT result sets and ASK
  booleans alike;
* :func:`to_csv` — SPARQL 1.1 Query Results CSV (``text/csv``): plain
  lexical values, RFC 4180 quoting, CRLF row terminators;
* :func:`to_tsv` — SPARQL 1.1 Query Results TSV
  (``text/tab-separated-values``): terms in SPARQL surface syntax.

:data:`SERIALIZERS` maps each format's media type to its writer so content
negotiation is a dictionary lookup.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterator, Sequence

from ..rdf.terms import BNode, IRI, Literal, Node, Variable

__all__ = [
    "ResultSet",
    "Row",
    "SERIALIZERS",
    "binding_json",
    "to_csv",
    "to_sparql_json",
    "to_tsv",
]

Row = tuple  # tuple[Node | None, ...]


class ResultSet:
    """SELECT query results: variables plus rows of terms."""

    __slots__ = ("variables", "rows")

    def __init__(self, variables: Sequence[Variable], rows: Sequence[Row]):
        self.variables = list(variables)
        width = len(self.variables)
        for row in rows:
            if len(row) != width:
                raise ValueError(
                    f"row width {len(row)} does not match {width} variables"
                )
        self.rows = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ResultSet)
            and other.variables == self.variables
            and sorted(other.rows, key=_row_key) == sorted(self.rows, key=_row_key)
        )

    def index_of(self, variable: Variable | str) -> int:
        """Column index of a variable; raises KeyError when absent."""
        if isinstance(variable, str):
            variable = Variable(variable)
        try:
            return self.variables.index(variable)
        except ValueError:
            raise KeyError(f"no variable {variable.n3()} in result set") from None

    def column(self, variable: Variable | str) -> list[Node | None]:
        """All values of one output variable, in row order."""
        idx = self.index_of(variable)
        return [row[idx] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Node | None]]:
        """Rows as ``{variable name: term}`` dictionaries."""
        names = [v.name for v in self.variables]
        return [dict(zip(names, row)) for row in self.rows]

    def to_python(self) -> list[dict[str, Any]]:
        """Rows as dictionaries of native Python values (literals converted)."""
        converted = []
        for mapping in self.to_dicts():
            converted.append(
                {
                    key: (value.to_python() if isinstance(value, Literal) else value)
                    for key, value in mapping.items()
                }
            )
        return converted

    def pretty(self, max_rows: int | None = 20) -> str:
        """A fixed-width table rendering, for examples and logs."""
        headers = [v.n3() for v in self.variables]
        shown = self.rows if max_rows is None else self.rows[:max_rows]
        body = [
            ["" if value is None else _cell(value) for value in row] for row in shown
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in body
        )
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<ResultSet: {len(self.rows)} rows x {len(self.variables)} vars>"


def _cell(value: Node) -> str:
    if isinstance(value, Literal):
        return value.lexical
    return getattr(value, "local_name", value.n3)()


def _row_key(row: Row) -> tuple:
    return tuple(
        ((0,) if value is None else (1,) + value.sort_key()) for value in row
    )


# -- wire-format serializers -------------------------------------------------


def binding_json(term: Node) -> dict[str, str]:
    """One term in SPARQL 1.1 JSON results encoding."""
    if isinstance(term, IRI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        encoded: dict[str, str] = {"type": "literal", "value": term.lexical}
        if term.language is not None:
            encoded["xml:lang"] = term.language
        elif term.datatype is not None:
            encoded["datatype"] = term.datatype.value
        return encoded
    raise TypeError(f"cannot serialize {type(term).__name__} as a binding")


def to_sparql_json(result: "ResultSet | bool") -> str:
    """SPARQL 1.1 Query Results JSON for a SELECT result set or ASK verdict.

    Unbound cells are omitted from their binding object, per the spec.
    """
    if isinstance(result, bool):
        return json.dumps({"head": {}, "boolean": result})
    bindings = []
    names = [variable.name for variable in result.variables]
    for row in result.rows:
        bindings.append(
            {
                name: binding_json(value)
                for name, value in zip(names, row)
                if value is not None
            }
        )
    document = {"head": {"vars": names}, "results": {"bindings": bindings}}
    return json.dumps(document)


def _csv_field(value: Node | None) -> str:
    """CSV cell per the SPARQL 1.1 CSV rules: plain values, RFC 4180 quoting."""
    if value is None:
        return ""
    if isinstance(value, IRI):
        text = value.value
    elif isinstance(value, BNode):
        text = f"_:{value.label}"
    else:
        text = value.lexical
    if any(ch in text for ch in (",", '"', "\n", "\r")):
        return '"' + text.replace('"', '""') + '"'
    return text


def to_csv(result: "ResultSet | bool") -> str:
    """SPARQL 1.1 Query Results CSV: lexical values, CRLF-terminated rows.

    ASK verdicts (which the CSV spec leaves undefined) are written as a
    one-column ``boolean`` table holding ``true`` or ``false``.
    """
    if isinstance(result, bool):
        return f"boolean\r\n{'true' if result else 'false'}\r\n"
    lines = [",".join(variable.name for variable in result.variables)]
    lines.extend(
        ",".join(_csv_field(value) for value in row) for row in result.rows
    )
    return "\r\n".join(lines) + "\r\n"


def to_tsv(result: "ResultSet | bool") -> str:
    """SPARQL 1.1 Query Results TSV: terms in SPARQL surface syntax.

    ASK verdicts are written the same way as in :func:`to_csv`.
    """
    if isinstance(result, bool):
        return f"?boolean\n{'true' if result else 'false'}\n"
    lines = ["\t".join(variable.n3() for variable in result.variables)]
    lines.extend(
        "\t".join("" if value is None else value.n3() for value in row)
        for row in result.rows
    )
    return "\n".join(lines) + "\n"


#: media type → (writer, charset-qualified Content-Type) for SELECT/ASK
#: results; the content-negotiation table shared by the server and the CLI.
SERIALIZERS: dict[str, tuple[Callable[["ResultSet | bool"], str], str]] = {
    "application/sparql-results+json": (
        to_sparql_json, "application/sparql-results+json"),
    "application/json": (to_sparql_json, "application/sparql-results+json"),
    "text/csv": (to_csv, "text/csv; charset=utf-8"),
    "text/tab-separated-values": (
        to_tsv, "text/tab-separated-values; charset=utf-8"),
}
