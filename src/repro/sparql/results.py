"""Query result containers.

A :class:`ResultSet` is what ``SELECT`` evaluation returns: an ordered list
of output variables and one row per solution, each row a tuple of terms (or
``None`` for unbound positions, e.g. from OPTIONAL).  It supports
column access, conversion to dictionaries, and pretty-printing — the pieces
the exploration session and the benchmark harness need to present results
the way the paper's Tables do.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from ..rdf.terms import Literal, Node, Variable

__all__ = ["ResultSet", "Row"]

Row = tuple  # tuple[Node | None, ...]


class ResultSet:
    """SELECT query results: variables plus rows of terms."""

    __slots__ = ("variables", "rows")

    def __init__(self, variables: Sequence[Variable], rows: Sequence[Row]):
        self.variables = list(variables)
        width = len(self.variables)
        for row in rows:
            if len(row) != width:
                raise ValueError(
                    f"row width {len(row)} does not match {width} variables"
                )
        self.rows = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ResultSet)
            and other.variables == self.variables
            and sorted(other.rows, key=_row_key) == sorted(self.rows, key=_row_key)
        )

    def index_of(self, variable: Variable | str) -> int:
        """Column index of a variable; raises KeyError when absent."""
        if isinstance(variable, str):
            variable = Variable(variable)
        try:
            return self.variables.index(variable)
        except ValueError:
            raise KeyError(f"no variable {variable.n3()} in result set") from None

    def column(self, variable: Variable | str) -> list[Node | None]:
        """All values of one output variable, in row order."""
        idx = self.index_of(variable)
        return [row[idx] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Node | None]]:
        """Rows as ``{variable name: term}`` dictionaries."""
        names = [v.name for v in self.variables]
        return [dict(zip(names, row)) for row in self.rows]

    def to_python(self) -> list[dict[str, Any]]:
        """Rows as dictionaries of native Python values (literals converted)."""
        converted = []
        for mapping in self.to_dicts():
            converted.append(
                {
                    key: (value.to_python() if isinstance(value, Literal) else value)
                    for key, value in mapping.items()
                }
            )
        return converted

    def pretty(self, max_rows: int | None = 20) -> str:
        """A fixed-width table rendering, for examples and logs."""
        headers = [v.n3() for v in self.variables]
        shown = self.rows if max_rows is None else self.rows[:max_rows]
        body = [
            ["" if value is None else _cell(value) for value in row] for row in shown
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in body
        )
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<ResultSet: {len(self.rows)} rows x {len(self.variables)} vars>"


def _cell(value: Node) -> str:
    if isinstance(value, Literal):
        return value.lexical
    return getattr(value, "local_name", value.n3)()


def _row_key(row: Row) -> tuple:
    return tuple(
        ((0,) if value is None else (1,) + value.sort_key()) for value in row
    )
