"""Recursive-descent parser for the SPARQL subset.

Covers the features statistical-KG analytics needs (and that REOLAP's
generated queries use): SELECT / ASK, basic graph patterns with property
paths (``/``, ``^``, ``|``), FILTER expressions, OPTIONAL, UNION, VALUES,
GROUP BY with the standard aggregates, HAVING, ORDER BY, LIMIT / OFFSET,
DISTINCT, and PREFIX declarations.
"""

from __future__ import annotations

import re

from ..errors import SPARQLSyntaxError
from ..rdf.namespace import RDF
from ..rdf.terms import (
    IRI,
    BNode,
    Literal,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
)
from .ast import (
    Aggregate,
    AlternativePath,
    Arithmetic,
    AskQuery,
    BindClause,
    BoolOp,
    Comparison,
    ConstructQuery,
    ExistsFilter,
    Expression,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    InExpr,
    InversePath,
    MinusPattern,
    NotExpr,
    OneOrMorePath,
    OptionalPattern,
    OrderCondition,
    Projection,
    PropertyPath,
    Query,
    SelectQuery,
    SequencePath,
    SubSelect,
    TermExpr,
    TriplePattern,
    UnionPattern,
    ValuesClause,
    ZeroOrMorePath,
)
from .tokenizer import Token, tokenize

__all__ = ["parse_query", "SPARQLParser"]

_STRING_UNESCAPES = {"\\\\": "\\", '\\"': '"', "\\'": "'", "\\n": "\n", "\\r": "\r", "\\t": "\t"}


def parse_query(text: str) -> Query:
    """Parse a SPARQL query string into an AST."""
    return SPARQLParser(text).parse()


class SPARQLParser:
    """Stateful parser over a token list; one instance per query string."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0
        self.prefixes: dict[str, str] = {}

    # -- token plumbing ----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.index + ahead, len(self.tokens) - 1)]

    def _next(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> SPARQLSyntaxError:
        token = token or self._peek()
        return SPARQLSyntaxError(f"{message} (got {token.value!r})", token.position)

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            raise self._error(f"expected {value or kind}", token)
        return token

    def _at_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.value in keywords

    def _at_punct(self, value: str) -> bool:
        token = self._peek()
        return token.kind == "punct" and token.value == value

    def _accept_punct(self, value: str) -> bool:
        if self._at_punct(value):
            self._next()
            return True
        return False

    def _accept_keyword(self, *keywords: str) -> Token | None:
        if self._at_keyword(*keywords):
            return self._next()
        return None

    # -- entry point ---------------------------------------------------------

    def parse(self) -> Query:
        self._parse_prologue()
        if self._at_keyword("SELECT"):
            query = self._parse_select()
        elif self._at_keyword("ASK"):
            query = self._parse_ask()
        elif self._at_keyword("CONSTRUCT"):
            query = self._parse_construct()
        else:
            raise self._error("expected SELECT, ASK or CONSTRUCT")
        if self._peek().kind != "eof":
            raise self._error("unexpected trailing content")
        return query

    def _parse_prologue(self) -> None:
        while self._at_keyword("PREFIX", "BASE"):
            keyword = self._next()
            if keyword.value == "PREFIX":
                pname = self._expect("pname")
                if not pname.value.endswith(":"):
                    raise self._error("PREFIX name must end with ':'", pname)
                iri = self._expect("iri")
                self.prefixes[pname.value[:-1]] = iri.value[1:-1]
            else:
                self._expect("iri")

    # -- SELECT / ASK --------------------------------------------------------

    def _parse_select(self) -> SelectQuery:
        self._expect("keyword", "SELECT")
        distinct = bool(self._accept_keyword("DISTINCT", "REDUCED"))
        select_all = False
        projections: list[Projection] = []
        if self._at_punct("*"):
            self._next()
            select_all = True
        else:
            while True:
                token = self._peek()
                if token.kind == "var":
                    self._next()
                    projections.append(Projection(TermExpr(Variable(token.value))))
                elif self._at_punct("("):
                    self._next()
                    expression = self._parse_expression()
                    self._expect("keyword", "AS")
                    alias = Variable(self._expect("var").value)
                    self._expect("punct", ")")
                    projections.append(Projection(expression, alias))
                elif token.kind == "aggregate":
                    # Bare aggregate without AS: auto-alias for convenience.
                    expression = self._parse_primary_expression()
                    alias = Variable(f"agg{len(projections)}")
                    projections.append(Projection(expression, alias))
                else:
                    break
            if not projections:
                raise self._error("SELECT requires at least one projection or *")
        self._accept_keyword("WHERE")
        where = self._parse_group_graph_pattern()
        group_by: list[Variable] = []
        having: list[Expression] = []
        order_by: list[OrderCondition] = []
        limit: int | None = None
        offset: int | None = None
        if self._accept_keyword("GROUP"):
            self._expect("keyword", "BY")
            while self._peek().kind == "var":
                group_by.append(Variable(self._next().value))
            if not group_by:
                raise self._error("GROUP BY requires at least one variable")
        if self._accept_keyword("HAVING"):
            while self._at_punct("("):
                self._next()
                having.append(self._parse_expression())
                self._expect("punct", ")")
            if not having:
                raise self._error("HAVING requires at least one constraint")
        if self._accept_keyword("ORDER"):
            self._expect("keyword", "BY")
            order_by = self._parse_order_conditions()
        if self._accept_keyword("LIMIT"):
            limit = int(self._expect("integer").value)
        if self._accept_keyword("OFFSET"):
            offset = int(self._expect("integer").value)
        return SelectQuery(
            projections=tuple(projections),
            where=where,
            distinct=distinct,
            group_by=tuple(group_by),
            having=tuple(having),
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            select_all=select_all,
        )

    def _parse_ask(self) -> AskQuery:
        self._expect("keyword", "ASK")
        self._accept_keyword("WHERE")
        return AskQuery(self._parse_group_graph_pattern())

    def _parse_construct(self) -> ConstructQuery:
        self._expect("keyword", "CONSTRUCT")
        self._expect("punct", "{")
        template: list[TriplePattern] = []
        while not self._at_punct("}"):
            template.extend(self._parse_triples_block())
            self._accept_punct(".")
        self._expect("punct", "}")
        self._accept_keyword("WHERE")
        where = self._parse_group_graph_pattern()
        limit = None
        if self._accept_keyword("LIMIT"):
            limit = int(self._expect("integer").value)
        try:
            return ConstructQuery(tuple(template), where, limit=limit)
        except ValueError as exc:
            raise self._error(str(exc)) from exc

    def _parse_order_conditions(self) -> list[OrderCondition]:
        conditions: list[OrderCondition] = []
        while True:
            if self._at_keyword("ASC", "DESC"):
                keyword = self._next()
                self._expect("punct", "(")
                expression = self._parse_expression()
                self._expect("punct", ")")
                conditions.append(OrderCondition(expression, keyword.value == "ASC"))
            elif self._peek().kind == "var":
                conditions.append(OrderCondition(TermExpr(Variable(self._next().value))))
            elif self._peek().kind in ("function", "aggregate"):
                conditions.append(OrderCondition(self._parse_primary_expression()))
            else:
                break
        if not conditions:
            raise self._error("ORDER BY requires at least one condition")
        return conditions

    # -- group graph patterns --------------------------------------------------

    def _parse_group_graph_pattern(self) -> GroupGraphPattern:
        self._expect("punct", "{")
        elements: list = []
        while not self._at_punct("}"):
            if self._at_keyword("FILTER"):
                self._next()
                if self._at_keyword("EXISTS"):
                    self._next()
                    elements.append(ExistsFilter(self._parse_group_graph_pattern()))
                elif self._at_keyword("NOT") and self._peek(1).value == "EXISTS":
                    self._next()
                    self._next()
                    elements.append(
                        ExistsFilter(self._parse_group_graph_pattern(), negated=True)
                    )
                else:
                    elements.append(Filter(self._parse_constraint()))
            elif self._at_keyword("OPTIONAL"):
                self._next()
                elements.append(OptionalPattern(self._parse_group_graph_pattern()))
            elif self._at_keyword("MINUS"):
                self._next()
                elements.append(MinusPattern(self._parse_group_graph_pattern()))
            elif self._at_keyword("BIND"):
                self._next()
                self._expect("punct", "(")
                expression = self._parse_expression()
                self._expect("keyword", "AS")
                variable = Variable(self._expect("var").value)
                self._expect("punct", ")")
                elements.append(BindClause(expression, variable))
            elif self._at_keyword("VALUES"):
                self._next()
                elements.append(self._parse_values())
            elif self._at_punct("{"):
                if self._peek(1).kind == "keyword" and self._peek(1).value == "SELECT":
                    self._next()  # consume '{'
                    subquery = self._parse_select()
                    self._expect("punct", "}")
                    elements.append(SubSelect(subquery))
                else:
                    branches = [self._parse_group_graph_pattern()]
                    while self._accept_keyword("UNION"):
                        branches.append(self._parse_group_graph_pattern())
                    if len(branches) == 1:
                        elements.extend(branches[0].elements)
                    else:
                        elements.append(UnionPattern(tuple(branches)))
            else:
                elements.extend(self._parse_triples_block())
            self._accept_punct(".")
        self._expect("punct", "}")
        return GroupGraphPattern(tuple(elements))

    def _parse_constraint(self) -> Expression:
        if self._at_punct("("):
            self._next()
            expression = self._parse_expression()
            self._expect("punct", ")")
            return expression
        if self._peek().kind in ("function", "aggregate"):
            return self._parse_primary_expression()
        raise self._error("expected '(' or built-in call after FILTER")

    def _parse_values(self) -> ValuesClause:
        variables: list[Variable] = []
        if self._accept_punct("("):
            while self._peek().kind == "var":
                variables.append(Variable(self._next().value))
            self._expect("punct", ")")
        elif self._peek().kind == "var":
            variables.append(Variable(self._next().value))
        else:
            raise self._error("expected variable list after VALUES")
        self._expect("punct", "{")
        rows: list[tuple] = []
        multi = True
        while not self._at_punct("}"):
            if len(variables) == 1 and not self._at_punct("("):
                rows.append((self._parse_values_term(),))
                continue
            self._expect("punct", "(")
            row: list = []
            while not self._at_punct(")"):
                row.append(self._parse_values_term())
            self._expect("punct", ")")
            rows.append(tuple(row))
        self._expect("punct", "}")
        return ValuesClause(tuple(variables), tuple(rows))

    def _parse_values_term(self):
        if self._accept_keyword("UNDEF"):
            return None
        token = self._peek()
        if token.kind in ("iri", "pname", "string", "integer", "decimal", "double") or token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
            return self._parse_graph_term()
        raise self._error("expected term or UNDEF in VALUES row")

    # -- triples -----------------------------------------------------------

    def _parse_triples_block(self) -> list[TriplePattern]:
        patterns: list[TriplePattern] = []
        subject = self._parse_var_or_term()
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_var_or_term()
                patterns.append(TriplePattern(subject, predicate, obj))
                if not self._accept_punct(","):
                    break
            if not self._accept_punct(";"):
                break
            if self._at_punct(".") or self._at_punct("}"):
                break
        return patterns

    def _parse_verb(self):
        token = self._peek()
        if token.kind == "var":
            self._next()
            return Variable(token.value)
        return self._parse_path()

    def _parse_path(self):
        """PathAlternative := PathSequence ('|' PathSequence)*"""
        options = [self._parse_path_sequence()]
        while self._accept_punct("|"):
            options.append(self._parse_path_sequence())
        if len(options) == 1:
            return options[0]
        return AlternativePath(tuple(options))

    def _parse_path_sequence(self):
        steps = [self._parse_path_elt()]
        while self._accept_punct("/"):
            steps.append(self._parse_path_elt())
        if len(steps) == 1:
            return steps[0]
        return SequencePath(tuple(steps))

    def _parse_path_elt(self):
        if self._accept_punct("^"):
            primary = InversePath(self._parse_path_primary())
        else:
            primary = self._parse_path_primary()
        if self._at_punct("+"):
            self._next()
            return OneOrMorePath(primary)
        if self._at_punct("*"):
            self._next()
            return ZeroOrMorePath(primary)
        return primary

    def _parse_path_primary(self):
        token = self._peek()
        if token.kind == "keyword" and token.value == "A":
            self._next()
            return RDF.type
        if token.kind == "iri":
            self._next()
            return IRI(token.value[1:-1])
        if token.kind == "pname":
            self._next()
            return self._resolve_pname(token)
        if self._accept_punct("("):
            path = self._parse_path()
            self._expect("punct", ")")
            return path
        raise self._error("expected IRI or path")

    def _parse_var_or_term(self):
        token = self._peek()
        if token.kind == "var":
            self._next()
            return Variable(token.value)
        return self._parse_graph_term()

    def _parse_graph_term(self):
        token = self._next()
        if token.kind == "iri":
            return IRI(token.value[1:-1])
        if token.kind == "pname":
            return self._resolve_pname(token)
        if token.kind == "bnode":
            return BNode(token.value[2:])
        if token.kind == "string":
            return self._finish_literal(token)
        if token.kind == "integer":
            return Literal(token.value, datatype=XSD_INTEGER)
        if token.kind == "decimal":
            return Literal(token.value, datatype=XSD_DECIMAL)
        if token.kind == "double":
            return Literal(token.value, datatype=XSD_DOUBLE)
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
            return Literal(token.value.lower(), datatype=XSD_BOOLEAN)
        raise self._error("expected RDF term", token)

    def _resolve_pname(self, token: Token) -> IRI:
        prefix, _, local = token.value.partition(":")
        if prefix not in self.prefixes:
            raise self._error(f"undeclared prefix {prefix!r}", token)
        return IRI(self.prefixes[prefix] + local)

    def _finish_literal(self, token: Token) -> Literal:
        body = token.value[1:-1]
        lexical = re.sub(
            r"\\.", lambda m: _STRING_UNESCAPES.get(m.group(0), m.group(0)), body
        )
        nxt = self._peek()
        if nxt.kind == "langtag":
            self._next()
            return Literal(lexical, language=nxt.value[1:])
        if nxt.kind == "punct" and nxt.value == "^^":
            self._next()
            dt_token = self._next()
            if dt_token.kind == "iri":
                return Literal(lexical, datatype=IRI(dt_token.value[1:-1]))
            if dt_token.kind == "pname":
                return Literal(lexical, datatype=self._resolve_pname(dt_token))
            raise self._error("expected datatype IRI after ^^", dt_token)
        return Literal(lexical)

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._at_punct("||"):
            self._next()
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("||", tuple(operands))

    def _parse_and(self) -> Expression:
        operands = [self._parse_relational()]
        while self._at_punct("&&"):
            self._next()
            operands.append(self._parse_relational())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("&&", tuple(operands))

    def _parse_relational(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "punct" and token.value in ("=", "!=", "<", "<=", ">", ">="):
            self._next()
            right = self._parse_additive()
            return Comparison(token.value, left, right)
        if self._at_keyword("IN"):
            self._next()
            return InExpr(left, self._parse_expression_list(), negated=False)
        if self._at_keyword("NOT"):
            self._next()
            self._expect("keyword", "IN")
            return InExpr(left, self._parse_expression_list(), negated=True)
        return left

    def _parse_expression_list(self) -> tuple[Expression, ...]:
        self._expect("punct", "(")
        options: list[Expression] = []
        if not self._at_punct(")"):
            options.append(self._parse_expression())
            while self._accept_punct(","):
                options.append(self._parse_expression())
        self._expect("punct", ")")
        return tuple(options)

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self._at_punct("+") or self._at_punct("-"):
            op = self._next().value
            right = self._parse_multiplicative()
            left = Arithmetic(op, left, right)
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while self._at_punct("*") or self._at_punct("/"):
            op = self._next().value
            right = self._parse_unary()
            left = Arithmetic(op, left, right)
        return left

    def _parse_unary(self) -> Expression:
        if self._accept_punct("!"):
            return NotExpr(self._parse_unary())
        if self._accept_punct("-"):
            operand = self._parse_unary()
            zero = TermExpr(Literal("0", datatype=XSD_INTEGER))
            return Arithmetic("-", zero, operand)
        if self._accept_punct("+"):
            return self._parse_unary()
        return self._parse_primary_expression()

    def _parse_primary_expression(self) -> Expression:
        token = self._peek()
        if token.kind == "punct" and token.value == "(":
            self._next()
            expression = self._parse_expression()
            self._expect("punct", ")")
            return expression
        if token.kind == "var":
            self._next()
            return TermExpr(Variable(token.value))
        if token.kind == "function":
            self._next()
            args = self._parse_expression_list()
            return FunctionCall(token.value, args)
        if token.kind == "aggregate":
            self._next()
            self._expect("punct", "(")
            distinct = bool(self._accept_keyword("DISTINCT"))
            if self._accept_punct("*"):
                arg: Expression | None = None
            else:
                arg = self._parse_expression()
            self._expect("punct", ")")
            return Aggregate(token.value, arg, distinct=distinct)
        return TermExpr(self._parse_graph_term())
