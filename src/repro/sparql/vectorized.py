"""Batch-vectorized execution of compiled WHERE pipelines.

The operator layer (:mod:`repro.sparql.operators`) is tuple-at-a-time:
every row hops through a chain of Python generators, paying interpreter
overhead per register file.  This module executes the *same* compiled
:class:`~repro.sparql.operators.WherePlan` block-at-a-time: rows travel
as :class:`Batch` objects — one int64 column per register, sliced
directly out of the columnar sorted runs — and each operator transforms
a whole batch in a handful of numpy array operations.

Execution model:

* **Batch format** — ``cols[slot]`` is ``None`` (the register is unbound
  in every row), or an int64 array where the sentinel :data:`UNBOUND`
  (``-2**62``) marks per-row unbound registers.  Plan-local pseudo ids
  are small negatives (``-1 - k``), so the sentinel can never collide
  with a real or pseudo id.  Without numpy the columns are plain Python
  lists (the ``array``/stdlib fallback).
* **Selection vectors** — filtering operators compute a boolean mask or
  an index vector and gather surviving rows once; expanding operators
  (probes) build a parent-index vector with ``repeat``/``cumsum`` and
  gather every column through it, which keeps the *exact* row order the
  tuple engine produces (row-outer, match-inner).  Order preservation is
  load-bearing: ``LIMIT`` without ``ORDER BY`` slices positionally.
* **Expression kernels** — FILTER and BIND evaluate their register
  programs once per *distinct* id through a decode-once table (numeric
  comparisons get a float fast path); EXISTS/NOT EXISTS collapse the
  inner pipeline's source map to a per-row flag; MINUS folds the
  memoized right side into a removal mask; subqueries join their
  encoded result rows with the VALUES compatibility loop.
* **Fast paths and fallback** — vectorized probes slice the sorted runs
  through cached composite keys (:meth:`Run.key12` + ``searchsorted``)
  and are only sound when the run is the complete truth
  (:meth:`TripleIndex.pure_run`); with buffered deltas/tombstones, a
  dict-layout store, a mixed-boundness column, or no numpy, the affected
  operator falls back to the tuple engine *per batch* (rows are
  round-tripped through the operator's own ``run``), so every shape the
  tuple engine supports runs batched with identical semantics.
* **Morsel-driven parallelism** — when the first scheduled operator is a
  driving ``IndexScan`` over a pure run, its row range is split into
  batch-size morsels; with ``parallel > 1`` the morsels are dispatched
  to a thread pool (the heavy array ops release the GIL) and the
  finished batches are concatenated back in morsel order — a single
  merge stage that preserves ORDER BY/LIMIT semantics exactly.
* **Sideways information passing** — a later probe of shape
  ``?s <p> <o>`` (or ``<s> <p> ?o``) over a slot the driving scan binds
  is a pure semi-join filter: its sorted id set is built once from the
  statistics-backed scan API and pushed into the driving scan as a
  ``searchsorted`` membership mask, so doomed rows never leave the scan.
* **Deadline** — checked per operator per batch with a direct
  ``time.monotonic`` comparison (no stride: one check covers thousands
  of rows), plus the tuple engine's own per-row checks inside fallbacks.

The tuple-at-a-time path stays fully intact as the differential oracle;
:mod:`tests.test_vectorized_parity` pins batched ≡ tuple ≡ term-space.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

from ..errors import QueryEvaluationError, QueryTimeoutError
from ..rdf.terms import Literal, Variable
from .ast import Comparison, TermExpr
from .expressions import ExpressionError, effective_boolean_value
from .operators import (
    _EMPTY_MASK,
    _BindRebind,
    _ExecContext,
    BindOp,
    ExistsJoin,
    FilterOp,
    IndexScan,
    LeftJoin,
    MinusJoin,
    NestedProbe,
    SubqueryScan,
    UnionOp,
    ValuesBind,
    _StepOp,
)

try:  # pragma: no cover - import guard
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

if os.environ.get("REPRO_NO_NUMPY"):  # force the stdlib path (CI fallback leg)
    _np = None

__all__ = [
    "UNBOUND",
    "DEFAULT_BATCH_SIZE",
    "VecConfig",
    "backend_name",
    "analyze_plan",
    "iter_batches",
    "collect_batches",
    "vec_any",
    "vec_solutions",
    "vec_rows",
]

#: Per-row "this register is unbound" sentinel inside an int64 column.
#: Far below every real id (>= 0) and every plan-local pseudo id (small
#: negatives), so it can never collide.
UNBOUND = -(1 << 62)

DEFAULT_BATCH_SIZE = 65536

#: Values beyond 2**53 lose exactness in float64; the vectorized filter
#: and aggregate fast paths refuse them and fall back to exact folds.
_FLOAT_EXACT_LIMIT = float(1 << 53)

#: Cap on rows a single vectorized expansion may materialize in one
#: repeat/tile allocation (128 MiB of int64 per column).  Wider fan-outs
#: run through the tuple operator instead, which honours the per-row
#: deadline while it grinds rather than attempting one unbounded
#: allocation.
_MAX_EXPANSION = 1 << 24


class _ExpansionLimit(Exception):
    """A probe fan-out exceeds :data:`_MAX_EXPANSION`; use the fallback."""


def backend_name() -> str:
    """Which array backend batches run on: ``"numpy"`` or ``"array"``."""
    return "numpy" if _np is not None else "array"


class VecConfig:
    """Normalized batched-execution settings.

    ``parallel`` counts morsel workers: ``None``/1 means serial, 0 means
    one worker per CPU, N means at most N threads.
    """

    __slots__ = ("batch_size", "parallel")

    def __init__(self, batch_size: int | None = None, parallel: int | None = None):
        self.batch_size = int(batch_size) if batch_size else DEFAULT_BATCH_SIZE
        if self.batch_size < 1:
            self.batch_size = 1
        if parallel is None:
            workers = 1
        elif parallel == 0:
            workers = os.cpu_count() or 1
        else:
            workers = int(parallel)
        self.parallel = max(1, workers)


_DEFAULT_CONFIG = VecConfig()


class Batch:
    """One block of register-file rows, stored column-wise."""

    __slots__ = ("cols", "n", "_states")

    def __init__(self, cols: list, n: int):
        self.cols = cols
        self.n = n
        self._states: dict[int, str] = {}

    @property
    def width(self) -> int:
        return len(self.cols)

    def state(self, slot: int) -> str:
        """Boundness of one column: ``'none'`` | ``'all'`` | ``'mixed'``."""
        col = self.cols[slot]
        if col is None:
            return "none"
        cached = self._states.get(slot)
        if cached is None:
            if _np is not None and not isinstance(col, list):
                cached = "mixed" if bool((col == UNBOUND).any()) else "all"
            else:
                cached = "mixed" if UNBOUND in col else "all"
            self._states[slot] = cached
        return cached


def _empty(width: int) -> Batch:
    return Batch([None] * width, 0)


class _VecCtx:
    """Per-execution batched state, wrapping the tuple engine's context.

    The tuple :class:`_ExecContext` is shared with every per-batch
    fallback (and across morsel workers): its memo dicts are idempotent
    caches, so concurrent benign races only cost a recompute.
    """

    __slots__ = ("plan", "deadline", "config", "tctx", "index", "morsels",
                 "pushed")

    def __init__(self, plan, deadline, config: VecConfig):
        self.plan = plan
        self.deadline = deadline
        self.config = config
        self.tctx = _ExecContext(plan, deadline)
        self.index = plan.index
        self.morsels = 0
        self.pushed: list[str] = []

    def check(self) -> None:
        """Direct per-batch deadline check — no stride, one call covers
        thousands of rows."""
        expires_at = self.deadline.expires_at
        if expires_at is not None and time.monotonic() > expires_at:
            raise QueryTimeoutError("query evaluation exceeded the deadline")


# --------------------------------------------------------------------------
# Row <-> batch conversion (the per-batch tuple-engine fallback)
# --------------------------------------------------------------------------


def _to_tagged_rows(batch: Batch) -> list[list]:
    """Batch rows as tuple-engine register files with a trailing parent
    index (tuple operators copy rows wholesale, so the tag survives)."""
    width = batch.width
    n = batch.n
    lists = []
    for col in batch.cols:
        if col is None:
            lists.append(None)
        elif isinstance(col, list):
            lists.append(col)
        else:
            lists.append(col.tolist())
    rows = []
    for i in range(n):
        row = [None] * (width + 1)
        row[width] = i
        for slot, vals in enumerate(lists):
            if vals is not None:
                value = vals[i]
                if value != UNBOUND:
                    row[slot] = value
        rows.append(row)
    return rows


def _from_rows(rows: list[list], width: int) -> Batch:
    cols: list = []
    for slot in range(width):
        seen = False
        vals = []
        for row in rows:
            value = row[slot]
            if value is None:
                vals.append(UNBOUND)
            else:
                vals.append(value)
                seen = True
        if not seen:
            cols.append(None)
        elif _np is not None:
            cols.append(_np.array(vals, dtype=_np.int64))
        else:
            cols.append(vals)
    return Batch(cols, len(rows))


def _per_row(op, batch: Batch, vctx: _VecCtx):
    """Run one tuple operator over a batch's rows (the universal
    fallback): identical semantics by construction, still batch-framed."""
    width = batch.width
    rows = _to_tagged_rows(batch)
    out_rows = list(op.run(iter(rows), vctx.tctx))
    out = _from_rows(out_rows, width)
    src = [row[width] for row in out_rows]
    if _np is not None:
        src = _np.array(src, dtype=_np.int64) if src else _np.empty(0, _np.int64)
    return out, src


# --------------------------------------------------------------------------
# Batch primitives (numpy mode)
# --------------------------------------------------------------------------


def _take(batch: Batch, idx) -> Batch:
    cols = [None if col is None else col[idx] for col in batch.cols]
    return Batch(cols, int(len(idx)))


def _expand(batch: Batch, parent, bound: dict) -> Batch:
    """Gather every column through a parent-index vector, overriding the
    slots in ``bound`` with freshly produced columns."""
    cols = []
    for slot, col in enumerate(batch.cols):
        new = bound.get(slot)
        if new is not None:
            cols.append(new)
        elif col is None:
            cols.append(None)
        else:
            cols.append(col[parent])
    return Batch(cols, int(len(parent)))


def _apply_eqs(batch: Batch, parent, eqs):
    """Register-equality selection (repeated variables) on a step output."""
    if not eqs or batch.n == 0:
        return batch, parent
    mask = None
    for a, b in eqs:
        part = batch.cols[a] == batch.cols[b]
        mask = part if mask is None else (mask & part)
    idx = _np.nonzero(mask)[0]
    return _take(batch, idx), parent[idx]


def _merge_parts(parts: list, width: int):
    """Concatenate part batches and stable-sort by their source keys.

    ``parts`` is ``[(batch, src)]`` in tie-break order: rows with equal
    source keys keep part order, then within-part order — exactly the
    tuple engine's per-row branch/values/left-join interleaving.
    """
    parts = [(b, s) for b, s in parts if b.n]
    if not parts:
        return _empty(width), _np.empty(0, _np.int64)
    if len(parts) == 1:
        return parts[0]
    src_all = _np.concatenate([s for _b, s in parts])
    order = _np.argsort(src_all, kind="stable")
    cols = []
    for slot in range(width):
        have = [b.cols[slot] for b, _s in parts]
        if all(col is None for col in have):
            cols.append(None)
            continue
        chunks = []
        for (b, _s), col in zip(parts, have):
            if col is None:
                chunks.append(_np.full(b.n, UNBOUND, dtype=_np.int64))
            else:
                chunks.append(col)
        cols.append(_np.concatenate(chunks)[order])
    return Batch(cols, int(len(src_all))), src_all[order]


def _compose(outer, inner):
    """Compose source maps: ``outer`` maps this op's input rows upstream,
    ``inner`` maps its output rows to its input rows."""
    if inner is None:
        return outer
    if outer is None:
        return inner
    if isinstance(outer, list):
        return [outer[i] for i in inner]
    return outer[inner]


# --------------------------------------------------------------------------
# Vectorized operators
# --------------------------------------------------------------------------


def _run_step(op: _StepOp, batch: Batch, vctx: _VecCtx):
    """One join step over a whole batch via composite-key searchsorted."""
    if _np is None:
        return _per_row(op, batch, vctx)
    sc, ss, pc, ps, oc, os_ = op.step
    if ps is not None or pc is None:
        return _per_row(op, batch, vctx)  # variable predicate: rare shape

    def classify(const, slot):
        if slot is None:
            return ("k", const)
        state = batch.state(slot)
        if state == "none":
            return ("w", slot)
        if state == "all":
            return ("b", slot)
        return None  # mixed boundness: per-row fallback

    s_kind = classify(sc, ss)
    o_kind = classify(oc, os_)
    if s_kind is None or o_kind is None:
        return _per_row(op, batch, vctx)
    pure = getattr(vctx.index, "pure_run", None)
    if pure is None:
        return _per_row(op, batch, vctx)
    m = len(vctx.plan.dictionary)
    n = batch.n

    if s_kind[0] != "w" and o_kind[0] == "w":
        # <s>/?s(bound) <p> ?o — probe the SPO run, bind the object.
        run = pure(0)
        if run is None:
            return _per_row(op, batch, vctx)
        a_vals = s_kind[1] if s_kind[0] == "k" else batch.cols[s_kind[1]]
        try:
            parent, pos = _probe_positions(run, m, a_vals, pc, n)
        except _ExpansionLimit:
            return _per_row(op, batch, vctx)
        if parent is None:
            return _empty(batch.width), _np.empty(0, _np.int64)
        c_np = run.as_numpy()[2]
        out = _expand(batch, parent, {o_kind[1]: c_np[pos]})
        return _apply_eqs(out, parent, op.eqs)

    if s_kind[0] == "w" and o_kind[0] != "w":
        # ?s <p> <o>/?o(bound) — probe the POS run, bind the subject.
        run = pure(1)
        if run is None:
            return _per_row(op, batch, vctx)
        a_vals = o_kind[1] if o_kind[0] == "k" else batch.cols[o_kind[1]]
        try:
            parent, pos = _probe_positions(run, m, pc, a_vals, n)
        except _ExpansionLimit:
            return _per_row(op, batch, vctx)
        if parent is None:
            return _empty(batch.width), _np.empty(0, _np.int64)
        c_np = run.as_numpy()[2]
        out = _expand(batch, parent, {s_kind[1]: c_np[pos]})
        return _apply_eqs(out, parent, op.eqs)

    if s_kind[0] != "w" and o_kind[0] != "w":
        # Fully bound: a pure per-row containment selection.
        run = pure(0)
        if run is None:
            return _per_row(op, batch, vctx)
        s_vals = s_kind[1] if s_kind[0] == "k" else batch.cols[s_kind[1]]
        o_vals = o_kind[1] if o_kind[0] == "k" else batch.cols[o_kind[1]]
        mask = _contains_mask(run, m, s_vals, o_vals, pc, n)
        idx = _np.nonzero(mask)[0]
        return _apply_eqs(_take(batch, idx), idx, op.eqs)

    # ?s <p> ?o with both ends free — the scan shape: cross every input
    # row with the predicate's contiguous POS range.
    run = pure(1)
    if run is None:
        return _per_row(op, batch, vctx)
    lo, hi = run.range1(pc)
    span = hi - lo
    if span == 0 or n == 0:
        return _empty(batch.width), _np.empty(0, _np.int64)
    if n * span > _MAX_EXPANSION:
        return _per_row(op, batch, vctx)
    _a, b_np, c_np, _st = run.as_numpy()
    parent = _np.repeat(_np.arange(n, dtype=_np.int64), span)
    subjects = _np.tile(c_np[lo:hi], n)
    objects = _np.tile(b_np[lo:hi], n)
    out = _expand(batch, parent, {ss: subjects, os_: objects})
    return _apply_eqs(out, parent, op.eqs)


def _probe_positions(run, m, a_vals, b_vals, n):
    """Per-row run ranges for two bound leading keys, ragged-expanded.

    Returns ``(parent, pos)``: for every match, the input row it extends
    and its row index inside the run — in (row-outer, run-order-inner)
    order, matching the tuple engine's scan loops.  Either key may be a
    scalar constant or a per-row column; broadcasting covers both probe
    orientations.

    Negative key components are plan-local pseudo ids — terms the store
    has never seen, which match nothing — and they must be neutralized
    *before* forming the composite ``a * m + b``: a negative second
    component aliases the key of the previous first-key group
    (``a*m - k == (a-1)*m + (m-k)``), which would emit false joins.
    Rows holding one are probed with ``-1``, below every real key, so
    they miss.  (A negative *first* component already yields a negative
    composite and misses on its own, but masking both is cheapest.)

    Raises :class:`_ExpansionLimit` when the total fan-out exceeds
    :data:`_MAX_EXPANSION` — the caller falls back to the tuple operator
    instead of attempting one unbounded allocation.
    """
    keys = run.key12(m)
    scalar_a = not hasattr(a_vals, "__len__")
    scalar_b = not hasattr(b_vals, "__len__")
    if (scalar_a and a_vals < 0) or (scalar_b and b_vals < 0):
        return None, None  # constant pseudo id: no stored triple matches
    if scalar_a and scalar_b:
        lo = int(_np.searchsorted(keys, a_vals * m + b_vals, side="left"))
        hi = int(_np.searchsorted(keys, a_vals * m + b_vals, side="right"))
        span = hi - lo
        if span == 0 or n == 0:
            return None, None
        if n * span > _MAX_EXPANSION:
            raise _ExpansionLimit
        parent = _np.repeat(_np.arange(n, dtype=_np.int64), span)
        pos = _np.tile(_np.arange(lo, hi, dtype=_np.int64), n)
        return parent, pos
    query = a_vals * m + b_vals
    invalid = None
    if not scalar_a:
        invalid = a_vals < 0
    if not scalar_b:
        neg_b = b_vals < 0
        invalid = neg_b if invalid is None else (invalid | neg_b)
    if invalid is not None and bool(invalid.any()):
        query = _np.where(invalid, _np.int64(-1), query)
    lo = _np.searchsorted(keys, query, side="left")
    hi = _np.searchsorted(keys, query, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return None, None
    if total > _MAX_EXPANSION:
        raise _ExpansionLimit
    parent = _np.repeat(_np.arange(n, dtype=_np.int64), counts)
    first = _np.cumsum(counts) - counts
    pos = (
        _np.arange(total, dtype=_np.int64)
        - _np.repeat(first, counts)
        + _np.repeat(lo, counts)
    )
    return parent, pos


def _contains_mask(run, m, s_vals, o_vals, pc, n):
    """Vectorized triple-containment test over the SPO run.

    Rows whose ``(s, p)`` range holds at most one object — the dominant
    star-schema case — resolve in pure array ops; wider ranges fall back
    to a bounded bisect per row.
    """
    from bisect import bisect_left

    if pc < 0:
        # Pseudo-id predicate (term the store never saw): nothing matches,
        # and the composite below would alias the previous subject group.
        return _np.zeros(n, dtype=bool)
    keys = run.key12(m)
    if not hasattr(s_vals, "__len__"):
        s_vals = _np.full(n, s_vals, dtype=_np.int64)
    if not hasattr(o_vals, "__len__"):
        o_vals = _np.full(n, o_vals, dtype=_np.int64)
    query = s_vals * m + pc
    lo = _np.searchsorted(keys, query, side="left")
    hi = _np.searchsorted(keys, query, side="right")
    counts = hi - lo
    c_np = run.as_numpy()[2]
    mask = _np.zeros(n, dtype=bool)
    single = counts == 1
    if single.any():
        mask[single] = c_np[lo[single]] == o_vals[single]
    wide = _np.nonzero(counts > 1)[0]
    if len(wide):
        c_col = run.c
        for i in wide.tolist():
            row_lo, row_hi = int(lo[i]), int(hi[i])
            target = int(o_vals[i])
            j = bisect_left(c_col, target, row_lo, row_hi)
            mask[i] = j < row_hi and c_col[j] == target
    return mask


def _run_filter(op: FilterOp, batch: Batch, vctx: _VecCtx):
    """FILTER over a batch, in three tiers per constraint.

    Numeric ``?v OP literal`` comparisons vectorize through a
    decode-once float table per distinct id; every other constraint
    whose register program reads at most one bound column evaluates the
    program once per distinct id into a boolean table (exact expression
    semantics, errors remove the row); multi-column programs fall back
    to the tuple operator for the whole batch.
    """
    if _np is None:
        return _per_row(op, batch, vctx)
    mask = None
    for constraint, program in zip(op.filters, op.programs):
        part = _comparison_mask(op, constraint, batch, vctx)
        if part is None:
            part = _program_mask(program, batch, vctx)
        if part is None:
            return _per_row(op, batch, vctx)
        mask = part if mask is None else (mask & part)
    if mask is None:
        return batch, _np.arange(batch.n, dtype=_np.int64)
    idx = _np.nonzero(mask)[0]
    return _take(batch, idx), idx


def _comparison_mask(op: FilterOp, constraint, batch: Batch, vctx: _VecCtx):
    """Boolean mask for a numeric-comparison FILTER, or None."""
    compiled = _vectorizable_comparison(op, constraint, batch)
    if compiled is None:
        return None
    slot, opname, const = compiled
    values = _numeric_column(batch.cols[slot], vctx)
    if values is None:
        return None
    if opname == "<":
        return values < const
    if opname == "<=":
        return values <= const
    if opname == ">":
        return values > const
    if opname == ">=":
        return values >= const
    if opname == "=":
        return values == const
    return values != const


def _program_mask(program, batch: Batch, vctx: _VecCtx):
    """Boolean mask for one FILTER via its register program.

    Sound for programs reading at most one bound column: the program is
    evaluated once per distinct id (``row[slot] = None`` for the
    :data:`UNBOUND` sentinel), with an erroring expression mapping to
    False — SPARQL's error-removes-row rule.  Returns None when two or
    more read columns are bound (cross-column value combinations would
    need a compound key).
    """
    bound = [s for s in program.slots if batch.cols[s] is not None]
    if len(bound) > 1:
        return None
    decode = vctx.tctx.decode
    row = [None] * batch.width
    if not bound:
        try:
            keep = effective_boolean_value(program(row, decode))
        except ExpressionError:
            keep = False
        return _np.full(batch.n, keep, dtype=bool)
    slot = bound[0]
    uniq, inverse = _np.unique(batch.cols[slot], return_inverse=True)
    table = _np.empty(len(uniq), dtype=bool)
    for j, term_id in enumerate(uniq.tolist()):
        row[slot] = None if term_id == UNBOUND else term_id
        try:
            table[j] = effective_boolean_value(program(row, decode))
        except ExpressionError:
            table[j] = False
    return table[inverse]


def _vectorizable_comparison(op: FilterOp, constraint, batch: Batch):
    """``(slot, op, float_const)`` for ``?v OP numeric-literal`` shapes
    over a fully bound column, else None."""
    expr = constraint.expression
    if not isinstance(expr, Comparison):
        return None
    left, right = expr.left, expr.right
    opname = expr.op
    if (isinstance(left, TermExpr) and isinstance(left.term, Variable)
            and isinstance(right, TermExpr) and isinstance(right.term, Literal)):
        variable, literal = left.term, right.term
    elif (isinstance(right, TermExpr) and isinstance(right.term, Variable)
            and isinstance(left, TermExpr) and isinstance(left.term, Literal)):
        variable, literal = right.term, left.term
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        opname = flip.get(opname, opname)
    else:
        return None
    if not literal.is_numeric:
        return None
    try:
        const = float(literal.numeric_value())
    except (ValueError, TypeError):
        return None
    if abs(const) >= _FLOAT_EXACT_LIMIT:
        return None
    slot = dict(op.slot_items).get(variable)
    if slot is None or batch.state(slot) != "all":
        return None
    return slot, opname, const


def _numeric_column(col, vctx: _VecCtx):
    """Float64 view of a column via a decode-once distinct-value table.

    Non-numeric terms map to NaN: every NaN comparison is False, which
    matches both the SPARQL error-removes-row rule for ``<``/``>`` and
    term inequality for ``=``/``!=`` against a numeric constant.
    Malformed or float-inexact numerics force the per-row fallback
    (returns None) — the tuple engine's exact error semantics apply.
    """
    uniq, inverse = _np.unique(col, return_inverse=True)
    decode = vctx.tctx.decode
    table = _np.empty(len(uniq), dtype=_np.float64)
    for j, term_id in enumerate(uniq.tolist()):
        term = decode(term_id)
        if isinstance(term, Literal) and term.is_numeric:
            try:
                value = float(term.numeric_value())
            except (ValueError, TypeError, ArithmeticError):
                return None
            if abs(value) >= _FLOAT_EXACT_LIMIT:
                return None
            table[j] = value
        else:
            table[j] = _np.nan
    return table[inverse]


def _run_values(op: ValuesBind, batch: Batch, vctx: _VecCtx):
    """VALUES join: per value row, a compatibility mask + overridden
    columns; outputs interleaved back into (row, value-row) order."""
    if _np is None:
        return _per_row(op, batch, vctx)
    return _values_join(op.cell_slots, op.encoded_rows, batch)


def _run_subquery(op: SubqueryScan, batch: Batch, vctx: _VecCtx):
    """Subquery join: the inner plan's encoded result rows (materialized
    once per execution, memoized on the shared tuple context) join with
    the exact VALUES compatibility loop — None cells skip like UNDEF."""
    if _np is None:
        return _per_row(op, batch, vctx)
    return _values_join(op.cell_slots, op.encoded_rows(vctx.tctx), batch)


def _values_join(cell_slots, encoded_rows, batch: Batch):
    """Shared VALUES/subquery join core (see :func:`_run_values`)."""
    n = batch.n
    width = batch.width
    parts = []
    for value_row in encoded_rows:
        mask = _np.ones(n, dtype=bool)
        override: dict[int, tuple] = {}
        for slot, value_id in zip(cell_slots, value_row):
            if value_id is None:  # UNDEF leaves the register as-is
                continue
            col = batch.cols[slot]
            if col is None:
                override[slot] = ("fill", value_id)
            else:
                unbound = col == UNBOUND
                mask &= unbound | (col == value_id)
                if bool(unbound.any()):
                    override[slot] = ("where", value_id)
        idx = _np.nonzero(mask)[0]
        if not len(idx):
            continue
        part = _take(batch, idx)
        for slot, (how, value_id) in override.items():
            if how == "fill":
                part.cols[slot] = _np.full(len(idx), value_id, dtype=_np.int64)
            else:
                col = part.cols[slot]
                part.cols[slot] = _np.where(col == UNBOUND, value_id, col)
            part._states.pop(slot, None)
        parts.append((part, idx))
    return _merge_parts(parts, width)


def _run_group(pipeline, batch: Batch, vctx: _VecCtx):
    """A nested GroupPipeline over a batch (OPTIONAL body, UNION branch).

    The interpreter schedules filters against the variables each
    *incoming row* binds, so rows are partitioned by entry mask (almost
    always a single partition) and each partition runs its own memoized
    schedule; partition outputs merge back into input-row order.
    """
    width = batch.width
    if pipeline.empty and batch.n:
        _raise_group_rebinds(pipeline, batch)
    if pipeline.empty or batch.n == 0:
        return _empty(width), _np.empty(0, _np.int64)
    groups = _entry_mask_groups(pipeline, batch)
    parts = []
    for mask, idx in groups:
        ops = vctx.tctx.schedule(pipeline, mask)
        sub = _take(batch, idx) if idx is not None else batch
        out, src = _fold(ops, sub, vctx)
        if idx is not None and src is not None:
            src = idx[src]
        elif idx is not None:
            src = idx
        elif src is None:
            src = _np.arange(out.n, dtype=_np.int64)
        parts.append((out, src))
    return _merge_parts(parts, width)


def _raise_group_rebinds(pipeline, batch: Batch) -> None:
    """The rebind error an empty nested group owes a non-empty batch —
    per-row over the tuple engine, collapsed here to a column check
    (any row binding a BIND target aborts the query either way)."""
    for op in pipeline.tail_ops:
        if isinstance(op, _BindRebind):
            next(op.run(iter(()), None), None)  # always raises
        elif isinstance(op, BindOp):
            col = batch.cols[op.slot]
            if col is None:
                continue
            if _np is not None and not isinstance(col, list):
                bound = bool((col != UNBOUND).any())
            else:
                bound = any(value != UNBOUND for value in col)
            if bound:
                raise QueryEvaluationError(
                    f"BIND would rebind in-scope variable "
                    f"{op.bind.variable.n3()}"
                )


def _entry_mask_groups(pipeline, batch: Batch):
    """Partition batch rows by which filter-relevant variables they bind.

    Returns ``[(mask, idx | None)]``; ``idx=None`` means all rows (the
    common single-partition case, no gather needed).
    """
    items = pipeline.relevant_items
    if not items:
        return [(_EMPTY_MASK, None)]
    states = [(variable, slot, batch.state(slot)) for variable, slot in items]
    if all(state != "mixed" for _v, _s, state in states):
        mask = frozenset(v for v, _s, state in states if state == "all")
        return [(mask, None)]
    keys = _np.zeros(batch.n, dtype=_np.int64)
    for bit, (variable, slot, state) in enumerate(states):
        if state == "all":
            keys |= 1 << bit
        elif state == "mixed":
            bound = batch.cols[slot] != UNBOUND
            keys |= bound.astype(_np.int64) << bit
    groups = []
    for key in _np.unique(keys).tolist():
        idx = _np.nonzero(keys == key)[0]
        mask = frozenset(
            variable for bit, (variable, _s, _st) in enumerate(states)
            if key & (1 << bit)
        )
        groups.append((mask, idx))
    return groups


def _run_leftjoin(op: LeftJoin, batch: Batch, vctx: _VecCtx):
    if _np is None:
        return _per_row(op, batch, vctx)
    inner_out, src = _run_group(op.inner, batch, vctx)
    matched = _np.zeros(batch.n, dtype=bool)
    if len(src):
        matched[src] = True
    unmatched = _np.nonzero(~matched)[0]
    parts = [(inner_out, src), (_take(batch, unmatched), unmatched)]
    return _merge_parts(parts, batch.width)


def _run_union(op: UnionOp, batch: Batch, vctx: _VecCtx):
    if _np is None:
        return _per_row(op, batch, vctx)
    parts = [_run_group(branch, batch, vctx) for branch in op.branches]
    return _merge_parts(list(parts), batch.width)


def _run_bind(op: BindOp, batch: Batch, vctx: _VecCtx):
    """BIND over a batch: decode-once / encode-once via a distinct table.

    The register program runs once per distinct id of its single bound
    dependency column (once total when it reads no bound column — a
    batch-constant expression), each computed term encodes once, and
    the ids scatter column-wise.  An erroring row keeps its old
    register value, exactly like the tuple operator; programs reading
    two or more bound columns run per-row.
    """
    if _np is None:
        return _per_row(op, batch, vctx)
    n = batch.n
    identity = _np.arange(n, dtype=_np.int64)
    program = op.program
    bound = [s for s in program.slots if batch.cols[s] is not None]
    if len(bound) > 1:
        return _per_row(op, batch, vctx)
    tctx = vctx.tctx
    row = [None] * batch.width
    old = batch.cols[op.slot]
    if not bound:
        try:
            term = program(row, tctx.decode)
        except ExpressionError:
            return batch, identity  # every row errors: nothing changes
        new_col = _np.full(n, tctx.encode(term), dtype=_np.int64)
    else:
        slot = bound[0]
        uniq, inverse = _np.unique(batch.cols[slot], return_inverse=True)
        # UNBOUND marks "this distinct value errored — keep the old
        # register"; it can never be a real or minted id.
        table = _np.empty(len(uniq), dtype=_np.int64)
        for j, term_id in enumerate(uniq.tolist()):
            row[slot] = None if term_id == UNBOUND else term_id
            try:
                table[j] = tctx.encode(program(row, tctx.decode))
            except ExpressionError:
                table[j] = UNBOUND
        mapped = table[inverse]
        if bool((mapped == UNBOUND).all()):
            return batch, identity
        new_col = mapped if old is None else _np.where(
            mapped == UNBOUND, old, mapped
        )
    cols = list(batch.cols)
    cols[op.slot] = new_col
    return Batch(cols, n), identity


def _run_exists(op: ExistsJoin, batch: Batch, vctx: _VecCtx):
    """EXISTS / NOT EXISTS: the correlated inner pipeline runs over the
    whole batch and collapses to a per-source matched flag.  (The tuple
    operator stops at the first inner match per row; batched we take the
    full inner result — same rows survive, inner bindings never leak.)"""
    if _np is None:
        return _per_row(op, batch, vctx)
    _out, src = _run_group(op.inner, batch, vctx)
    matched = _np.zeros(batch.n, dtype=bool)
    if len(src):
        matched[src] = True
    keep = ~matched if op.exists.negated else matched
    idx = _np.nonzero(keep)[0]
    return _take(batch, idx), idx


def _run_minus(op: MinusJoin, batch: Batch, vctx: _VecCtx):
    """MINUS: fold the memoized uncorrelated right side into a removal
    mask, one distinct shared-slot projection at a time.

    Per right row: ``shared`` ORs the columns where both sides bind the
    same id, ``conflict`` ORs the ones where both bind and differ; a
    left row is removed when some right row reaches shared-and-no-
    conflict — the interpreter's compatibility rule, vectorized.
    """
    if _np is None:
        return _per_row(op, batch, vctx)
    n = batch.n
    identity = _np.arange(n, dtype=_np.int64)
    right = op.right_rows(vctx.tctx)
    shared_slots = op.shared_slots
    if not right or not shared_slots:
        return batch, identity
    removed = _np.zeros(n, dtype=bool)
    seen = set()
    for other in right:
        key = tuple(other[slot] for slot in shared_slots)
        if key in seen:
            continue
        seen.add(key)
        shared = None
        conflict = None
        for slot, right_id in zip(shared_slots, key):
            if right_id is None:
                continue
            col = batch.cols[slot]
            if col is None:
                continue
            left_bound = col != UNBOUND
            eq = left_bound & (col == right_id)
            ne = left_bound & ~eq
            shared = eq if shared is None else (shared | eq)
            conflict = ne if conflict is None else (conflict | ne)
        if shared is None:
            continue
        removed |= shared if conflict is None else (shared & ~conflict)
    idx = _np.nonzero(~removed)[0]
    if len(idx) == n:
        return batch, identity
    return _take(batch, idx), idx


def _run_op(op, batch: Batch, vctx: _VecCtx):
    if isinstance(op, _StepOp):
        return _run_step(op, batch, vctx)
    if isinstance(op, FilterOp):
        return _run_filter(op, batch, vctx)
    if isinstance(op, ValuesBind):
        return _run_values(op, batch, vctx)
    if isinstance(op, BindOp):
        return _run_bind(op, batch, vctx)
    if isinstance(op, SubqueryScan):
        return _run_subquery(op, batch, vctx)
    if isinstance(op, ExistsJoin):
        return _run_exists(op, batch, vctx)
    if isinstance(op, MinusJoin):
        return _run_minus(op, batch, vctx)
    if isinstance(op, LeftJoin):
        return _run_leftjoin(op, batch, vctx)
    if isinstance(op, UnionOp):
        return _run_union(op, batch, vctx)
    # PathClosure, _BindRebind (which must raise, not compute) and
    # anything future: the universal tuple fallback.
    return _per_row(op, batch, vctx)


def _fold(ops, batch: Batch, vctx: _VecCtx):
    """Run a batch through an operator schedule, composing source maps."""
    srcmap = None
    for i, op in enumerate(ops):
        if batch.n == 0:
            # The tuple generators still start downstream ops on an empty
            # stream — which matters exactly for the always-raising
            # rebind check.  Mirror that before short-circuiting.
            for tail_op in ops[i:]:
                if isinstance(tail_op, _BindRebind):
                    next(tail_op.run(iter(()), vctx.tctx), None)
            return batch, (srcmap if srcmap is not None else
                           ([] if _np is None else _np.empty(0, _np.int64)))
        vctx.check()
        batch, inner = _run_op(op, batch, vctx)
        srcmap = _compose(srcmap, inner)
    return batch, srcmap


# --------------------------------------------------------------------------
# Driving scan: morsels + pushed semi-join filters
# --------------------------------------------------------------------------


class _Driver:
    """A morselizable driving scan: a contiguous pure-run row range plus
    the columns it binds (``bind`` maps register slot → run column
    ``"b"`` or ``"c"``)."""

    __slots__ = ("op", "run", "lo", "hi", "bind", "slots")

    def __init__(self, op, run, lo, hi, bind):
        self.op = op
        self.run = run
        self.lo = lo
        self.hi = hi
        self.bind = bind
        self.slots = frozenset(slot for slot, _col in bind)


def _find_driver(plan, ops):
    """Recognize a driving scan in the first scheduled operator.

    Three shapes map to a contiguous run range: ``?s <p> ?o`` (POS
    range1), ``?s <p> <o>`` (POS range2) and ``<s> <p> ?o`` (SPO
    range2).  Requires a pure columnar run — with buffered deltas the
    whole plan falls back to the single-seed path (still batched)."""
    if not ops or not isinstance(ops[0], IndexScan):
        return None
    sc, ss, pc, ps, oc, os_ = ops[0].step
    if pc is None or ps is not None:
        return None
    pure = getattr(plan.index, "pure_run", None)
    if pure is None:
        return None
    if sc is None and ss is not None:
        run = pure(1)  # POS: a=p, b=o, c=s
        if run is None:
            return None
        if oc is None and os_ is not None:
            lo, hi = run.range1(pc)
            return _Driver(ops[0], run, lo, hi, ((ss, "c"), (os_, "b")))
        if oc is not None and os_ is None:
            lo, hi = run.range2(pc, oc)
            return _Driver(ops[0], run, lo, hi, ((ss, "c"),))
        return None
    if sc is not None and ss is None and oc is None and os_ is not None:
        run = pure(0)  # SPO: a=s, b=p, c=o
        if run is None:
            return None
        lo, hi = run.range2(sc, pc)
        return _Driver(ops[0], run, lo, hi, ((os_, "c"),))
    return None


def _find_pushdowns(driver: _Driver, ops):
    """Split later probes that are pure semi-join filters off the
    schedule.  A probe whose only variable is a slot the driving scan
    binds — ``?s <p> <o>`` or ``<s> <p> ?o`` — removes rows without
    binding anything, so its membership test commutes all the way into
    the scan."""
    driver_slots = driver.slots
    remaining = []
    pushed = []
    for op in ops[1:]:
        if isinstance(op, NestedProbe) and not op.eqs:
            sc, ss, pc, ps, oc, os_ = op.step
            if (pc is not None and ps is None and sc is None and oc is not None
                    and ss in driver_slots and os_ is None):
                pushed.append((ss, "subjects", pc, oc, op))
                continue
            if (pc is not None and ps is None and oc is None and sc is not None
                    and os_ in driver_slots and ss is None):
                pushed.append((os_, "objects", sc, pc, op))
                continue
        remaining.append(op)
    return remaining, pushed


def _build_semijoin_filters(index, pushed, vctx: _VecCtx):
    """Sorted id arrays for each pushed probe, via the scan API (exact
    under delta overlays too — only ids are needed, not run positions)."""
    filters = []
    for slot, kind, key1, key2, op in pushed:
        if kind == "subjects":
            ids = index.scan_subjects(key1, key2)
        else:
            ids = index.scan_objects(key1, key2)
        arr = _np.sort(_np.asarray(ids, dtype=_np.int64))
        filters.append((slot, arr))
        vctx.pushed.append(op.pattern.to_sparql())
    return filters


def _membership_mask(col, sorted_ids):
    if not len(sorted_ids):
        return _np.zeros(len(col), dtype=bool)
    pos = _np.searchsorted(sorted_ids, col)
    pos_clipped = _np.minimum(pos, len(sorted_ids) - 1)
    return (pos < len(sorted_ids)) & (sorted_ids[pos_clipped] == col)


def _driver_batch(driver: _Driver, lo, hi, width, filters, eqs):
    """One morsel of the driving scan, as zero-copy column slices."""
    n = hi - lo
    cols: list = [None] * width
    if _np is not None:
        _a, b_np, c_np, _st = driver.run.as_numpy()
        by_slot = {
            slot: (c_np if which == "c" else b_np)[lo:hi]
            for slot, which in driver.bind
        }
        mask = None
        for a, b in eqs:
            part = by_slot[a] == by_slot[b]
            mask = part if mask is None else (mask & part)
        for slot, sorted_ids in filters:
            part = _membership_mask(by_slot[slot], sorted_ids)
            mask = part if mask is None else (mask & part)
        if mask is not None:
            idx = _np.nonzero(mask)[0]
            by_slot = {slot: col[idx] for slot, col in by_slot.items()}
            n = len(idx)
        for slot, col in by_slot.items():
            cols[slot] = col
        return Batch(cols, int(n))
    by_slot = {
        slot: (driver.run.c if which == "c" else driver.run.b)[lo:hi].tolist()
        for slot, which in driver.bind
    }
    if eqs:
        keep = [
            i for i in range(n)
            if all(by_slot[a][i] == by_slot[b][i] for a, b in eqs)
        ]
        by_slot = {slot: [col[i] for i in keep] for slot, col in by_slot.items()}
        n = len(keep)
    for slot, col in by_slot.items():
        cols[slot] = col
    return Batch(cols, n)


def _seed_batch(plan) -> Batch:
    return Batch([None] * plan.num_registers, 1)


def _morsel_ranges(driver: _Driver, batch_size: int):
    return [
        (start, min(start + batch_size, driver.hi))
        for start in range(driver.lo, driver.hi, batch_size)
    ]


# --------------------------------------------------------------------------
# Plan execution entry points
# --------------------------------------------------------------------------


def _prepare(plan, vctx: _VecCtx):
    """Resolve the schedule, driver, pushed filters and morsel ranges."""
    ops = vctx.tctx.schedule(plan.root, _EMPTY_MASK)
    driver = _find_driver(plan, ops)
    if driver is None:
        return None, ops, (), ()
    rest = list(ops[1:])
    filters = ()
    if _np is not None:
        rest, pushed = _find_pushdowns(driver, ops)
        if pushed:
            filters = _build_semijoin_filters(vctx.index, pushed, vctx)
    ranges = _morsel_ranges(driver, vctx.config.batch_size)
    vctx.morsels = len(ranges)
    return driver, tuple(rest), filters, ranges


def _serial_batches(plan, vctx, driver, rest, filters, ranges):
    if driver is None:
        vctx.check()
        out, _src = _fold(rest, _seed_batch(plan), vctx)
        if out.n:
            yield out
        return
    eqs = driver.op.eqs
    width = plan.num_registers
    for lo, hi in ranges:
        vctx.check()
        batch = _driver_batch(driver, lo, hi, width, filters, eqs)
        out, _src = _fold(rest, batch, vctx)
        if out.n:
            yield out


def iter_batches(plan, deadline, config: VecConfig | None = None,
                 vctx: _VecCtx | None = None):
    """Serial generator of final top-level batches (ASK / aggregation)."""
    config = config or _DEFAULT_CONFIG
    if plan.empty:
        plan.root.raise_rebinds([None] * plan.num_registers)
        return
    if vctx is None:
        vctx = _VecCtx(plan, deadline, config)
    driver, rest, filters, ranges = _prepare(plan, vctx)
    yield from _serial_batches(plan, vctx, driver, rest, filters, ranges)


def collect_batches(plan, deadline, config: VecConfig | None = None,
                    vctx: _VecCtx | None = None) -> list[Batch]:
    """All final batches, with morsels optionally fanned across threads.

    Output batches come back in morsel order, so the concatenated rows
    are byte-identical to the serial (and tuple-engine) row order.
    """
    config = config or _DEFAULT_CONFIG
    if plan.empty:
        plan.root.raise_rebinds([None] * plan.num_registers)
        return []
    if vctx is None:
        vctx = _VecCtx(plan, deadline, config)
    driver, rest, filters, ranges = _prepare(plan, vctx)
    if config.parallel <= 1 or driver is None or len(ranges) <= 1:
        return list(_serial_batches(plan, vctx, driver, rest, filters, ranges))
    eqs = driver.op.eqs
    width = plan.num_registers

    def morsel(bounds):
        lo, hi = bounds
        vctx.check()
        batch = _driver_batch(driver, lo, hi, width, filters, eqs)
        out, _src = _fold(rest, batch, vctx)
        return out

    workers = min(config.parallel, len(ranges))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        outs = list(pool.map(morsel, ranges))
    return [b for b in outs if b.n]


def vec_any(plan, deadline, config: VecConfig | None = None) -> bool:
    """Whether the pipeline produces at least one row (lazy morsels)."""
    for _batch in iter_batches(plan, deadline, config):
        return True
    return False


def _decoded_columns(plan, batch: Batch, vctx: _VecCtx, slot_items):
    """Per-slot decoded term lists (None entries for unbound cells),
    decoding each distinct id once through the shared memo."""
    decode = vctx.tctx.decode
    columns = []
    for variable, slot in slot_items:
        col = batch.cols[slot]
        if col is None:
            columns.append((variable, None))
            continue
        if _np is not None and not isinstance(col, list):
            uniq, inverse = _np.unique(col, return_inverse=True)
            table = [
                None if term_id == UNBOUND else decode(term_id)
                for term_id in uniq.tolist()
            ]
            columns.append((variable, [table[j] for j in inverse.tolist()]))
        else:
            columns.append((variable, [
                None if term_id == UNBOUND else decode(term_id)
                for term_id in col
            ]))
    return columns


def vec_solutions(plan, deadline, config: VecConfig | None = None,
                  vctx: _VecCtx | None = None) -> list:
    """Decoded bindings, row order identical to ``WherePlan.solutions``."""
    config = config or _DEFAULT_CONFIG
    if vctx is None:
        vctx = _VecCtx(plan, deadline, config)
    out: list = []
    for batch in collect_batches(plan, deadline, config, vctx):
        columns = _decoded_columns(plan, batch, vctx, plan.slot_items)
        bound = [(v, c) for v, c in columns if c is not None]
        for i in range(batch.n):
            binding = {}
            for variable, cells in bound:
                term = cells[i]
                if term is not None:
                    binding[variable] = term
            out.append(binding)
    return out


def vec_rows(plan, variables, deadline, config: VecConfig | None = None,
             vctx: _VecCtx | None = None) -> list:
    """Projected result rows built straight from batch columns — no
    binding dicts.  Only valid when every projection is a bare variable
    (the caller checks); unknown variables project as None."""
    config = config or _DEFAULT_CONFIG
    if vctx is None:
        vctx = _VecCtx(plan, deadline, config)
    slots = plan.slots
    rows: list = []
    for batch in collect_batches(plan, deadline, config, vctx):
        per_var = []
        for variable in variables:
            slot = slots.get(variable)
            if slot is None:
                per_var.append([None] * batch.n)
            else:
                decoded = _decoded_columns(
                    plan, batch, vctx, ((variable, slot),)
                )[0][1]
                per_var.append(decoded if decoded is not None
                               else [None] * batch.n)
        if per_var:
            rows.extend(zip(*per_var))
        else:
            rows.extend(() for _ in range(batch.n))
    return rows


# --------------------------------------------------------------------------
# Static analysis (explain)
# --------------------------------------------------------------------------


class _NullDeadline:
    expires_at = None

    @staticmethod
    def check() -> None:
        return None


def analyze_plan(plan, batch_size: int | None = None,
                 parallel: int | None = None) -> dict:
    """What batched execution would do — for ``explain()`` rendering.

    Returns backend, batch size, morsel count estimate, the pushed
    semi-join filters (pattern strings), and whether a morselizable
    driving scan exists.  Purely static: nothing is executed.
    """
    config = VecConfig(batch_size=batch_size, parallel=parallel)
    info = {
        "backend": backend_name(),
        "batch_size": config.batch_size,
        "parallel": config.parallel,
        "driver": None,
        "morsels": 0,
        "pushed": [],
    }
    if plan is None or getattr(plan, "empty", True):
        return info
    vctx = _VecCtx(plan, _NullDeadline(), config)
    ops = vctx.tctx.schedule(plan.root, _EMPTY_MASK)
    driver = _find_driver(plan, ops)
    if driver is None:
        return info
    info["driver"] = driver.op.pattern.to_sparql()
    info["morsels"] = max(1, len(_morsel_ranges(driver, config.batch_size)))
    if _np is not None:
        _rest, pushed = _find_pushdowns(driver, ops)
        info["pushed"] = [item[4].pattern.to_sparql() for item in pushed]
    return info
