"""Unified id-space physical operators for SPARQL query bodies.

:mod:`repro.sparql.compiler` lowers *flat* basic graph patterns into
id-space join plans; everything else a WHERE clause can hold — OPTIONAL
decorations, UNION'd interpretation combinations, VALUES member lists,
``skos:broader``-style property paths — used to fall back to the
term-space interpreter, leaving the codebase with two engines.  This
module is the single physical plan layer that closes the gap: a small
set of streaming operators in the classic Volcano/iterator style, all
working over one register file of integer term ids.

Operator taxonomy (one class per physical operator):

* :class:`IndexScan` / :class:`NestedProbe` — one triple-pattern join
  step probing the SPO/POS/OSP permutation indexes; *scan* when the
  pattern shares no variable with what is already bound, *probe* when it
  extends bound registers (the id-space analogue of an index nested-loop
  join);
* :class:`FilterOp` — evaluates FILTER constraints through
  register-level expression programs (:mod:`repro.sparql.rexpr`) that
  read integer registers directly and decode each distinct id once;
  errors remove the row, per SPARQL;
* :class:`ValuesBind` — joins compile-time-encoded VALUES rows against
  the register file (UNDEF leaves a register untouched);
* :class:`BindOp` — BIND: a register program computes a term per row
  and writes its id into a fresh register, minting execution-local
  pseudo ids for terms the store has never seen; an erroring expression
  leaves the register untouched;
* :class:`SubqueryScan` — a nested ``{ SELECT ... }`` compiled to its
  own plan (plain or aggregate), executed bottom-up once per query and
  joined against the register file exactly like VALUES rows;
* :class:`LeftJoin` — OPTIONAL: runs an inner pipeline per row and
  passes the row through unchanged when the inner produces nothing;
* :class:`UnionOp` — runs each branch pipeline per row, concatenating
  branch outputs in branch order;
* :class:`ExistsJoin` — FILTER [NOT] EXISTS as a correlated semi/anti
  join: the inner pipeline runs per row, stops at the first match, and
  the row survives when matchedness disagrees with negation;
* :class:`MinusJoin` — MINUS as an anti-join on shared-variable
  compatibility: the uncorrelated right side materializes once per
  execution and a row is dropped when some right row shares at least
  one bound register and agrees on all shared ones;
* :class:`PathClosure` — property-path evaluation entirely in id space:
  BFS over the POS/OSP integer indexes with per-execution memoized
  reachability frontiers (see :func:`_reachable_ids`);
* :class:`OrderLimit` — ORDER BY with the bounded top-k heap; shared
  verbatim by the compiled and term-space engines so tie-breaking can
  never diverge between them;
* ``AggregateFold`` — the terminal grouping/accumulator stage lives in
  :mod:`repro.sparql.aggregator` (``AggregatePlan``) and consumes this
  module's row stream.

Groups compile to :class:`GroupPipeline` objects rather than flat
operator lists because the term-space interpreter — which stays behind
``compile=False`` as the differential oracle — schedules FILTERs
against the set of variables *actually bound in the incoming binding*:
for a nested group (an OPTIONAL body, a UNION branch) that set is a
per-row property.  The pipeline therefore keeps its filters unplaced at
compile time and interleaves them at execution, memoized per
(group, entry-mask), reproducing ``Evaluator._eval_group``'s attachment
points exactly: ready filters attach after pattern join steps only, and
whatever is left runs at the end of the group.

Constants the dictionary has never seen get *pseudo ids* (negative,
plan-local): they can never equal a real id, so joins against them fail
exactly as term comparison would, while zero-length path semantics and
decode-at-the-boundary still work.  A never-seen constant in a plain
triple pattern short-circuits its *group* to the empty pipeline — only
its group, so an OPTIONAL over it still passes rows through and a UNION
branch over it merely contributes nothing.

Constants the store has never seen get compile-time pseudo ids; terms
*computed* at runtime (BIND results, subquery cells) that the store has
never seen get execution-local pseudo ids minted by
:meth:`_ExecContext.encode`, continuing the same negative id space past
the plan's ``extra_terms`` table.  Minting is locked (morsel-parallel
workers share one context) and consistent — the same term always maps
to the same id within an execution — so id equality remains term
equality everywhere downstream.

:func:`compile_where` returns ``(plan, None)`` or ``(None, reason)``;
the decline reason strings feed the endpoint's per-reason fallback
tally.  Shapes that still decline — and why:

* ``path-shape`` — a property-path construct outside the compiled path
  program forms;
* ``no-id-backend`` — multi-graph union views have no shared id space.

BIND, FILTER [NOT] EXISTS, MINUS and subqueries used to decline too
(reasons ``bind`` / ``exists-filter`` / ``minus`` / ``subquery``); they
now lower onto :class:`BindOp`, :class:`ExistsJoin`, :class:`MinusJoin`
and :class:`SubqueryScan`, so the term-space interpreter stays behind
``compile=False`` purely as the differential oracle.  A subquery whose
*inner* query declines (e.g. an unsupported aggregate shape) propagates
the inner reason outward.

A repeated variable within one pattern (``?x <p> ?x``) used to decline
too; it now compiles by binding the second occurrence into a scratch
register and enforcing the intra-pattern join with a register-equality
check fused into the step (see :meth:`_Lowering._lower_step`).

Plans are immutable after compilation and hold no per-execution state
(each execution builds a private :class:`_ExecContext`), so the serving
cache's plans tier may share them across threads, keyed by
``(where-group, optimize, graph uid, epoch)``.
"""

from __future__ import annotations

import heapq
import threading
from typing import Iterable, Iterator

from ..errors import QueryEvaluationError
from ..rdf.terms import IRI, Node, Variable
from .ast import (
    AlternativePath,
    BindClause,
    ExistsFilter,
    Filter,
    GroupGraphPattern,
    InversePath,
    MinusPattern,
    OneOrMorePath,
    OptionalPattern,
    OrderCondition,
    PropertyPath,
    SequencePath,
    SubSelect,
    TriplePattern,
    UnionPattern,
    ValuesClause,
    ZeroOrMorePath,
)
from .compiler import id_backend
from .expressions import ExpressionError, effective_boolean_value, evaluate
from .optimizer import estimate_cardinality, order_patterns
from .rexpr import compile_expression

__all__ = [
    "WherePlan",
    "compile_where",
    "OrderLimit",
    "GroupPipeline",
    "IndexScan",
    "NestedProbe",
    "FilterOp",
    "ValuesBind",
    "BindOp",
    "SubqueryScan",
    "LeftJoin",
    "UnionOp",
    "ExistsJoin",
    "MinusJoin",
    "PathClosure",
]

Binding = dict[Variable, Node]

_EMPTY_MASK: frozenset = frozenset()


class _Decline(Exception):
    """Raised during lowering for a shape the operator set cannot take."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _ExecContext:
    """Per-execution state: deadline, codec memos, schedule and path memos.

    The context is also the execution-local *value codec*: ``decode``
    memoizes id → term for both store ids and pseudo ids, and ``encode``
    maps a computed term back to an id — the store's id when the term is
    stored, the plan's compile-time pseudo id when the plan already
    tabled it, or a freshly minted execution-local pseudo id otherwise.
    Minting continues the negative id space past ``extra_terms`` and
    takes a lock, because morsel-parallel batch workers share one
    context: the decode/schedule memos tolerate benign races (idempotent
    caches), but two threads must never hand the same term different
    ids.
    """

    __slots__ = (
        "index", "check", "decode_raw", "memo", "path_memo", "schedules",
        "deadline", "dictionary", "num_registers", "_pseudo", "_mint_base",
        "runtime_terms", "_minted", "_mint_lock", "op_memo",
    )

    def __init__(self, plan: "WherePlan", deadline):
        self.index = plan.index
        self.check = deadline.check
        self.deadline = deadline
        self.decode_raw = plan.decode
        self.dictionary = plan.dictionary
        self.num_registers = plan.num_registers
        self._pseudo = plan.pseudo_ids
        self._mint_base = len(plan.extra_terms)
        self.runtime_terms: list[Node] = []
        self._minted: dict[Node, int] = {}
        self._mint_lock = threading.Lock()
        self.memo: dict[int, Node] = {}
        self.path_memo: dict[tuple, list[int]] = {}
        self.schedules: dict[tuple, tuple] = {}
        self.op_memo: dict[int, tuple] = {}

    def decode(self, term_id: int) -> Node:
        term = self.memo.get(term_id)
        if term is None:
            if term_id < 0 and -1 - term_id >= self._mint_base:
                term = self.runtime_terms[-1 - term_id - self._mint_base]
            else:
                term = self.decode_raw(term_id)
            self.memo[term_id] = term
        return term

    def encode(self, term: Node) -> int:
        """The term's store id, plan pseudo id, or a fresh runtime mint."""
        term_id = self.dictionary.lookup(term)
        if term_id is not None:
            return term_id
        pseudo = self._pseudo.get(term)
        if pseudo is not None:
            return pseudo
        minted = self._minted.get(term)
        if minted is None:
            with self._mint_lock:
                minted = self._minted.get(term)
                if minted is None:
                    minted = -1 - self._mint_base - len(self.runtime_terms)
                    self.runtime_terms.append(term)
                    self._minted[term] = minted
        return minted

    def schedule(self, pipeline: "GroupPipeline", mask: frozenset) -> tuple:
        key = (pipeline.gid, mask)
        ops = self.schedules.get(key)
        if ops is None:
            ops = pipeline.build_schedule(mask)
            self.schedules[key] = ops
        return ops


def _run_pipeline(ops, rows, ctx) -> Iterator[list]:
    """Chain a sub-pipeline lazily over ``rows``."""
    for op in ops:
        rows = op.run(rows, ctx)
    return rows


# --------------------------------------------------------------------------
# Operators
# --------------------------------------------------------------------------


class PhysicalOp:
    """Base class: a streaming transformer of register-file rows."""

    kind = "Op"
    estimate: int | None = None
    __slots__ = ()

    def run(self, rows: Iterable[list], ctx: _ExecContext) -> Iterator[list]:
        raise NotImplementedError

    def children(self) -> tuple[tuple[str, "GroupPipeline"], ...]:
        """Sub-pipelines, as (label, pipeline) pairs — for explain."""
        return ()

    def describe(self) -> str:
        return ""


class _StepOp(PhysicalOp):
    """One triple-pattern join step over the integer indexes.

    ``step`` is ``(s_const, s_slot, p_const, p_slot, o_const, o_slot)``:
    for each position exactly one of (encoded constant, register slot)
    is set.  A slot whose register is still ``None`` acts as a wildcard.

    ``eqs`` holds register-equality pairs for patterns that repeat a
    variable (``?x <p> ?x``): the repeated occurrence binds a scratch
    register and each ``(canonical, scratch)`` pair must agree after the
    step — the id-space analogue of the interpreter's bind-consistency
    check.  Both registers are always bound once the step has run, so
    plain integer equality suffices.
    """

    __slots__ = ("pattern", "step", "estimate", "eqs")

    def __init__(self, pattern: TriplePattern, step: tuple, estimate: int | None,
                 eqs: tuple = ()):
        self.pattern = pattern
        self.step = step
        self.estimate = estimate
        self.eqs = eqs

    def describe(self) -> str:
        return self.pattern.to_sparql()

    def run(self, rows, ctx):
        out = self._run_plain(rows, ctx)
        if not self.eqs:
            return out
        return _eq_filter(out, self.eqs)

    def _run_plain(self, rows, ctx):
        sc, ss, pc, ps, oc, os_ = self.step
        index = ctx.index
        scan_objects = index.scan_objects
        scan_subjects = index.scan_subjects
        scan_predicates = index.scan_predicates
        predicate_pairs = index.predicate_pairs
        contains = index.contains
        match = index.match
        check = ctx.check
        for row in rows:
            s = sc if ss is None else row[ss]
            p = pc if ps is None else row[ps]
            o = oc if os_ is None else row[os_]
            # The three ≥2-bound shapes go through the layout-agnostic
            # scan API (contiguous run slices on the columnar layout)
            # and bind at most one register.
            if s is not None and p is not None:
                if o is not None:
                    check()
                    if contains(s, p, o):
                        yield row  # fully bound: the row is unchanged
                    continue
                for oid in scan_objects(s, p):
                    check()
                    new = row.copy()
                    new[os_] = oid
                    yield new
                continue
            if p is not None and o is not None:
                for sid in scan_subjects(p, o):
                    check()
                    new = row.copy()
                    new[ss] = sid
                    yield new
                continue
            if s is not None and o is not None:
                for pid in scan_predicates(s, o):
                    check()
                    new = row.copy()
                    new[ps] = pid
                    yield new
                continue
            if p is not None:
                # ?s <p> ?o — the IndexScan workhorse.  The pair stream
                # is two zipped column slices on the columnar layout, so
                # the loop body is one row copy + two register writes
                # per triple of the predicate's contiguous range.
                for sid, oid in predicate_pairs(p):
                    check()
                    new = row.copy()
                    new[ss] = sid
                    new[os_] = oid
                    yield new
                continue
            for sid, pid, oid in match(s, p, o):
                check()
                new = row.copy()
                if ss is not None:
                    new[ss] = sid
                if ps is not None:
                    new[ps] = pid
                if os_ is not None:
                    new[os_] = oid
                yield new


def _eq_filter(rows, eqs):
    """Keep only rows whose paired registers agree (repeated variables)."""
    for row in rows:
        for a, b in eqs:
            if row[a] != row[b]:
                break
        else:
            yield row


class IndexScan(_StepOp):
    """A step sharing no variable with anything possibly bound before it."""

    kind = "IndexScan"
    __slots__ = ()


class NestedProbe(_StepOp):
    """A step extending already-bound registers (index nested-loop join)."""

    kind = "NestedProbe"
    __slots__ = ()


class _FilterUnit:
    """One FILTER constraint: variable set, register slots, and its
    compiled register program."""

    __slots__ = ("constraint", "variables", "slot_items", "program")

    def __init__(self, constraint: Filter, variables: frozenset, slot_items: tuple,
                 program):
        self.constraint = constraint
        self.variables = variables
        self.slot_items = slot_items
        self.program = program


class FilterOp(PhysicalOp):
    """FILTER constraints evaluated as register programs.

    Each constraint is compiled once (:mod:`repro.sparql.rexpr`) against
    the plan's slot map; at execution it reads integer registers
    directly and decodes through the context's memoized codec — no
    binding dicts.  A variable with no register (never bound anywhere in
    the plan) compiles to an always-error closure, so evaluation errors
    and removes the row — the term-space engine's behaviour for filters
    over unbound variables.
    """

    kind = "Filter"
    __slots__ = ("slot_items", "filters", "programs")

    def __init__(self, units: tuple[_FilterUnit, ...]):
        merged: dict[Variable, int] = {}
        for unit in units:
            for variable, slot in unit.slot_items:
                merged[variable] = slot
        self.slot_items = tuple(merged.items())
        self.filters = tuple(unit.constraint for unit in units)
        self.programs = tuple(unit.program for unit in units)

    def describe(self) -> str:
        return ", ".join(f.expression.to_sparql() for f in self.filters)

    def run(self, rows, ctx):
        decode = ctx.decode
        programs = self.programs
        check = ctx.check
        for row in rows:
            check()
            keep = True
            for program in programs:
                try:
                    if not effective_boolean_value(program(row, decode)):
                        keep = False
                        break
                except ExpressionError:
                    keep = False  # SPARQL: an erroring filter removes the row.
                    break
            if keep:
                yield row


class ValuesBind(PhysicalOp):
    """Join compile-time-encoded VALUES rows against the register file."""

    kind = "ValuesBind"
    __slots__ = ("clause", "cell_slots", "encoded_rows")

    def __init__(self, clause: ValuesClause, cell_slots: tuple[int, ...],
                 encoded_rows: tuple[tuple, ...]):
        self.clause = clause
        self.cell_slots = cell_slots
        self.encoded_rows = encoded_rows

    def describe(self) -> str:
        names = " ".join(v.n3() for v in self.clause.variables_)
        return f"{names}: {len(self.encoded_rows)} rows"

    def run(self, rows, ctx):
        cell_slots = self.cell_slots
        encoded_rows = self.encoded_rows
        check = ctx.check
        for row in rows:
            for value_row in encoded_rows:
                check()
                new = None
                compatible = True
                for slot, value_id in zip(cell_slots, value_row):
                    if value_id is None:  # UNDEF leaves the register as-is.
                        continue
                    current = row[slot] if new is None else new[slot]
                    if current is None:
                        if new is None:
                            new = row.copy()
                        new[slot] = value_id
                    elif current != value_id:
                        compatible = False
                        break
                if compatible:
                    yield row if new is None else new


class BindOp(PhysicalOp):
    """BIND: a register program computes a term and writes a register.

    The computed term is encoded through the execution context — store
    id when the store holds it, plan pseudo id when the plan tabled it
    at compile time, execution-local mint otherwise — so downstream
    joins, MINUS compatibility checks and decode-at-the-boundary all
    keep working on ids.  An erroring expression leaves the register
    exactly as it was (per SPARQL, an erroring BIND leaves the variable
    unbound — or, when an OPTIONAL bound it earlier, untouched).
    """

    kind = "Bind"
    __slots__ = ("bind", "slot", "program")

    def __init__(self, bind: BindClause, slot: int, program):
        self.bind = bind
        self.slot = slot
        self.program = program

    def describe(self) -> str:
        return self.bind.to_sparql()

    def run(self, rows, ctx):
        program = self.program
        slot = self.slot
        decode = ctx.decode
        encode = ctx.encode
        check = ctx.check
        for row in rows:
            check()
            try:
                term = program(row, decode)
            except ExpressionError:
                yield row
                continue
            new = row.copy()
            new[slot] = encode(term)
            yield new


class _BindRebind(PhysicalOp):
    """A BIND whose target variable is already in scope: always an error.

    The interpreter raises the moment the group is evaluated — even with
    zero solutions — so this op raises on first pull rather than per
    row.  It is emitted at compile time when the rebinding is statically
    certain (the variable is bound by the group itself) and substituted
    into the schedule per entry mask when it depends on what the
    incoming row binds.
    """

    kind = "Bind"
    __slots__ = ("bind",)

    def __init__(self, bind: BindClause):
        self.bind = bind

    def describe(self) -> str:
        return f"{self.bind.to_sparql()} — rebinds in-scope variable"

    def run(self, rows, ctx):
        raise QueryEvaluationError(
            f"BIND would rebind in-scope variable {self.bind.variable.n3()}"
        )
        yield  # pragma: no cover — generator protocol; the raise always fires


class SubqueryScan(PhysicalOp):
    """A nested ``{ SELECT ... }`` executed bottom-up and joined like VALUES.

    The inner query compiles to its own plan (plain or fused-aggregate)
    at lowering time; at execution the runner produces its result rows
    once per query (memoized on the context), the cells encode through
    the context codec (minting ids for computed terms such as aggregate
    results), and the encoded rows join against the register file with
    the exact UNDEF-skipping loop :class:`ValuesBind` uses.
    """

    kind = "SubqueryScan"
    __slots__ = ("sub", "runner", "variables", "cell_slots", "inner_root")

    def __init__(self, sub: SubSelect, runner, variables: tuple,
                 cell_slots: tuple[int, ...], inner_root):
        self.sub = sub
        self.runner = runner
        self.variables = variables
        self.cell_slots = cell_slots
        self.inner_root = inner_root

    def children(self):
        if self.inner_root is None:
            return ()
        return (("subquery", self.inner_root),)

    def describe(self) -> str:
        return "SELECT " + " ".join(v.n3() for v in self.variables)

    def encoded_rows(self, ctx) -> tuple[tuple, ...]:
        rows = ctx.op_memo.get(id(self))
        if rows is None:
            out = self.runner(ctx.deadline)
            rows = tuple(
                tuple(None if term is None else ctx.encode(term) for term in row)
                for row in out
            )
            ctx.op_memo[id(self)] = rows
        return rows

    def run(self, rows, ctx):
        cell_slots = self.cell_slots
        encoded_rows = self.encoded_rows(ctx)
        check = ctx.check
        for row in rows:
            for value_row in encoded_rows:
                check()
                new = None
                compatible = True
                for slot, value_id in zip(cell_slots, value_row):
                    if value_id is None:  # an unbound cell leaves the register
                        continue
                    current = row[slot] if new is None else new[slot]
                    if current is None:
                        if new is None:
                            new = row.copy()
                        new[slot] = value_id
                    elif current != value_id:
                        compatible = False
                        break
                if compatible:
                    yield row if new is None else new


class LeftJoin(PhysicalOp):
    """OPTIONAL: per-row left join against an inner group pipeline."""

    kind = "LeftJoin"
    __slots__ = ("optional", "inner")

    def __init__(self, optional: OptionalPattern, inner: "GroupPipeline"):
        self.optional = optional
        self.inner = inner

    def children(self):
        return (("optional", self.inner),)

    def run(self, rows, ctx):
        inner = self.inner
        for row in rows:
            matched = False
            for out in inner.run_row(row, ctx):
                matched = True
                yield out
            if not matched:
                yield row


class UnionOp(PhysicalOp):
    """UNION: per-row evaluation of every branch pipeline, concatenated."""

    kind = "Union"
    __slots__ = ("union", "branches")

    def __init__(self, union: UnionPattern, branches: tuple["GroupPipeline", ...]):
        self.union = union
        self.branches = branches

    def children(self):
        return tuple(
            (f"branch {i + 1}", branch) for i, branch in enumerate(self.branches)
        )

    def run(self, rows, ctx):
        branches = self.branches
        for row in rows:
            for branch in branches:
                yield from branch.run_row(row, ctx)


class ExistsJoin(PhysicalOp):
    """FILTER [NOT] EXISTS as a correlated semi/anti join.

    The inner pipeline sees the outer row (correlated registers probe,
    free ones scan), stops at the first match, and never leaks inner
    bindings — inner steps write to copies.  The row survives when
    matchedness disagrees with negation.
    """

    kind = "Exists"
    __slots__ = ("exists", "inner")

    def __init__(self, exists: ExistsFilter, inner: "GroupPipeline"):
        self.exists = exists
        self.inner = inner

    def children(self):
        return (("exists", self.inner),)

    def describe(self) -> str:
        return "NOT EXISTS" if self.exists.negated else "EXISTS"

    def run(self, rows, ctx):
        inner = self.inner
        negated = self.exists.negated
        check = ctx.check
        for row in rows:
            check()
            matched = False
            for _out in inner.run_row(row, ctx):
                matched = True
                break
            if matched != negated:
                yield row


class MinusJoin(PhysicalOp):
    """MINUS as an anti-join on shared-variable compatibility.

    The right side is uncorrelated (the interpreter evaluates it from an
    empty binding), so it materializes once per execution, memoized on
    the context.  A left row is removed when some right row shares at
    least one bound register with it and agrees on every register both
    sides bind — id equality is term equality because both sides encode
    through the same execution codec.
    """

    kind = "Minus"
    __slots__ = ("minus", "inner", "shared_slots")

    def __init__(self, minus: MinusPattern, inner: "GroupPipeline",
                 shared_slots: tuple[int, ...]):
        self.minus = minus
        self.inner = inner
        self.shared_slots = shared_slots

    def children(self):
        return (("minus", self.inner),)

    def right_rows(self, ctx) -> tuple:
        right = ctx.op_memo.get(id(self))
        if right is None:
            if self.inner.empty:
                self.inner.raise_rebinds([None] * ctx.num_registers)
                right = ()
            else:
                seed = [None] * ctx.num_registers
                right = tuple(self.inner.run_row(seed, ctx))
            ctx.op_memo[id(self)] = right
        return right

    def run(self, rows, ctx):
        right = self.right_rows(ctx)
        shared_slots = self.shared_slots
        check = ctx.check
        for row in rows:
            check()
            removed = False
            for other in right:
                shared = False
                agree = True
                for slot in shared_slots:
                    left_id = row[slot]
                    right_id = other[slot]
                    if left_id is None or right_id is None:
                        continue
                    if left_id != right_id:
                        agree = False
                        break
                    shared = True
                if shared and agree:
                    removed = True
                    break
            if not removed:
                yield row


class PathClosure(PhysicalOp):
    """Property-path evaluation entirely in id space.

    The path AST is compiled to a nested-tuple program over predicate
    ids; closure steps (``+`` / ``*``) run BFS over the POS/OSP integer
    maps with reachability frontiers memoized per execution, so repeated
    expansions from the same node — the common case when a closure sits
    mid-join — are O(1) after the first.  Pair semantics (per-pattern
    deduplication, zero-length closure restricted to path-incident nodes
    when both ends are free, cycle-back-to-start for ``+``) mirror
    :mod:`repro.sparql.paths` exactly.
    """

    kind = "PathClosure"
    __slots__ = ("pattern", "path", "s_const", "s_slot", "o_const", "o_slot",
                 "estimate")

    def __init__(self, pattern: TriplePattern, path: tuple,
                 s_const, s_slot, o_const, o_slot, estimate: int | None):
        self.pattern = pattern
        self.path = path
        self.s_const = s_const
        self.s_slot = s_slot
        self.o_const = o_const
        self.o_slot = o_slot
        self.estimate = estimate

    def describe(self) -> str:
        return self.pattern.to_sparql()

    def run(self, rows, ctx):
        s_const, s_slot = self.s_const, self.s_slot
        o_const, o_slot = self.o_const, self.o_slot
        same_slot = s_slot is not None and s_slot == o_slot
        path = self.path
        check = ctx.check
        for row in rows:
            s = s_const if s_slot is None else row[s_slot]
            o = o_const if o_slot is None else row[o_slot]
            if same_slot and s is None:
                # ``?x path ?x``: enumerate free pairs, keep the diagonal.
                for sid, oid in _path_pairs(ctx, path, None, None):
                    check()
                    if sid == oid:
                        new = row.copy()
                        new[s_slot] = sid
                        yield new
                continue
            bind_s = s_slot is not None and s is None
            bind_o = o_slot is not None and o is None
            for sid, oid in _path_pairs(ctx, path, s, o):
                check()
                if bind_s or bind_o:
                    new = row.copy()
                    if bind_s:
                        new[s_slot] = sid
                    if bind_o:
                        new[o_slot] = oid
                    yield new
                else:
                    yield row


# --------------------------------------------------------------------------
# Id-space path programs
#
# Compiled form: ("iri", pid) | ("inv", sub) | ("alt", (subs...)) |
# ("seq", (subs...)) | ("closure", sub, include_zero, key).  ``key`` is a
# plan-unique integer identifying the closure node in the frontier memo.
# --------------------------------------------------------------------------


def _path_pairs(ctx, path, s, o):
    """Deduplicated (subject id, object id) pairs, like ``eval_path``."""
    seen: set[tuple] = set()
    for pair in _path_eval(ctx, path, s, o):
        if pair not in seen:
            seen.add(pair)
            yield pair


def _path_eval(ctx, node, s, o):
    kind = node[0]
    if kind == "iri":
        pid = node[1]
        index = ctx.index
        if s is not None:
            if o is not None:
                if index.contains(s, pid, o):
                    yield (s, o)
                return
            for oid in index.scan_objects(s, pid):
                yield (s, oid)
            return
        if o is not None:
            for sid in index.scan_subjects(pid, o):
                yield (sid, o)
            return
        yield from index.predicate_pairs(pid)
        return
    if kind == "inv":
        for sid, oid in _path_eval(ctx, node[1], o, s):
            yield (oid, sid)
        return
    if kind == "alt":
        for option in node[1]:
            yield from _path_eval(ctx, option, s, o)
        return
    if kind == "seq":
        yield from _path_sequence(ctx, node[1], s, o)
        return
    # closure
    _tag, step, include_zero, key = node
    if s is not None:
        for target in _reachable_ids(ctx, step, key, s, include_zero, True):
            if o is None or target == o:
                yield (s, target)
        return
    if o is not None:
        for source in _reachable_ids(ctx, step, key, o, include_zero, False):
            yield (source, o)
        return
    # Both ends free: forward BFS from every inner-path subject (and, for
    # zero-length closures, every inner-path object).
    starts: set[int] = set()
    for sid, oid in _path_eval(ctx, step, None, None):
        starts.add(sid)
        if include_zero:
            starts.add(oid)
    for start in starts:
        for target in _reachable_ids(ctx, step, key, start, include_zero, True):
            yield (start, target)


def _reachable_ids(ctx, step, key, start, include_zero, forward):
    """BFS closure over ids, memoized per execution.

    The deadline is checked once per *edge* scanned (not just per
    frontier hop), so an adversarially deep or bushy hierarchy cannot
    run far past its budget between checks.
    """
    memo_key = (key, start, include_zero, forward)
    cached = ctx.path_memo.get(memo_key)
    if cached is not None:
        return cached
    check = ctx.check
    found: list[int] = [start] if include_zero else []
    seen: set[int] = {start}
    frontier = [start]
    while frontier:
        check()
        node = frontier.pop()
        pairs = (
            _path_eval(ctx, step, node, None)
            if forward else _path_eval(ctx, step, None, node)
        )
        for sid, oid in pairs:
            check()
            neighbor = oid if forward else sid
            if neighbor not in seen:
                seen.add(neighbor)
                found.append(neighbor)
                frontier.append(neighbor)
            elif neighbor == start and not include_zero and start not in found:
                found.append(start)  # cycle back to the start counts for '+'
    ctx.path_memo[memo_key] = found
    return found


def _path_sequence(ctx, steps, s, o):
    if len(steps) == 1:
        yield from _path_eval(ctx, steps[0], s, o)
        return
    check = ctx.check
    if s is not None or o is None:
        head, rest = steps[0], steps[1:]
        for sid, middle in _path_eval(ctx, head, s, None):
            check()
            for _mid, oid in _path_sequence(ctx, rest, middle, o):
                yield (sid, oid)
        return
    # Only the object is bound: traverse backwards to avoid a full scan.
    front, tail = steps[:-1], steps[-1]
    for middle, oid in _path_eval(ctx, tail, None, o):
        check()
        for sid, _mid in _path_sequence(ctx, front, None, middle):
            yield (sid, oid)


# --------------------------------------------------------------------------
# Group pipelines
# --------------------------------------------------------------------------


class GroupPipeline:
    """One WHERE group, lowered: ordered operators + unplaced filters.

    Filter placement replicates the term-space interpreter exactly, and
    there it depends on which variables the *incoming binding* already
    holds — a per-row property for nested groups.  So the pipeline keeps
    its filters aside and :meth:`build_schedule` interleaves them for a
    given entry mask (the set of filter-relevant variables bound on
    entry): ready filters attach after pattern join steps only, and the
    remainder runs at the end of the group.  Schedules are memoized per
    execution, keyed by ``(group id, mask)``.
    """

    __slots__ = ("gid", "values_ops", "pattern_ops", "tail_ops", "filter_units",
                 "relevant_items", "values_vars", "empty_pattern")

    def __init__(self, gid: int, values_ops: tuple, pattern_ops: tuple,
                 tail_ops: tuple, filter_units: tuple,
                 relevant_items: tuple, empty_pattern: TriplePattern | None):
        self.gid = gid
        self.values_ops = values_ops
        self.pattern_ops = pattern_ops
        self.tail_ops = tail_ops
        self.filter_units = filter_units
        self.relevant_items = relevant_items
        self.values_vars = frozenset(
            v
            for op in values_ops
            for v in (
                op.clause.variables_ if isinstance(op, ValuesBind) else op.variables
            )
        )
        self.empty_pattern = empty_pattern

    @property
    def empty(self) -> bool:
        return self.empty_pattern is not None

    def entry_mask(self, row: list) -> frozenset:
        """Which filter-relevant variables the row already binds."""
        if not self.relevant_items:
            return _EMPTY_MASK
        return frozenset(
            variable for variable, slot in self.relevant_items
            if row[slot] is not None
        )

    def build_schedule(self, mask: frozenset) -> tuple:
        """Interleave filters with the operator sequence for one mask.

        Mirrors ``Evaluator._eval_group``: VALUES and subquery joins
        first (no readiness checks), then pattern steps with ready
        filters attached after each, then UNION/OPTIONAL/BIND/EXISTS/
        MINUS operators (no checks — the interpreter only tests
        readiness inside its pattern loop), then every filter still
        pending at the end of the group.

        A :class:`BindOp` whose target variable the entry mask already
        binds is substituted with the always-raising rebind check — the
        interpreter's in-scope test counts the incoming binding's
        variables, which for nested groups is a per-row property.
        """
        ops: list[PhysicalOp] = list(self.values_ops)
        available = set(mask) | self.values_vars
        pending = list(self.filter_units)
        for op, pattern_vars in self.pattern_ops:
            ops.append(op)
            available |= pattern_vars
            if pending:
                ready = [u for u in pending if u.variables <= available]
                if ready:
                    pending = [u for u in pending if u not in ready]
                    ops.append(FilterOp(tuple(ready)))
        for op in self.tail_ops:
            if isinstance(op, BindOp) and op.bind.variable in mask:
                ops.append(_BindRebind(op.bind))
            else:
                ops.append(op)
        if pending:
            ops.append(FilterOp(tuple(pending)))
        return tuple(ops)

    def raise_rebinds(self, row: list) -> None:
        """The rebind error an empty group still owes for ``row``.

        The interpreter checks BIND scope the moment a group is
        evaluated — before it could know the group yields nothing — so a
        group short-circuited at compile time (never-seen constant) must
        still raise for a statically-certain rebind, or for a BIND whose
        target the incoming row already binds.
        """
        for op in self.tail_ops:
            if isinstance(op, _BindRebind) or (
                isinstance(op, BindOp) and row[op.slot] is not None
            ):
                raise QueryEvaluationError(
                    f"BIND would rebind in-scope variable "
                    f"{op.bind.variable.n3()}"
                )

    def run_row(self, row: list, ctx: _ExecContext) -> Iterator[list]:
        """Run the group for one seed row (nested-group entry point)."""
        if self.empty_pattern is not None:
            self.raise_rebinds(row)
            return iter(())
        ops = ctx.schedule(self, self.entry_mask(row))
        return _run_pipeline(ops, iter((row,)), ctx)

    def display_ops(self) -> tuple:
        """A representative schedule (empty entry mask) — for explain."""
        return self.build_schedule(_EMPTY_MASK)


# --------------------------------------------------------------------------
# ORDER BY / LIMIT
# --------------------------------------------------------------------------


class OrderLimit:
    """ORDER BY over solutions, with a bounded top-k heap under LIMIT.

    Operates at the decoded-binding boundary (sort keys are term sort
    keys) and is shared verbatim by the compiled and term-space engines,
    so tie-breaking and error ordering can never diverge between them.
    """

    kind = "OrderLimit"
    __slots__ = ("conditions", "limit")

    def __init__(self, conditions: tuple[OrderCondition, ...],
                 limit: int | None = None):
        self.conditions = conditions
        self.limit = limit

    def describe(self) -> str:
        parts = [
            c.expression.to_sparql() if c.ascending
            else f"DESC({c.expression.to_sparql()})"
            for c in self.conditions
        ]
        detail = ", ".join(parts)
        if self.limit is not None:
            detail += f" (top-{self.limit} heap)"
        return detail

    def apply(self, solutions: list[Binding]) -> list[Binding]:
        conditions = self.conditions

        def sort_key(binding: Binding):
            keys = []
            for condition in conditions:
                try:
                    value = evaluate(condition.expression, binding)
                    key = (1,) + value.sort_key()
                except ExpressionError:
                    key = (0,)
                keys.append(_Directed(key, condition.ascending))
            return keys

        return _sorted_top(solutions, sort_key, self.limit)


def _sorted_top(items: list, sort_key, limit: int | None) -> list:
    """Full sort, or a bounded heap selection when only ``limit`` rows
    survive the subsequent LIMIT slice.

    ``heapq.nsmallest(k, ...)`` is documented equivalent to
    ``sorted(...)[:k]`` — stable, so ties resolve exactly as the full
    sort would.
    """
    if limit is not None and limit < len(items):
        return heapq.nsmallest(limit, items, key=sort_key)
    return sorted(items, key=sort_key)


class _Directed:
    """Comparison wrapper flipping the order for DESC sort keys."""

    __slots__ = ("key", "ascending")

    def __init__(self, key: tuple, ascending: bool):
        self.key = key
        self.ascending = ascending

    def __lt__(self, other: "_Directed") -> bool:
        if self.ascending:
            return self.key < other.key
        return self.key > other.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Directed) and self.key == other.key


# --------------------------------------------------------------------------
# Lowering
# --------------------------------------------------------------------------


class _Lowering:
    """Compile-time state: the global slot map and pseudo-id table."""

    def __init__(self, graph, dictionary, index, optimize: bool):
        self.graph = graph
        self.dictionary = dictionary
        self.index = index
        self.optimize = optimize
        self.slots: dict[Variable, int] = {}
        self.num_registers = 0
        self.extra_terms: list[Node] = []
        self._pseudo: dict[Node, int] = {}
        self._closure_count = 0
        self._group_count = 0

    def slot(self, variable: Variable) -> int:
        slot = self.slots.get(variable)
        if slot is None:
            slot = self.num_registers
            self.num_registers += 1
            self.slots[variable] = slot
        return slot

    def temp_slot(self) -> int:
        """A scratch register no variable maps to (repeated occurrences).

        Scratch registers share the one register file but stay out of
        ``slots``, so decode-at-the-boundary never sees them.
        """
        slot = self.num_registers
        self.num_registers += 1
        return slot

    def encode(self, term: Node) -> int:
        """The term's dictionary id, or a plan-local negative pseudo id.

        Pseudo ids are consistent within the plan (the same unseen term
        always maps to the same id), never collide with real ids, and
        decode through the plan's ``extra_terms`` table — so equality on
        ids remains equality on terms even for constants the store has
        never stored.
        """
        term_id = self.dictionary.lookup(term)
        if term_id is not None:
            return term_id
        pseudo = self._pseudo.get(term)
        if pseudo is None:
            pseudo = -1 - len(self.extra_terms)
            self.extra_terms.append(term)
            self._pseudo[term] = pseudo
        return pseudo

    # -- group lowering ----------------------------------------------------

    def lower_group(self, group: GroupGraphPattern, outer_may: set,
                    outer_definite: set) -> GroupPipeline:
        """Lower one group; raises :class:`_Decline` for unsupported shapes.

        ``outer_may`` is every variable that *could* be bound when rows
        enter this group (used to classify scan vs probe and to seed
        nested lowerings); ``outer_definite`` is the subset bound in
        every row (used for join ordering, matching the interpreter's
        per-row ordering on the straight-line path).  Filter placement
        uses neither — it is resolved per entry mask at execution time.
        """
        values_clauses = [e for e in group.elements if isinstance(e, ValuesClause)]
        patterns = [e for e in group.elements if isinstance(e, TriplePattern)]
        filters = [e for e in group.elements if isinstance(e, Filter)]
        unions = [e for e in group.elements if isinstance(e, UnionPattern)]
        optionals = [e for e in group.elements if isinstance(e, OptionalPattern)]
        binds = [e for e in group.elements if isinstance(e, BindClause)]
        exists_filters = [e for e in group.elements if isinstance(e, ExistsFilter)]
        minus_patterns = [e for e in group.elements if isinstance(e, MinusPattern)]
        subselects = [e for e in group.elements if isinstance(e, SubSelect)]

        self._group_count += 1
        gid = self._group_count
        may = set(outer_may)
        definite = set(outer_definite)
        empty_pattern: TriplePattern | None = None

        values_ops = []
        for clause in values_clauses:
            cell_slots = tuple(self.slot(v) for v in clause.variables_)
            encoded = tuple(
                tuple(None if value is None else self.encode(value) for value in row)
                for row in clause.rows
            )
            values_ops.append(ValuesBind(clause, cell_slots, encoded))
            may |= set(clause.variables_)
            # A VALUES variable is definitely bound only when no row
            # leaves it UNDEF (and there is at least one row).
            for position, variable in enumerate(clause.variables_):
                if clause.rows and all(
                    row[position] is not None for row in clause.rows
                ):
                    definite.add(variable)

        for subselect in subselects:
            # Bottom-up, like the interpreter: the inner query runs
            # independently and its rows join like VALUES rows.  A cell
            # can be unbound (a projection that errored), so subquery
            # variables never join `definite`.
            op = self._lower_subselect(subselect)
            values_ops.append(op)
            may |= set(op.variables)

        pattern_ops = []
        if patterns:
            if self.optimize and len(patterns) > 1:
                ordered = order_patterns(self.graph, patterns, bound=definite)
            else:
                ordered = list(patterns)
            for pattern in ordered:
                estimate = estimate_cardinality(self.graph, pattern)
                if isinstance(pattern.p, PropertyPath):
                    op = self._lower_path(pattern, estimate)
                else:
                    op = self._lower_step(pattern, may, estimate)
                    if op is None:
                        # A never-seen constant: this (and only this)
                        # group can produce no rows.
                        empty_pattern = pattern
                pattern_vars = frozenset(pattern.variables())
                if empty_pattern is None:
                    pattern_ops.append((op, pattern_vars))
                may |= pattern_vars
                definite |= pattern_vars

        tail_ops = []
        for union in unions:
            branches = tuple(
                self.lower_group(branch, may, definite)
                for branch in union.branches
            )
            tail_ops.append(UnionOp(union, branches))
            for branch in union.branches:
                may |= branch.variables()
            # A UNION variable joins `definite` only when every branch
            # definitely binds it — conservatively skipped.

        for optional in optionals:
            inner = self.lower_group(optional.pattern, may, definite)
            tail_ops.append(LeftJoin(optional, inner))
            may |= optional.pattern.variables()
            # OPTIONAL never extends `definite`: unmatched rows pass
            # through with the inner registers unbound.

        # The interpreter's in-scope set for BIND's rebind check: the
        # variables this group itself binds before BINDs run — VALUES,
        # subqueries, patterns, union branches, earlier BINDs — but NOT
        # OPTIONAL variables (an OPTIONAL-bound variable may be silently
        # overwritten) and not the incoming row's variables, which are a
        # per-row property handled through the entry mask.
        local_available: set[Variable] = set()
        for clause in values_clauses:
            local_available |= set(clause.variables_)
        for op in values_ops:
            if isinstance(op, SubqueryScan):
                local_available |= set(op.variables)
        for pattern in patterns:
            local_available |= pattern.variables()
        for union in unions:
            for branch in union.branches:
                local_available |= branch.variables()

        bind_items: list[tuple[Variable, int]] = []
        for bind in binds:
            slot = self.slot(bind.variable)
            if bind.variable in local_available:
                # Statically certain rebind: raises on every execution,
                # like the interpreter.
                tail_ops.append(_BindRebind(bind))
            else:
                program = compile_expression(bind.expression, self.slots)
                tail_ops.append(BindOp(bind, slot, program))
                bind_items.append((bind.variable, slot))
            local_available.add(bind.variable)
            may.add(bind.variable)

        for exists in exists_filters:
            inner = self.lower_group(exists.pattern, may, definite)
            tail_ops.append(ExistsJoin(exists, inner))
            # EXISTS never extends `may`: inner bindings do not leak.

        for minus in minus_patterns:
            inner = self.lower_group(minus.pattern, set(), set())
            shared = tuple(
                self.slots[v]
                for v in sorted(minus.pattern.variables(), key=lambda v: v.name)
                if v in self.slots
            )
            tail_ops.append(MinusJoin(minus, inner, shared))

        filter_units = tuple(self._filter_unit(c) for c in filters)
        relevant: dict[Variable, int] = {}
        for unit in filter_units:
            for variable, slot in unit.slot_items:
                relevant[variable] = slot
        for variable, slot in bind_items:
            # Entry masks must cover BIND targets: a row that already
            # binds one triggers the per-row rebind error.
            relevant[variable] = slot
        return GroupPipeline(
            gid,
            tuple(values_ops),
            tuple(pattern_ops),
            tuple(tail_ops),
            filter_units,
            tuple(relevant.items()),
            empty_pattern,
        )

    def _filter_unit(self, constraint: Filter) -> _FilterUnit:
        variables = frozenset(constraint.expression.variables())
        slot_items = tuple(
            (variable, self.slots[variable])
            for variable in variables if variable in self.slots
        )
        program = compile_expression(constraint.expression, self.slots)
        return _FilterUnit(constraint, variables, slot_items, program)

    def _lower_subselect(self, subselect: SubSelect) -> SubqueryScan:
        """Compile a nested SELECT to its own plan and a join operator.

        The inner query gets its own register space (it is evaluated
        bottom-up against the whole graph); only its projected variables
        get outer slots.  An inner shape the compiler cannot take
        propagates its decline reason outward.
        """
        runner, variables, inner_root = _compile_subquery(
            self.graph, subselect.query, self.optimize
        )
        cell_slots = tuple(self.slot(v) for v in variables)
        return SubqueryScan(subselect, runner, variables, cell_slots, inner_root)

    def _lower_step(self, pattern: TriplePattern, may: set, estimate: int | None):
        positions = []
        pattern_vars: set[Variable] = set()
        eqs = []
        for term in (pattern.s, pattern.p, pattern.o):
            if isinstance(term, Variable):
                if term in pattern_vars:
                    # Repeated occurrence (?x <p> ?x): bind it into a
                    # scratch register; the step's eq check enforces the
                    # intra-pattern join against the canonical slot.
                    scratch = self.temp_slot()
                    eqs.append((self.slots[term], scratch))
                    positions.extend((None, scratch))
                else:
                    pattern_vars.add(term)
                    positions.extend((None, self.slot(term)))
            else:
                term_id = self.dictionary.lookup(term)
                if term_id is None:
                    return None  # never-seen constant: the group is empty
                positions.extend((term_id, None))
        step = tuple(positions)
        cls = NestedProbe if pattern_vars & may else IndexScan
        return cls(pattern, step, estimate, tuple(eqs))

    def _lower_path(self, pattern: TriplePattern, estimate: int | None) -> PathClosure:
        if isinstance(pattern.s, Variable):
            s_const, s_slot = None, self.slot(pattern.s)
        else:
            s_const, s_slot = self.encode(pattern.s), None
        if isinstance(pattern.o, Variable):
            o_const, o_slot = None, self.slot(pattern.o)
        else:
            o_const, o_slot = self.encode(pattern.o), None
        path = self._compile_path(pattern.p)
        return PathClosure(pattern, path, s_const, s_slot, o_const, o_slot, estimate)

    def _compile_path(self, path) -> tuple:
        if isinstance(path, IRI):
            return ("iri", self.encode(path))
        if isinstance(path, InversePath):
            return ("inv", self._compile_path(path.step))
        if isinstance(path, AlternativePath):
            return ("alt", tuple(self._compile_path(o) for o in path.options))
        if isinstance(path, SequencePath):
            return ("seq", tuple(self._compile_path(s) for s in path.steps))
        if isinstance(path, (OneOrMorePath, ZeroOrMorePath)):
            self._closure_count += 1
            return (
                "closure",
                self._compile_path(path.step),
                isinstance(path, ZeroOrMorePath),
                self._closure_count,
            )
        raise _Decline("path-shape")


def _compile_subquery(graph, query, optimize: bool):
    """Compile a nested SELECT; returns ``(runner, variables, inner_root)``.

    ``runner(deadline)`` produces the subquery's result rows (tuples of
    terms / None), replicating ``Evaluator.select`` on the compiled
    tuple path: distinct-then-order for aggregates, order-then-project-
    then-distinct otherwise, OFFSET/LIMIT last.  Raises
    :class:`_Decline` with the inner reason when the inner query cannot
    compile — the subquery then declines as a whole, with the inner
    reason as the outward-visible one.
    """
    top_k = None
    if query.limit is not None:
        top_k = query.limit + (query.offset or 0)
    if query.is_aggregate_query:
        from .aggregator import compile_aggregate_ex

        plan, reason = compile_aggregate_ex(graph, query, optimize=optimize)
        if plan is None:
            raise _Decline(reason)
        variables = tuple(p.variable for p in query.projections)

        def runner(deadline, plan=plan, query=query, variables=variables,
                   top_k=top_k):
            rows, _variables = plan.execute(deadline)
            if query.distinct:
                rows = _distinct_rows(rows)
            if query.order_by:
                rows = _order_rows(rows, variables, query.order_by, top_k)
            return _slice_rows(rows, query)

        return runner, variables, plan.body.root

    plan, reason = compile_where(graph, query.where, optimize=optimize)
    if plan is None:
        raise _Decline(reason)
    variables = tuple(query.output_variables())

    def runner(deadline, plan=plan, query=query, variables=variables,
               top_k=top_k):
        solutions = plan.solutions(deadline)
        if query.order_by:
            # The top-k bound only applies without DISTINCT (which may
            # need solutions beyond the first limit+offset).
            solution_k = None if query.distinct else top_k
            solutions = OrderLimit(query.order_by, solution_k).apply(solutions)
        rows = _project_rows(query, solutions, variables)
        if query.distinct:
            rows = _distinct_rows(rows)
        return _slice_rows(rows, query)

    return runner, variables, plan.root


def _project_rows(query, solutions: list[Binding], variables) -> list[tuple]:
    """Replicates ``Evaluator._project``: errors project to unbound."""
    rows: list[tuple] = []
    if query.select_all:
        for binding in solutions:
            rows.append(tuple(binding.get(v) for v in variables))
        return rows
    for binding in solutions:
        row = []
        for projection in query.projections:
            try:
                row.append(evaluate(projection.expression, binding))
            except ExpressionError:
                row.append(None)
        rows.append(tuple(row))
    return rows


def _order_rows(rows: list[tuple], variables, conditions, limit: int | None):
    """Replicates ``Evaluator._order``: row-level ORDER BY."""
    def sort_key(row: tuple):
        binding = {v: t for v, t in zip(variables, row) if t is not None}
        keys = []
        for condition in conditions:
            try:
                value = evaluate(condition.expression, binding)
                key = (1,) + value.sort_key()
            except ExpressionError:
                key = (0,)
            keys.append(_Directed(key, condition.ascending))
        return keys

    return _sorted_top(rows, sort_key, limit)


def _distinct_rows(rows: list[tuple]) -> list[tuple]:
    seen: set[tuple] = set()
    unique: list[tuple] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            unique.append(row)
    return unique


def _slice_rows(rows: list[tuple], query) -> list[tuple]:
    if query.offset:
        rows = rows[query.offset:]
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


def compile_where(graph, where: GroupGraphPattern, optimize: bool = True):
    """Lower a WHERE group onto the physical-operator pipeline.

    Returns ``(plan, None)`` on success or ``(None, reason)`` when the
    group holds a shape the operator set does not take (see the module
    docstring for the decline list).  The reason string is stable: the
    endpoint tallies fallbacks per reason.
    """
    backend = id_backend(graph)
    if backend is None:
        return None, "no-id-backend"
    dictionary, index = backend
    lowering = _Lowering(graph, dictionary, index, optimize)
    try:
        root = lowering.lower_group(where, set(), set())
    except _Decline as decline:
        return None, decline.reason
    plan = WherePlan(
        dictionary, index, lowering.slots, root, tuple(lowering.extra_terms),
        lowering.num_registers, dict(lowering._pseudo),
    )
    return plan, None


class WherePlan:
    """An executable operator pipeline for one WHERE group.

    Immutable after compilation; every execution owns its context
    (decode memo, path-frontier memo, filter schedules), so cached plans
    are thread-safe.
    """

    __slots__ = ("dictionary", "index", "slots", "root", "extra_terms",
                 "slot_items", "empty", "num_registers", "pseudo_ids")

    def __init__(self, dictionary, index, slots, root: GroupPipeline, extra_terms,
                 num_registers: int | None = None, pseudo_ids: dict | None = None):
        self.dictionary = dictionary
        self.index = index
        self.slots = slots
        self.root = root
        self.extra_terms = extra_terms
        self.slot_items = tuple(slots.items())
        self.empty = root.empty
        # Scratch registers (repeated variables) live past len(slots).
        self.num_registers = len(slots) if num_registers is None else num_registers
        # term → compile-time pseudo id; runtime minting (BIND results,
        # subquery cells) consults this first so ids stay consistent.
        self.pseudo_ids = {} if pseudo_ids is None else pseudo_ids

    @property
    def num_slots(self) -> int:
        return len(self.slots)

    def decode(self, term_id: int) -> Node:
        if term_id < 0:
            return self.extra_terms[-1 - term_id]
        return self.dictionary.decode(term_id)

    def _seed(self) -> list:
        return [None] * self.num_registers

    def solutions(self, deadline) -> list[Binding]:
        """Run the pipeline eagerly, stage by stage; decoded bindings out."""
        if self.empty:
            self.root.raise_rebinds(self._seed())
            return []
        ctx = _ExecContext(self, deadline)
        rows: Iterable[list] = [self._seed()]
        ops = ctx.schedule(self.root, _EMPTY_MASK)
        for position, op in enumerate(ops):
            rows = list(op.run(rows, ctx))
            if not rows:
                # Lazy chaining still *starts* downstream generators on
                # an empty stream; preserve the always-raising rebind
                # check across this eager early exit.
                for tail in ops[position + 1:]:
                    if isinstance(tail, _BindRebind):
                        next(tail.run(iter(()), ctx), None)
                return []
        decode = ctx.decode
        slot_items = self.slot_items
        out: list[Binding] = []
        append = out.append
        for row in rows:
            binding: Binding = {}
            for variable, slot in slot_items:
                term_id = row[slot]
                if term_id is not None:
                    binding[variable] = decode(term_id)
            append(binding)
        return out

    def rows_stream(self, deadline, ctx: "_ExecContext | None" = None):
        """Lazily chained raw-row iterator plus its execution context.

        Used by consumers that fold rows without materializing solutions
        (aggregation) or that stop at the first row (ASK).  Callers that
        need the context *before* iterating — e.g. the aggregator, whose
        decode state must see ids minted during the run — pass their own.
        """
        if ctx is None:
            ctx = _ExecContext(self, deadline)
        if self.empty:
            self.root.raise_rebinds(self._seed())
            return iter(()), ctx
        ops = ctx.schedule(self.root, _EMPTY_MASK)
        return _run_pipeline(ops, iter((self._seed(),)), ctx), ctx

    def any(self, deadline) -> bool:
        """Whether the pipeline produces at least one row (lazy)."""
        rows, _ctx = self.rows_stream(deadline)
        for _row in rows:
            return True
        return False

    def __repr__(self) -> str:
        state = (
            "empty" if self.empty
            else f"group of {len(self.root.pattern_ops)} steps"
        )
        return f"<WherePlan {state}, {len(self.slots)} registers>"
