"""Unified id-space physical operators for SPARQL query bodies.

:mod:`repro.sparql.compiler` lowers *flat* basic graph patterns into
id-space join plans; everything else a WHERE clause can hold — OPTIONAL
decorations, UNION'd interpretation combinations, VALUES member lists,
``skos:broader``-style property paths — used to fall back to the
term-space interpreter, leaving the codebase with two engines.  This
module is the single physical plan layer that closes the gap: a small
set of streaming operators in the classic Volcano/iterator style, all
working over one register file of integer term ids.

Operator taxonomy (one class per physical operator):

* :class:`IndexScan` / :class:`NestedProbe` — one triple-pattern join
  step probing the SPO/POS/OSP permutation indexes; *scan* when the
  pattern shares no variable with what is already bound, *probe* when it
  extends bound registers (the id-space analogue of an index nested-loop
  join);
* :class:`FilterOp` — evaluates FILTER constraints over a partial decode
  of exactly the registers the expressions mention (errors remove the
  row, per SPARQL);
* :class:`ValuesBind` — joins compile-time-encoded VALUES rows against
  the register file (UNDEF leaves a register untouched);
* :class:`LeftJoin` — OPTIONAL: runs an inner pipeline per row and
  passes the row through unchanged when the inner produces nothing;
* :class:`UnionOp` — runs each branch pipeline per row, concatenating
  branch outputs in branch order;
* :class:`PathClosure` — property-path evaluation entirely in id space:
  BFS over the POS/OSP integer indexes with per-execution memoized
  reachability frontiers (see :func:`_reachable_ids`);
* :class:`OrderLimit` — ORDER BY with the bounded top-k heap; shared
  verbatim by the compiled and term-space engines so tie-breaking can
  never diverge between them;
* ``AggregateFold`` — the terminal grouping/accumulator stage lives in
  :mod:`repro.sparql.aggregator` (``AggregatePlan``) and consumes this
  module's row stream.

Groups compile to :class:`GroupPipeline` objects rather than flat
operator lists because the term-space interpreter — which stays behind
``compile=False`` as the differential oracle — schedules FILTERs
against the set of variables *actually bound in the incoming binding*:
for a nested group (an OPTIONAL body, a UNION branch) that set is a
per-row property.  The pipeline therefore keeps its filters unplaced at
compile time and interleaves them at execution, memoized per
(group, entry-mask), reproducing ``Evaluator._eval_group``'s attachment
points exactly: ready filters attach after pattern join steps only, and
whatever is left runs at the end of the group.

Constants the dictionary has never seen get *pseudo ids* (negative,
plan-local): they can never equal a real id, so joins against them fail
exactly as term comparison would, while zero-length path semantics and
decode-at-the-boundary still work.  A never-seen constant in a plain
triple pattern short-circuits its *group* to the empty pipeline — only
its group, so an OPTIONAL over it still passes rows through and a UNION
branch over it merely contributes nothing.

:func:`compile_where` returns ``(plan, None)`` or ``(None, reason)``;
the decline reason strings feed the endpoint's per-reason fallback
tally.  Shapes that still decline — and why:

* ``bind`` / ``exists-filter`` / ``minus`` / ``subquery`` — each needs
  either expression evaluation writing registers (BIND) or a correlated
  re-entry into full query evaluation; the term-space interpreter
  remains their semantics reference;
* ``no-id-backend`` — multi-graph union views have no shared id space.

A repeated variable within one pattern (``?x <p> ?x``) used to decline
too; it now compiles by binding the second occurrence into a scratch
register and enforcing the intra-pattern join with a register-equality
check fused into the step (see :meth:`_Lowering._lower_step`).

Plans are immutable after compilation and hold no per-execution state
(each execution builds a private :class:`_ExecContext`), so the serving
cache's plans tier may share them across threads, keyed by
``(where-group, optimize, graph uid, epoch)``.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from ..rdf.terms import IRI, Node, Variable
from .ast import (
    AlternativePath,
    BindClause,
    ExistsFilter,
    Filter,
    GroupGraphPattern,
    InversePath,
    MinusPattern,
    OneOrMorePath,
    OptionalPattern,
    OrderCondition,
    PropertyPath,
    SequencePath,
    SubSelect,
    TriplePattern,
    UnionPattern,
    ValuesClause,
    ZeroOrMorePath,
)
from .compiler import id_backend
from .expressions import ExpressionError, effective_boolean_value, evaluate
from .optimizer import estimate_cardinality, order_patterns

__all__ = [
    "WherePlan",
    "compile_where",
    "OrderLimit",
    "GroupPipeline",
    "IndexScan",
    "NestedProbe",
    "FilterOp",
    "ValuesBind",
    "LeftJoin",
    "UnionOp",
    "PathClosure",
]

Binding = dict[Variable, Node]

_EMPTY_MASK: frozenset = frozenset()


class _Decline(Exception):
    """Raised during lowering for a shape the operator set cannot take."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _ExecContext:
    """Per-execution state: deadline, decode memo, schedule and path memos."""

    __slots__ = ("index", "check", "decode_raw", "memo", "path_memo", "schedules")

    def __init__(self, plan: "WherePlan", deadline):
        self.index = plan.index
        self.check = deadline.check
        self.decode_raw = plan.decode
        self.memo: dict[int, Node] = {}
        self.path_memo: dict[tuple, list[int]] = {}
        self.schedules: dict[tuple, tuple] = {}

    def decode(self, term_id: int) -> Node:
        term = self.memo.get(term_id)
        if term is None:
            term = self.decode_raw(term_id)
            self.memo[term_id] = term
        return term

    def schedule(self, pipeline: "GroupPipeline", mask: frozenset) -> tuple:
        key = (pipeline.gid, mask)
        ops = self.schedules.get(key)
        if ops is None:
            ops = pipeline.build_schedule(mask)
            self.schedules[key] = ops
        return ops


def _run_pipeline(ops, rows, ctx) -> Iterator[list]:
    """Chain a sub-pipeline lazily over ``rows``."""
    for op in ops:
        rows = op.run(rows, ctx)
    return rows


# --------------------------------------------------------------------------
# Operators
# --------------------------------------------------------------------------


class PhysicalOp:
    """Base class: a streaming transformer of register-file rows."""

    kind = "Op"
    estimate: int | None = None
    __slots__ = ()

    def run(self, rows: Iterable[list], ctx: _ExecContext) -> Iterator[list]:
        raise NotImplementedError

    def children(self) -> tuple[tuple[str, "GroupPipeline"], ...]:
        """Sub-pipelines, as (label, pipeline) pairs — for explain."""
        return ()

    def describe(self) -> str:
        return ""


class _StepOp(PhysicalOp):
    """One triple-pattern join step over the integer indexes.

    ``step`` is ``(s_const, s_slot, p_const, p_slot, o_const, o_slot)``:
    for each position exactly one of (encoded constant, register slot)
    is set.  A slot whose register is still ``None`` acts as a wildcard.

    ``eqs`` holds register-equality pairs for patterns that repeat a
    variable (``?x <p> ?x``): the repeated occurrence binds a scratch
    register and each ``(canonical, scratch)`` pair must agree after the
    step — the id-space analogue of the interpreter's bind-consistency
    check.  Both registers are always bound once the step has run, so
    plain integer equality suffices.
    """

    __slots__ = ("pattern", "step", "estimate", "eqs")

    def __init__(self, pattern: TriplePattern, step: tuple, estimate: int | None,
                 eqs: tuple = ()):
        self.pattern = pattern
        self.step = step
        self.estimate = estimate
        self.eqs = eqs

    def describe(self) -> str:
        return self.pattern.to_sparql()

    def run(self, rows, ctx):
        out = self._run_plain(rows, ctx)
        if not self.eqs:
            return out
        return _eq_filter(out, self.eqs)

    def _run_plain(self, rows, ctx):
        sc, ss, pc, ps, oc, os_ = self.step
        index = ctx.index
        scan_objects = index.scan_objects
        scan_subjects = index.scan_subjects
        scan_predicates = index.scan_predicates
        predicate_pairs = index.predicate_pairs
        contains = index.contains
        match = index.match
        check = ctx.check
        for row in rows:
            s = sc if ss is None else row[ss]
            p = pc if ps is None else row[ps]
            o = oc if os_ is None else row[os_]
            # The three ≥2-bound shapes go through the layout-agnostic
            # scan API (contiguous run slices on the columnar layout)
            # and bind at most one register.
            if s is not None and p is not None:
                if o is not None:
                    check()
                    if contains(s, p, o):
                        yield row  # fully bound: the row is unchanged
                    continue
                for oid in scan_objects(s, p):
                    check()
                    new = row.copy()
                    new[os_] = oid
                    yield new
                continue
            if p is not None and o is not None:
                for sid in scan_subjects(p, o):
                    check()
                    new = row.copy()
                    new[ss] = sid
                    yield new
                continue
            if s is not None and o is not None:
                for pid in scan_predicates(s, o):
                    check()
                    new = row.copy()
                    new[ps] = pid
                    yield new
                continue
            if p is not None:
                # ?s <p> ?o — the IndexScan workhorse.  The pair stream
                # is two zipped column slices on the columnar layout, so
                # the loop body is one row copy + two register writes
                # per triple of the predicate's contiguous range.
                for sid, oid in predicate_pairs(p):
                    check()
                    new = row.copy()
                    new[ss] = sid
                    new[os_] = oid
                    yield new
                continue
            for sid, pid, oid in match(s, p, o):
                check()
                new = row.copy()
                if ss is not None:
                    new[ss] = sid
                if ps is not None:
                    new[ps] = pid
                if os_ is not None:
                    new[os_] = oid
                yield new


def _eq_filter(rows, eqs):
    """Keep only rows whose paired registers agree (repeated variables)."""
    for row in rows:
        for a, b in eqs:
            if row[a] != row[b]:
                break
        else:
            yield row


class IndexScan(_StepOp):
    """A step sharing no variable with anything possibly bound before it."""

    kind = "IndexScan"
    __slots__ = ()


class NestedProbe(_StepOp):
    """A step extending already-bound registers (index nested-loop join)."""

    kind = "NestedProbe"
    __slots__ = ()


class _FilterUnit:
    """One FILTER constraint with its variable set and register slots."""

    __slots__ = ("constraint", "variables", "slot_items")

    def __init__(self, constraint: Filter, variables: frozenset, slot_items: tuple):
        self.constraint = constraint
        self.variables = variables
        self.slot_items = slot_items


class FilterOp(PhysicalOp):
    """FILTER constraints over a partial decode of the register file.

    Only the registers the expressions mention are decoded; a variable
    with no register (never bound anywhere in the plan) is simply absent
    from the binding, so evaluation errors and removes the row — the
    term-space engine's behaviour for filters over unbound variables.
    """

    kind = "Filter"
    __slots__ = ("slot_items", "filters")

    def __init__(self, units: tuple[_FilterUnit, ...]):
        merged: dict[Variable, int] = {}
        for unit in units:
            for variable, slot in unit.slot_items:
                merged[variable] = slot
        self.slot_items = tuple(merged.items())
        self.filters = tuple(unit.constraint for unit in units)

    def describe(self) -> str:
        return ", ".join(f.expression.to_sparql() for f in self.filters)

    def run(self, rows, ctx):
        decode = ctx.decode
        slot_items = self.slot_items
        filters = self.filters
        check = ctx.check
        for row in rows:
            check()
            binding: Binding = {}
            for variable, slot in slot_items:
                term_id = row[slot]
                if term_id is not None:
                    binding[variable] = decode(term_id)
            keep = True
            for constraint in filters:
                try:
                    if not effective_boolean_value(
                        evaluate(constraint.expression, binding)
                    ):
                        keep = False
                        break
                except ExpressionError:
                    keep = False  # SPARQL: an erroring filter removes the row.
                    break
            if keep:
                yield row


class ValuesBind(PhysicalOp):
    """Join compile-time-encoded VALUES rows against the register file."""

    kind = "ValuesBind"
    __slots__ = ("clause", "cell_slots", "encoded_rows")

    def __init__(self, clause: ValuesClause, cell_slots: tuple[int, ...],
                 encoded_rows: tuple[tuple, ...]):
        self.clause = clause
        self.cell_slots = cell_slots
        self.encoded_rows = encoded_rows

    def describe(self) -> str:
        names = " ".join(v.n3() for v in self.clause.variables_)
        return f"{names}: {len(self.encoded_rows)} rows"

    def run(self, rows, ctx):
        cell_slots = self.cell_slots
        encoded_rows = self.encoded_rows
        check = ctx.check
        for row in rows:
            for value_row in encoded_rows:
                check()
                new = None
                compatible = True
                for slot, value_id in zip(cell_slots, value_row):
                    if value_id is None:  # UNDEF leaves the register as-is.
                        continue
                    current = row[slot] if new is None else new[slot]
                    if current is None:
                        if new is None:
                            new = row.copy()
                        new[slot] = value_id
                    elif current != value_id:
                        compatible = False
                        break
                if compatible:
                    yield row if new is None else new


class LeftJoin(PhysicalOp):
    """OPTIONAL: per-row left join against an inner group pipeline."""

    kind = "LeftJoin"
    __slots__ = ("optional", "inner")

    def __init__(self, optional: OptionalPattern, inner: "GroupPipeline"):
        self.optional = optional
        self.inner = inner

    def children(self):
        return (("optional", self.inner),)

    def run(self, rows, ctx):
        inner = self.inner
        for row in rows:
            matched = False
            for out in inner.run_row(row, ctx):
                matched = True
                yield out
            if not matched:
                yield row


class UnionOp(PhysicalOp):
    """UNION: per-row evaluation of every branch pipeline, concatenated."""

    kind = "Union"
    __slots__ = ("union", "branches")

    def __init__(self, union: UnionPattern, branches: tuple["GroupPipeline", ...]):
        self.union = union
        self.branches = branches

    def children(self):
        return tuple(
            (f"branch {i + 1}", branch) for i, branch in enumerate(self.branches)
        )

    def run(self, rows, ctx):
        branches = self.branches
        for row in rows:
            for branch in branches:
                yield from branch.run_row(row, ctx)


class PathClosure(PhysicalOp):
    """Property-path evaluation entirely in id space.

    The path AST is compiled to a nested-tuple program over predicate
    ids; closure steps (``+`` / ``*``) run BFS over the POS/OSP integer
    maps with reachability frontiers memoized per execution, so repeated
    expansions from the same node — the common case when a closure sits
    mid-join — are O(1) after the first.  Pair semantics (per-pattern
    deduplication, zero-length closure restricted to path-incident nodes
    when both ends are free, cycle-back-to-start for ``+``) mirror
    :mod:`repro.sparql.paths` exactly.
    """

    kind = "PathClosure"
    __slots__ = ("pattern", "path", "s_const", "s_slot", "o_const", "o_slot",
                 "estimate")

    def __init__(self, pattern: TriplePattern, path: tuple,
                 s_const, s_slot, o_const, o_slot, estimate: int | None):
        self.pattern = pattern
        self.path = path
        self.s_const = s_const
        self.s_slot = s_slot
        self.o_const = o_const
        self.o_slot = o_slot
        self.estimate = estimate

    def describe(self) -> str:
        return self.pattern.to_sparql()

    def run(self, rows, ctx):
        s_const, s_slot = self.s_const, self.s_slot
        o_const, o_slot = self.o_const, self.o_slot
        same_slot = s_slot is not None and s_slot == o_slot
        path = self.path
        check = ctx.check
        for row in rows:
            s = s_const if s_slot is None else row[s_slot]
            o = o_const if o_slot is None else row[o_slot]
            if same_slot and s is None:
                # ``?x path ?x``: enumerate free pairs, keep the diagonal.
                for sid, oid in _path_pairs(ctx, path, None, None):
                    check()
                    if sid == oid:
                        new = row.copy()
                        new[s_slot] = sid
                        yield new
                continue
            bind_s = s_slot is not None and s is None
            bind_o = o_slot is not None and o is None
            for sid, oid in _path_pairs(ctx, path, s, o):
                check()
                if bind_s or bind_o:
                    new = row.copy()
                    if bind_s:
                        new[s_slot] = sid
                    if bind_o:
                        new[o_slot] = oid
                    yield new
                else:
                    yield row


# --------------------------------------------------------------------------
# Id-space path programs
#
# Compiled form: ("iri", pid) | ("inv", sub) | ("alt", (subs...)) |
# ("seq", (subs...)) | ("closure", sub, include_zero, key).  ``key`` is a
# plan-unique integer identifying the closure node in the frontier memo.
# --------------------------------------------------------------------------


def _path_pairs(ctx, path, s, o):
    """Deduplicated (subject id, object id) pairs, like ``eval_path``."""
    seen: set[tuple] = set()
    for pair in _path_eval(ctx, path, s, o):
        if pair not in seen:
            seen.add(pair)
            yield pair


def _path_eval(ctx, node, s, o):
    kind = node[0]
    if kind == "iri":
        pid = node[1]
        index = ctx.index
        if s is not None:
            if o is not None:
                if index.contains(s, pid, o):
                    yield (s, o)
                return
            for oid in index.scan_objects(s, pid):
                yield (s, oid)
            return
        if o is not None:
            for sid in index.scan_subjects(pid, o):
                yield (sid, o)
            return
        yield from index.predicate_pairs(pid)
        return
    if kind == "inv":
        for sid, oid in _path_eval(ctx, node[1], o, s):
            yield (oid, sid)
        return
    if kind == "alt":
        for option in node[1]:
            yield from _path_eval(ctx, option, s, o)
        return
    if kind == "seq":
        yield from _path_sequence(ctx, node[1], s, o)
        return
    # closure
    _tag, step, include_zero, key = node
    if s is not None:
        for target in _reachable_ids(ctx, step, key, s, include_zero, True):
            if o is None or target == o:
                yield (s, target)
        return
    if o is not None:
        for source in _reachable_ids(ctx, step, key, o, include_zero, False):
            yield (source, o)
        return
    # Both ends free: forward BFS from every inner-path subject (and, for
    # zero-length closures, every inner-path object).
    starts: set[int] = set()
    for sid, oid in _path_eval(ctx, step, None, None):
        starts.add(sid)
        if include_zero:
            starts.add(oid)
    for start in starts:
        for target in _reachable_ids(ctx, step, key, start, include_zero, True):
            yield (start, target)


def _reachable_ids(ctx, step, key, start, include_zero, forward):
    """BFS closure over ids, memoized per execution.

    The deadline is checked once per *edge* scanned (not just per
    frontier hop), so an adversarially deep or bushy hierarchy cannot
    run far past its budget between checks.
    """
    memo_key = (key, start, include_zero, forward)
    cached = ctx.path_memo.get(memo_key)
    if cached is not None:
        return cached
    check = ctx.check
    found: list[int] = [start] if include_zero else []
    seen: set[int] = {start}
    frontier = [start]
    while frontier:
        check()
        node = frontier.pop()
        pairs = (
            _path_eval(ctx, step, node, None)
            if forward else _path_eval(ctx, step, None, node)
        )
        for sid, oid in pairs:
            check()
            neighbor = oid if forward else sid
            if neighbor not in seen:
                seen.add(neighbor)
                found.append(neighbor)
                frontier.append(neighbor)
            elif neighbor == start and not include_zero and start not in found:
                found.append(start)  # cycle back to the start counts for '+'
    ctx.path_memo[memo_key] = found
    return found


def _path_sequence(ctx, steps, s, o):
    if len(steps) == 1:
        yield from _path_eval(ctx, steps[0], s, o)
        return
    check = ctx.check
    if s is not None or o is None:
        head, rest = steps[0], steps[1:]
        for sid, middle in _path_eval(ctx, head, s, None):
            check()
            for _mid, oid in _path_sequence(ctx, rest, middle, o):
                yield (sid, oid)
        return
    # Only the object is bound: traverse backwards to avoid a full scan.
    front, tail = steps[:-1], steps[-1]
    for middle, oid in _path_eval(ctx, tail, None, o):
        check()
        for sid, _mid in _path_sequence(ctx, front, None, middle):
            yield (sid, oid)


# --------------------------------------------------------------------------
# Group pipelines
# --------------------------------------------------------------------------


class GroupPipeline:
    """One WHERE group, lowered: ordered operators + unplaced filters.

    Filter placement replicates the term-space interpreter exactly, and
    there it depends on which variables the *incoming binding* already
    holds — a per-row property for nested groups.  So the pipeline keeps
    its filters aside and :meth:`build_schedule` interleaves them for a
    given entry mask (the set of filter-relevant variables bound on
    entry): ready filters attach after pattern join steps only, and the
    remainder runs at the end of the group.  Schedules are memoized per
    execution, keyed by ``(group id, mask)``.
    """

    __slots__ = ("gid", "values_ops", "pattern_ops", "tail_ops", "filter_units",
                 "relevant_items", "values_vars", "empty_pattern")

    def __init__(self, gid: int, values_ops: tuple, pattern_ops: tuple,
                 tail_ops: tuple, filter_units: tuple,
                 relevant_items: tuple, empty_pattern: TriplePattern | None):
        self.gid = gid
        self.values_ops = values_ops
        self.pattern_ops = pattern_ops
        self.tail_ops = tail_ops
        self.filter_units = filter_units
        self.relevant_items = relevant_items
        self.values_vars = frozenset(
            v for op in values_ops for v in op.clause.variables_
        )
        self.empty_pattern = empty_pattern

    @property
    def empty(self) -> bool:
        return self.empty_pattern is not None

    def entry_mask(self, row: list) -> frozenset:
        """Which filter-relevant variables the row already binds."""
        if not self.relevant_items:
            return _EMPTY_MASK
        return frozenset(
            variable for variable, slot in self.relevant_items
            if row[slot] is not None
        )

    def build_schedule(self, mask: frozenset) -> tuple:
        """Interleave filters with the operator sequence for one mask.

        Mirrors ``Evaluator._eval_group``: VALUES first (no readiness
        checks), then pattern steps with ready filters attached after
        each, then UNION/OPTIONAL operators (no checks — the interpreter
        only tests readiness inside its pattern loop), then every filter
        still pending at the end of the group.
        """
        ops: list[PhysicalOp] = list(self.values_ops)
        available = set(mask) | self.values_vars
        pending = list(self.filter_units)
        for op, pattern_vars in self.pattern_ops:
            ops.append(op)
            available |= pattern_vars
            if pending:
                ready = [u for u in pending if u.variables <= available]
                if ready:
                    pending = [u for u in pending if u not in ready]
                    ops.append(FilterOp(tuple(ready)))
        ops.extend(self.tail_ops)
        if pending:
            ops.append(FilterOp(tuple(pending)))
        return tuple(ops)

    def run_row(self, row: list, ctx: _ExecContext) -> Iterator[list]:
        """Run the group for one seed row (nested-group entry point)."""
        if self.empty_pattern is not None:
            return iter(())
        ops = ctx.schedule(self, self.entry_mask(row))
        return _run_pipeline(ops, iter((row,)), ctx)

    def display_ops(self) -> tuple:
        """A representative schedule (empty entry mask) — for explain."""
        return self.build_schedule(_EMPTY_MASK)


# --------------------------------------------------------------------------
# ORDER BY / LIMIT
# --------------------------------------------------------------------------


class OrderLimit:
    """ORDER BY over solutions, with a bounded top-k heap under LIMIT.

    Operates at the decoded-binding boundary (sort keys are term sort
    keys) and is shared verbatim by the compiled and term-space engines,
    so tie-breaking and error ordering can never diverge between them.
    """

    kind = "OrderLimit"
    __slots__ = ("conditions", "limit")

    def __init__(self, conditions: tuple[OrderCondition, ...],
                 limit: int | None = None):
        self.conditions = conditions
        self.limit = limit

    def describe(self) -> str:
        parts = [
            c.expression.to_sparql() if c.ascending
            else f"DESC({c.expression.to_sparql()})"
            for c in self.conditions
        ]
        detail = ", ".join(parts)
        if self.limit is not None:
            detail += f" (top-{self.limit} heap)"
        return detail

    def apply(self, solutions: list[Binding]) -> list[Binding]:
        conditions = self.conditions

        def sort_key(binding: Binding):
            keys = []
            for condition in conditions:
                try:
                    value = evaluate(condition.expression, binding)
                    key = (1,) + value.sort_key()
                except ExpressionError:
                    key = (0,)
                keys.append(_Directed(key, condition.ascending))
            return keys

        return _sorted_top(solutions, sort_key, self.limit)


def _sorted_top(items: list, sort_key, limit: int | None) -> list:
    """Full sort, or a bounded heap selection when only ``limit`` rows
    survive the subsequent LIMIT slice.

    ``heapq.nsmallest(k, ...)`` is documented equivalent to
    ``sorted(...)[:k]`` — stable, so ties resolve exactly as the full
    sort would.
    """
    if limit is not None and limit < len(items):
        return heapq.nsmallest(limit, items, key=sort_key)
    return sorted(items, key=sort_key)


class _Directed:
    """Comparison wrapper flipping the order for DESC sort keys."""

    __slots__ = ("key", "ascending")

    def __init__(self, key: tuple, ascending: bool):
        self.key = key
        self.ascending = ascending

    def __lt__(self, other: "_Directed") -> bool:
        if self.ascending:
            return self.key < other.key
        return self.key > other.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Directed) and self.key == other.key


# --------------------------------------------------------------------------
# Lowering
# --------------------------------------------------------------------------


class _Lowering:
    """Compile-time state: the global slot map and pseudo-id table."""

    def __init__(self, graph, dictionary, index, optimize: bool):
        self.graph = graph
        self.dictionary = dictionary
        self.index = index
        self.optimize = optimize
        self.slots: dict[Variable, int] = {}
        self.num_registers = 0
        self.extra_terms: list[Node] = []
        self._pseudo: dict[Node, int] = {}
        self._closure_count = 0
        self._group_count = 0

    def slot(self, variable: Variable) -> int:
        slot = self.slots.get(variable)
        if slot is None:
            slot = self.num_registers
            self.num_registers += 1
            self.slots[variable] = slot
        return slot

    def temp_slot(self) -> int:
        """A scratch register no variable maps to (repeated occurrences).

        Scratch registers share the one register file but stay out of
        ``slots``, so decode-at-the-boundary never sees them.
        """
        slot = self.num_registers
        self.num_registers += 1
        return slot

    def encode(self, term: Node) -> int:
        """The term's dictionary id, or a plan-local negative pseudo id.

        Pseudo ids are consistent within the plan (the same unseen term
        always maps to the same id), never collide with real ids, and
        decode through the plan's ``extra_terms`` table — so equality on
        ids remains equality on terms even for constants the store has
        never stored.
        """
        term_id = self.dictionary.lookup(term)
        if term_id is not None:
            return term_id
        pseudo = self._pseudo.get(term)
        if pseudo is None:
            pseudo = -1 - len(self.extra_terms)
            self.extra_terms.append(term)
            self._pseudo[term] = pseudo
        return pseudo

    # -- group lowering ----------------------------------------------------

    def lower_group(self, group: GroupGraphPattern, outer_may: set,
                    outer_definite: set) -> GroupPipeline:
        """Lower one group; raises :class:`_Decline` for unsupported shapes.

        ``outer_may`` is every variable that *could* be bound when rows
        enter this group (used to classify scan vs probe and to seed
        nested lowerings); ``outer_definite`` is the subset bound in
        every row (used for join ordering, matching the interpreter's
        per-row ordering on the straight-line path).  Filter placement
        uses neither — it is resolved per entry mask at execution time.
        """
        for element in group.elements:
            if isinstance(element, BindClause):
                raise _Decline("bind")
            if isinstance(element, ExistsFilter):
                raise _Decline("exists-filter")
            if isinstance(element, MinusPattern):
                raise _Decline("minus")
            if isinstance(element, SubSelect):
                raise _Decline("subquery")
        values_clauses = [e for e in group.elements if isinstance(e, ValuesClause)]
        patterns = [e for e in group.elements if isinstance(e, TriplePattern)]
        filters = [e for e in group.elements if isinstance(e, Filter)]
        unions = [e for e in group.elements if isinstance(e, UnionPattern)]
        optionals = [e for e in group.elements if isinstance(e, OptionalPattern)]

        self._group_count += 1
        gid = self._group_count
        may = set(outer_may)
        definite = set(outer_definite)
        empty_pattern: TriplePattern | None = None

        values_ops = []
        for clause in values_clauses:
            cell_slots = tuple(self.slot(v) for v in clause.variables_)
            encoded = tuple(
                tuple(None if value is None else self.encode(value) for value in row)
                for row in clause.rows
            )
            values_ops.append(ValuesBind(clause, cell_slots, encoded))
            may |= set(clause.variables_)
            # A VALUES variable is definitely bound only when no row
            # leaves it UNDEF (and there is at least one row).
            for position, variable in enumerate(clause.variables_):
                if clause.rows and all(
                    row[position] is not None for row in clause.rows
                ):
                    definite.add(variable)

        pattern_ops = []
        if patterns:
            if self.optimize and len(patterns) > 1:
                ordered = order_patterns(self.graph, patterns, bound=definite)
            else:
                ordered = list(patterns)
            for pattern in ordered:
                estimate = estimate_cardinality(self.graph, pattern)
                if isinstance(pattern.p, PropertyPath):
                    op = self._lower_path(pattern, estimate)
                else:
                    op = self._lower_step(pattern, may, estimate)
                    if op is None:
                        # A never-seen constant: this (and only this)
                        # group can produce no rows.
                        empty_pattern = pattern
                pattern_vars = frozenset(pattern.variables())
                if empty_pattern is None:
                    pattern_ops.append((op, pattern_vars))
                may |= pattern_vars
                definite |= pattern_vars

        tail_ops = []
        for union in unions:
            branches = tuple(
                self.lower_group(branch, may, definite)
                for branch in union.branches
            )
            tail_ops.append(UnionOp(union, branches))
            for branch in union.branches:
                may |= branch.variables()
            # A UNION variable joins `definite` only when every branch
            # definitely binds it — conservatively skipped.

        for optional in optionals:
            inner = self.lower_group(optional.pattern, may, definite)
            tail_ops.append(LeftJoin(optional, inner))
            may |= optional.pattern.variables()
            # OPTIONAL never extends `definite`: unmatched rows pass
            # through with the inner registers unbound.

        filter_units = tuple(self._filter_unit(c) for c in filters)
        relevant: dict[Variable, int] = {}
        for unit in filter_units:
            for variable, slot in unit.slot_items:
                relevant[variable] = slot
        return GroupPipeline(
            gid,
            tuple(values_ops),
            tuple(pattern_ops),
            tuple(tail_ops),
            filter_units,
            tuple(relevant.items()),
            empty_pattern,
        )

    def _filter_unit(self, constraint: Filter) -> _FilterUnit:
        variables = frozenset(constraint.expression.variables())
        slot_items = tuple(
            (variable, self.slots[variable])
            for variable in variables if variable in self.slots
        )
        return _FilterUnit(constraint, variables, slot_items)

    def _lower_step(self, pattern: TriplePattern, may: set, estimate: int | None):
        positions = []
        pattern_vars: set[Variable] = set()
        eqs = []
        for term in (pattern.s, pattern.p, pattern.o):
            if isinstance(term, Variable):
                if term in pattern_vars:
                    # Repeated occurrence (?x <p> ?x): bind it into a
                    # scratch register; the step's eq check enforces the
                    # intra-pattern join against the canonical slot.
                    scratch = self.temp_slot()
                    eqs.append((self.slots[term], scratch))
                    positions.extend((None, scratch))
                else:
                    pattern_vars.add(term)
                    positions.extend((None, self.slot(term)))
            else:
                term_id = self.dictionary.lookup(term)
                if term_id is None:
                    return None  # never-seen constant: the group is empty
                positions.extend((term_id, None))
        step = tuple(positions)
        cls = NestedProbe if pattern_vars & may else IndexScan
        return cls(pattern, step, estimate, tuple(eqs))

    def _lower_path(self, pattern: TriplePattern, estimate: int | None) -> PathClosure:
        if isinstance(pattern.s, Variable):
            s_const, s_slot = None, self.slot(pattern.s)
        else:
            s_const, s_slot = self.encode(pattern.s), None
        if isinstance(pattern.o, Variable):
            o_const, o_slot = None, self.slot(pattern.o)
        else:
            o_const, o_slot = self.encode(pattern.o), None
        path = self._compile_path(pattern.p)
        return PathClosure(pattern, path, s_const, s_slot, o_const, o_slot, estimate)

    def _compile_path(self, path) -> tuple:
        if isinstance(path, IRI):
            return ("iri", self.encode(path))
        if isinstance(path, InversePath):
            return ("inv", self._compile_path(path.step))
        if isinstance(path, AlternativePath):
            return ("alt", tuple(self._compile_path(o) for o in path.options))
        if isinstance(path, SequencePath):
            return ("seq", tuple(self._compile_path(s) for s in path.steps))
        if isinstance(path, (OneOrMorePath, ZeroOrMorePath)):
            self._closure_count += 1
            return (
                "closure",
                self._compile_path(path.step),
                isinstance(path, ZeroOrMorePath),
                self._closure_count,
            )
        raise _Decline("path-shape")


def compile_where(graph, where: GroupGraphPattern, optimize: bool = True):
    """Lower a WHERE group onto the physical-operator pipeline.

    Returns ``(plan, None)`` on success or ``(None, reason)`` when the
    group holds a shape the operator set does not take (see the module
    docstring for the decline list).  The reason string is stable: the
    endpoint tallies fallbacks per reason.
    """
    backend = id_backend(graph)
    if backend is None:
        return None, "no-id-backend"
    dictionary, index = backend
    lowering = _Lowering(graph, dictionary, index, optimize)
    try:
        root = lowering.lower_group(where, set(), set())
    except _Decline as decline:
        return None, decline.reason
    plan = WherePlan(
        dictionary, index, lowering.slots, root, tuple(lowering.extra_terms),
        lowering.num_registers,
    )
    return plan, None


class WherePlan:
    """An executable operator pipeline for one WHERE group.

    Immutable after compilation; every execution owns its context
    (decode memo, path-frontier memo, filter schedules), so cached plans
    are thread-safe.
    """

    __slots__ = ("dictionary", "index", "slots", "root", "extra_terms",
                 "slot_items", "empty", "num_registers")

    def __init__(self, dictionary, index, slots, root: GroupPipeline, extra_terms,
                 num_registers: int | None = None):
        self.dictionary = dictionary
        self.index = index
        self.slots = slots
        self.root = root
        self.extra_terms = extra_terms
        self.slot_items = tuple(slots.items())
        self.empty = root.empty
        # Scratch registers (repeated variables) live past len(slots).
        self.num_registers = len(slots) if num_registers is None else num_registers

    @property
    def num_slots(self) -> int:
        return len(self.slots)

    def decode(self, term_id: int) -> Node:
        if term_id < 0:
            return self.extra_terms[-1 - term_id]
        return self.dictionary.decode(term_id)

    def _seed(self) -> list:
        return [None] * self.num_registers

    def solutions(self, deadline) -> list[Binding]:
        """Run the pipeline eagerly, stage by stage; decoded bindings out."""
        if self.empty:
            return []
        ctx = _ExecContext(self, deadline)
        rows: Iterable[list] = [self._seed()]
        for op in ctx.schedule(self.root, _EMPTY_MASK):
            rows = list(op.run(rows, ctx))
            if not rows:
                return []
        decode = ctx.decode
        slot_items = self.slot_items
        out: list[Binding] = []
        append = out.append
        for row in rows:
            binding: Binding = {}
            for variable, slot in slot_items:
                term_id = row[slot]
                if term_id is not None:
                    binding[variable] = decode(term_id)
            append(binding)
        return out

    def rows_stream(self, deadline):
        """Lazily chained raw-row iterator plus its execution context.

        Used by consumers that fold rows without materializing solutions
        (aggregation) or that stop at the first row (ASK).
        """
        ctx = _ExecContext(self, deadline)
        if self.empty:
            return iter(()), ctx
        ops = ctx.schedule(self.root, _EMPTY_MASK)
        return _run_pipeline(ops, iter((self._seed(),)), ctx), ctx

    def any(self, deadline) -> bool:
        """Whether the pipeline produces at least one row (lazy)."""
        rows, _ctx = self.rows_stream(deadline)
        for _row in rows:
            return True
        return False

    def __repr__(self) -> str:
        state = (
            "empty" if self.empty
            else f"group of {len(self.root.pattern_ops)} steps"
        )
        return f"<WherePlan {state}, {len(self.slots)} registers>"
