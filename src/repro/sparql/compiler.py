"""Compiled id-space execution of basic graph patterns.

The store dictionary-encodes every term into a dense integer id, but the
naive evaluator joins in *term space*: each pattern extension re-encodes
constants, decodes every matched id-triple back into RDF terms, and copies
``dict[Variable, Node]`` bindings.  This module lowers an ordered BGP into
a plan that stays in id space end to end.  (SELECT bodies are now served
by the richer operator pipeline in :mod:`repro.sparql.operators`; this
flat-step lowering remains the substrate of the batched ASK trie in
:mod:`repro.sparql.batch`.)

* **compile once** — constants are encoded into ids at compile time; a
  constant the dictionary has never seen short-circuits the whole BGP to
  the empty plan (no index is ever probed);
* **registers, not dicts** — every variable gets a dense register slot;
  intermediate solutions are flat lists of ints, extended by probing
  :class:`~repro.store.index.TripleIndex` directly;
* **decode at the boundary** — ids are translated back to RDF terms only
  when a filter needs to evaluate or when the final solutions are
  materialized, through a per-execution decode memo.

Plans depend on the dictionary's id assignment, so they are only valid for
the graph (and graph epoch) they were compiled against — the serving
layer caches them keyed by ``(patterns, bound variables, graph uid,
epoch)`` exactly like query results.
"""

from __future__ import annotations

from typing import Iterable

from ..rdf.terms import Node, Variable
from .ast import Filter, PropertyPath, TriplePattern
from .expressions import ExpressionError, effective_boolean_value, evaluate

__all__ = ["BGPPlan", "compile_bgp", "id_backend"]

Binding = dict[Variable, Node]

#: A step is ``(s_const, s_slot, p_const, p_slot, o_const, o_slot)``: for
#: each position exactly one of (const id, register slot) is set.
Step = tuple


def id_backend(graph):
    """The ``(term_dictionary, triple_index)`` behind ``graph``, if any.

    Single-member :class:`~repro.store.dataset.GraphView` wrappers are
    unwrapped; multi-graph unions have no shared id space and return None,
    as does any object that does not expose the id-level API.
    """
    unwrap = getattr(graph, "backing_graph", None)
    if unwrap is not None:
        graph = unwrap()
        if graph is None:
            return None
    dictionary = getattr(graph, "term_dictionary", None)
    index = getattr(graph, "triple_index", None)
    if dictionary is None or index is None:
        return None
    return dictionary, index


def compile_bgp(graph, patterns: list[TriplePattern]) -> "BGPPlan | None":
    """Lower an *ordered* BGP into a :class:`BGPPlan`.

    Returns None when the BGP cannot be compiled — the graph lacks an id
    backend or a predicate is a property path; both stay on the
    term-space interpreter.  A pattern repeating a variable
    (``?x <p> ?x``) compiles: the repeated occurrence binds a scratch
    register and the step's equality pair enforces the intra-pattern
    join.  Pattern order is preserved: run the join optimizer first.
    """
    backend = id_backend(graph)
    if backend is None or not patterns:
        return None
    dictionary, index = backend
    if any(isinstance(p.p, PropertyPath) for p in patterns):
        return None

    lookup = dictionary.lookup
    slots: dict[Variable, int] = {}
    num_registers = 0
    steps: list[Step] = []
    step_eqs: list[tuple] = []
    step_vars: list[frozenset[Variable]] = []
    for pattern in patterns:
        positions = []
        pattern_vars: set[Variable] = set()
        eqs = []
        for term in (pattern.s, pattern.p, pattern.o):
            if isinstance(term, Variable):
                if term in pattern_vars:
                    # Repeated occurrence: scratch register + eq check.
                    scratch = num_registers
                    num_registers += 1
                    eqs.append((slots[term], scratch))
                    positions.extend((None, scratch))
                    continue
                pattern_vars.add(term)
                slot = slots.get(term)
                if slot is None:
                    slot = num_registers
                    num_registers += 1
                    slots[term] = slot
                positions.extend((None, slot))
            else:
                term_id = lookup(term)
                if term_id is None:
                    # Unseen constant: nothing can ever match this BGP.
                    return BGPPlan(dictionary, index, {}, (), (), empty=True)
                positions.extend((term_id, None))
        steps.append(tuple(positions))
        step_eqs.append(tuple(eqs))
        step_vars.append(frozenset(pattern.variables()))
    return BGPPlan(
        dictionary, index, slots, tuple(steps), tuple(step_vars),
        step_eqs=tuple(step_eqs), num_registers=num_registers,
    )


class BGPPlan:
    """An executable id-space join plan for one ordered BGP.

    ``step_eqs`` parallels ``steps``: per step, the (canonical, scratch)
    register pairs that must agree after it runs — non-empty only for
    patterns repeating a variable.  Both registers are always bound once
    the step has run, so plain integer equality suffices.
    """

    __slots__ = ("dictionary", "index", "slots", "steps", "step_vars", "empty",
                 "step_eqs", "num_registers")

    def __init__(self, dictionary, index, slots, steps, step_vars, empty=False,
                 step_eqs=None, num_registers=None):
        self.dictionary = dictionary
        self.index = index
        self.slots = slots
        self.steps = steps
        self.step_vars = step_vars
        self.empty = empty
        self.step_eqs = (() if empty else ((),) * len(steps)) if step_eqs is None else step_eqs
        self.num_registers = len(slots) if num_registers is None else num_registers

    @property
    def num_slots(self) -> int:
        return len(self.slots)

    # -- execution ---------------------------------------------------------

    def run(
        self,
        solutions: list[Binding],
        filters: list[Filter],
        available: set[Variable],
        deadline,
    ) -> tuple[list[Binding], list[Filter]]:
        """Join all steps over ``solutions``; returns (solutions, leftover).

        ``filters`` are applied as soon as all their variables are bound
        (by ``available`` from the outer scope or by a completed step),
        mirroring the term-space evaluator's eager filter pushdown; the
        ones that never become ready are handed back to the caller.
        """
        if self.empty or not solutions:
            return [], list(filters)
        schedule, leftover = self._schedule(filters, available)
        memo: dict[int, Node] = {}
        rows = self._seed_rows(solutions)
        for step_index, step in enumerate(self.steps):
            rows = self._run_step(rows, step, deadline)
            eqs = self.step_eqs[step_index]
            if eqs and rows:
                rows = [r for r in rows if all(r[a] == r[b] for a, b in eqs)]
            ready = schedule.get(step_index)
            if ready and rows:
                rows = self._filter_rows(rows, ready, solutions, memo)
            if not rows:
                return [], leftover
        return self._materialize(rows, solutions, memo), leftover

    def stream(
        self,
        solutions: list[Binding],
        filters: list[Filter],
        available: set[Variable],
        deadline,
    ):
        """Like :meth:`run`, but yield raw register rows instead of bindings.

        Returns ``(row_iterator, leftover)``.  All steps but the last run
        eagerly (with the same filter scheduling as :meth:`run`); the final
        step — the one producing the full result fanout — is generated row
        by row, so a fused consumer (the aggregation pipeline) never holds
        the complete solution set, and no ``Binding`` dicts are built at
        all.  Rows carry a trailing source-binding index like
        :meth:`_seed_rows` documents.
        """
        if self.empty or not solutions:
            return iter(()), list(filters)
        schedule, leftover = self._schedule(filters, available)
        memo: dict[int, Node] = {}
        rows = self._seed_rows(solutions)
        last = len(self.steps) - 1
        for step_index in range(last):
            rows = self._run_step(rows, self.steps[step_index], deadline)
            eqs = self.step_eqs[step_index]
            if eqs and rows:
                rows = [r for r in rows if all(r[a] == r[b] for a, b in eqs)]
            ready = schedule.get(step_index)
            if ready and rows:
                rows = self._filter_rows(rows, ready, solutions, memo)
            if not rows:
                return iter(()), leftover
        stream = self._stream_step(
            rows, self.steps[last], schedule.get(last), solutions, memo, deadline
        )
        eqs = self.step_eqs[last]
        if eqs:
            stream = (
                r for r in stream if all(r[a] == r[b] for a, b in eqs)
            )
        return stream, leftover

    def _run_step(self, rows: list[list], step: Step, deadline) -> list[list]:
        """Extend every row through one join step (breadth-first)."""
        sc, ss, pc, ps, oc, os_ = step
        index = self.index
        scan_objects = index.scan_objects
        scan_subjects = index.scan_subjects
        scan_predicates = index.scan_predicates
        contains = index.contains
        match = index.match
        check = deadline.check
        out: list[list] = []
        append = out.append
        for row in rows:
            s = sc if ss is None else row[ss]
            p = pc if ps is None else row[ps]
            o = oc if os_ is None else row[os_]
            # The three ≥2-bound shapes go through the layout-agnostic
            # scan API (contiguous run slices on the columnar layout,
            # nested-map hops on the dict layout) and bind at most one
            # register, so the hot loop allocates one row copy per match
            # and nothing else.
            if s is not None and p is not None:
                if o is not None:
                    check()
                    if contains(s, p, o):
                        append(row)  # fully bound: row is unchanged
                    continue
                for oid in scan_objects(s, p):
                    check()
                    new = row.copy()
                    new[os_] = oid
                    append(new)
                continue
            if p is not None and o is not None:
                for sid in scan_subjects(p, o):
                    check()
                    new = row.copy()
                    new[ss] = sid
                    append(new)
                continue
            if s is not None and o is not None:
                for pid in scan_predicates(s, o):
                    check()
                    new = row.copy()
                    new[ps] = pid
                    append(new)
                continue
            # ≤1 position bound: fall back to the generic matcher.  A
            # wildcard position always has a register (constants are
            # never None), so every yielded id is simply written.
            for sid, pid, oid in match(s, p, o):
                check()
                new = row.copy()
                if s is None:
                    new[ss] = sid
                if p is None:
                    new[ps] = pid
                if o is None:
                    new[os_] = oid
                append(new)
        return out

    def _stream_step(
        self, rows: list[list], step: Step, ready, solutions, memo, deadline
    ):
        """Generator twin of :meth:`_run_step` for the final join step.

        ``ready`` filters (the ones scheduled on this step) are applied per
        row before it is yielded, so consumers only ever see rows that
        survive the full plan.
        """
        sc, ss, pc, ps, oc, os_ = step
        index = self.index
        scan_objects = index.scan_objects
        scan_subjects = index.scan_subjects
        scan_predicates = index.scan_predicates
        contains = index.contains
        match = index.match
        check = deadline.check
        passes = self._row_passes
        for row in rows:
            s = sc if ss is None else row[ss]
            p = pc if ps is None else row[ps]
            o = oc if os_ is None else row[os_]
            if s is not None and p is not None:
                if o is not None:
                    check()
                    if contains(s, p, o) and (
                        not ready or passes(row, ready, solutions[row[-1]], memo)
                    ):
                        yield row
                    continue
                for oid in scan_objects(s, p):
                    check()
                    new = row.copy()
                    new[os_] = oid
                    if not ready or passes(new, ready, solutions[new[-1]], memo):
                        yield new
                continue
            if p is not None and o is not None:
                for sid in scan_subjects(p, o):
                    check()
                    new = row.copy()
                    new[ss] = sid
                    if not ready or passes(new, ready, solutions[new[-1]], memo):
                        yield new
                continue
            if s is not None and o is not None:
                for pid in scan_predicates(s, o):
                    check()
                    new = row.copy()
                    new[ps] = pid
                    if not ready or passes(new, ready, solutions[new[-1]], memo):
                        yield new
                continue
            for sid, pid, oid in match(s, p, o):
                check()
                new = row.copy()
                if s is None:
                    new[ss] = sid
                if p is None:
                    new[ps] = pid
                if o is None:
                    new[os_] = oid
                if not ready or passes(new, ready, solutions[new[-1]], memo):
                    yield new

    def exists(
        self,
        solutions: list[Binding],
        filters: list[Filter],
        available: set[Variable],
        deadline,
    ) -> bool:
        """Depth-first existence check: True at the first full solution."""
        if self.empty:
            return False
        schedule, leftover = self._schedule(filters, available)
        if leftover:
            # Filters that never become ready error on evaluation and
            # remove the row, per SPARQL — so no solution can survive.
            last = len(self.steps) - 1
            schedule[last] = schedule.get(last, []) + leftover
        memo: dict[int, Node] = {}
        steps = self.steps
        step_eqs = self.step_eqs
        match = self.index.match
        check = deadline.check
        depth_filters = [schedule.get(i) for i in range(len(steps))]

        def search(depth: int, row: list, source: Binding) -> bool:
            if depth == len(steps):
                return True
            sc, ss, pc, ps, oc, os_ = steps[depth]
            s = sc if ss is None else row[ss]
            p = pc if ps is None else row[ps]
            o = oc if os_ is None else row[os_]
            ready = depth_filters[depth]
            eqs = step_eqs[depth]
            for sid, pid, oid in match(s, p, o):
                check()
                new = row.copy()
                if s is None:
                    new[ss] = sid
                if p is None:
                    new[ps] = pid
                if o is None:
                    new[os_] = oid
                if eqs and not all(new[a] == new[b] for a, b in eqs):
                    continue
                if ready and not self._row_passes(new, ready, source, memo):
                    continue
                if search(depth + 1, new, source):
                    return True
            return False

        for source in solutions:
            row = self._seed_row(source)
            if row is not None and search(0, row, source):
                return True
        return False

    # -- helpers -----------------------------------------------------------

    def _schedule(
        self, filters: Iterable[Filter], available: set[Variable]
    ) -> tuple[dict[int, list[Filter]], list[Filter]]:
        """Assign each filter to the first step after which it is ready."""
        pending = list(filters)
        if not pending:
            return {}, []
        schedule: dict[int, list[Filter]] = {}
        bound = set(available)
        for index, step_vars in enumerate(self.step_vars):
            bound |= step_vars
            ready = [f for f in pending if f.expression.variables() <= bound]
            if ready:
                schedule[index] = ready
                pending = [f for f in pending if f not in ready]
                if not pending:
                    break
        return schedule, pending

    def _seed_row(self, binding: Binding) -> list | None:
        """An initial register file for one outer binding.

        Pre-bound variables are encoded once; a pre-bound term the
        dictionary has never seen can match nothing, so the whole row is
        dropped (returns None).  Unbound registers hold None and act as
        wildcards until a step writes them.
        """
        row = [None] * self.num_registers
        lookup = self.dictionary.lookup
        if binding:
            for variable, slot in self.slots.items():
                term = binding.get(variable)
                if term is not None:
                    term_id = lookup(term)
                    if term_id is None:
                        return None
                    row[slot] = term_id
        return row

    def _seed_rows(self, solutions: list[Binding]) -> list[list]:
        rows = []
        for index, binding in enumerate(solutions):
            row = self._seed_row(binding)
            if row is not None:
                row.append(index)  # trailing element: source-binding index
                rows.append(row)
        return rows

    def _decode(self, term_id: int, memo: dict[int, Node]) -> Node:
        term = memo.get(term_id)
        if term is None:
            term = self.dictionary.decode(term_id)
            memo[term_id] = term
        return term

    def _row_binding(self, row: list, source: Binding, memo: dict[int, Node]) -> Binding:
        binding = dict(source)
        for variable, slot in self.slots.items():
            term_id = row[slot]
            if term_id is not None:
                binding[variable] = self._decode(term_id, memo)
        return binding

    def _filter_rows(
        self, rows: list[list], ready: list[Filter],
        solutions: list[Binding], memo: dict[int, Node],
    ) -> list[list]:
        kept = []
        for row in rows:
            if self._row_passes(row, ready, solutions[row[-1]], memo):
                kept.append(row)
        return kept

    def _row_passes(
        self, row: list, ready: list[Filter], source: Binding, memo: dict[int, Node]
    ) -> bool:
        binding = self._row_binding(row, source, memo)
        for constraint in ready:
            try:
                if not effective_boolean_value(evaluate(constraint.expression, binding)):
                    return False
            except ExpressionError:
                return False  # SPARQL: an erroring filter removes the row.
        return True

    def _materialize(
        self, rows: list[list], solutions: list[Binding], memo: dict[int, Node]
    ) -> list[Binding]:
        """Decode final register files back into term-space bindings."""
        results = []
        append = results.append
        slot_items = tuple(self.slots.items())
        decode = self.dictionary.decode
        memo_get = memo.get
        for row in rows:
            source = solutions[row[-1]]
            binding = dict(source) if source else {}
            for variable, slot in slot_items:
                term_id = row[slot]
                if term_id is not None:
                    term = memo_get(term_id)
                    if term is None:
                        term = decode(term_id)
                        memo[term_id] = term
                    binding[variable] = term
            append(binding)
        return results

    def __repr__(self) -> str:
        state = "empty" if self.empty else f"{len(self.steps)} steps"
        return f"<BGPPlan {state}, {len(self.slots)} registers>"
