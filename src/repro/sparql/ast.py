"""Abstract syntax tree for the SPARQL subset.

Nodes are small frozen dataclasses.  Every node knows how to render itself
back to SPARQL surface syntax via ``to_sparql()``, which is what makes the
programmatic query builder (used by REOLAP's GetQuery) and the parser
round-trip: a generated query can be serialized, re-parsed, and evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from ..rdf.terms import IRI, BNode, Literal, Term, Variable

__all__ = [
    "PropertyPath",
    "SequencePath",
    "InversePath",
    "AlternativePath",
    "OneOrMorePath",
    "ZeroOrMorePath",
    "TriplePattern",
    "BindClause",
    "ExistsFilter",
    "MinusPattern",
    "SubSelect",
    "Expression",
    "TermExpr",
    "Comparison",
    "Arithmetic",
    "BoolOp",
    "NotExpr",
    "FunctionCall",
    "InExpr",
    "Aggregate",
    "Projection",
    "Filter",
    "ValuesClause",
    "OptionalPattern",
    "UnionPattern",
    "GroupGraphPattern",
    "OrderCondition",
    "SelectQuery",
    "AskQuery",
    "ConstructQuery",
    "Query",
]


# --------------------------------------------------------------------------
# Property paths
# --------------------------------------------------------------------------


class PropertyPath:
    """Base class for property path expressions in predicate position."""

    def to_sparql(self) -> str:
        raise NotImplementedError

    def iris(self) -> list[IRI]:
        """All IRIs mentioned anywhere in the path."""
        raise NotImplementedError


@dataclass(frozen=True)
class SequencePath(PropertyPath):
    """``p1 / p2 / ...`` — a chain of steps."""

    steps: tuple[Union[IRI, PropertyPath], ...]

    def __post_init__(self):
        if len(self.steps) < 2:
            raise ValueError("SequencePath requires at least two steps")

    def to_sparql(self) -> str:
        return " / ".join(_path_step_sparql(step) for step in self.steps)

    def iris(self) -> list[IRI]:
        result: list[IRI] = []
        for step in self.steps:
            result.extend([step] if isinstance(step, IRI) else step.iris())
        return result


@dataclass(frozen=True)
class InversePath(PropertyPath):
    """``^p`` — traverse the predicate from object to subject."""

    step: Union[IRI, PropertyPath]

    def to_sparql(self) -> str:
        return "^" + _path_step_sparql(self.step)

    def iris(self) -> list[IRI]:
        return [self.step] if isinstance(self.step, IRI) else self.step.iris()


@dataclass(frozen=True)
class AlternativePath(PropertyPath):
    """``p1 | p2`` — match either branch."""

    options: tuple[Union[IRI, PropertyPath], ...]

    def __post_init__(self):
        if len(self.options) < 2:
            raise ValueError("AlternativePath requires at least two options")

    def to_sparql(self) -> str:
        return "(" + " | ".join(_path_step_sparql(o) for o in self.options) + ")"

    def iris(self) -> list[IRI]:
        result: list[IRI] = []
        for option in self.options:
            result.extend([option] if isinstance(option, IRI) else option.iris())
        return result


@dataclass(frozen=True)
class OneOrMorePath(PropertyPath):
    """``p+`` — one or more repetitions (transitive closure)."""

    step: Union[IRI, PropertyPath]

    def to_sparql(self) -> str:
        return _path_step_sparql(self.step) + "+"

    def iris(self) -> list[IRI]:
        return [self.step] if isinstance(self.step, IRI) else self.step.iris()


@dataclass(frozen=True)
class ZeroOrMorePath(PropertyPath):
    """``p*`` — zero or more repetitions (reflexive-transitive closure)."""

    step: Union[IRI, PropertyPath]

    def to_sparql(self) -> str:
        return _path_step_sparql(self.step) + "*"

    def iris(self) -> list[IRI]:
        return [self.step] if isinstance(self.step, IRI) else self.step.iris()


def _path_step_sparql(step: Union[IRI, PropertyPath]) -> str:
    if isinstance(step, IRI):
        return step.n3()
    rendered = step.to_sparql()
    if isinstance(step, SequencePath):
        return f"({rendered})"
    return rendered


# --------------------------------------------------------------------------
# Triple patterns
# --------------------------------------------------------------------------

PatternTerm = Union[IRI, BNode, Literal, Variable]
Predicate = Union[IRI, Variable, PropertyPath]


@dataclass(frozen=True)
class TriplePattern:
    """A single ``s p o`` pattern; ``p`` may be a property path."""

    s: PatternTerm
    p: Predicate
    o: PatternTerm

    def to_sparql(self) -> str:
        p_text = self.p.to_sparql() if isinstance(self.p, PropertyPath) else self.p.n3()
        return f"{self.s.n3()} {p_text} {self.o.n3()} ."

    def variables(self) -> set[Variable]:
        result = {t for t in (self.s, self.o) if isinstance(t, Variable)}
        if isinstance(self.p, Variable):
            result.add(self.p)
        return result


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expression:
    """Base class for filter / projection expressions."""

    def to_sparql(self) -> str:
        raise NotImplementedError

    def variables(self) -> set[Variable]:
        raise NotImplementedError


@dataclass(frozen=True)
class TermExpr(Expression):
    """A constant term or a variable used as an expression."""

    term: Term

    def to_sparql(self) -> str:
        return self.term.n3()

    def variables(self) -> set[Variable]:
        return {self.term} if isinstance(self.term, Variable) else set()


@dataclass(frozen=True)
class Comparison(Expression):
    """``left OP right`` with OP in =, !=, <, <=, >, >=."""

    op: str
    left: Expression
    right: Expression

    _OPS = ("=", "!=", "<", "<=", ">", ">=")

    def __post_init__(self):
        if self.op not in self._OPS:
            raise ValueError(f"invalid comparison operator {self.op!r}")

    def to_sparql(self) -> str:
        return f"({self.left.to_sparql()} {self.op} {self.right.to_sparql()})"

    def variables(self) -> set[Variable]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class Arithmetic(Expression):
    """``left OP right`` with OP in +, -, *, /."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self):
        if self.op not in ("+", "-", "*", "/"):
            raise ValueError(f"invalid arithmetic operator {self.op!r}")

    def to_sparql(self) -> str:
        return f"({self.left.to_sparql()} {self.op} {self.right.to_sparql()})"

    def variables(self) -> set[Variable]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class BoolOp(Expression):
    """``&&`` / ``||`` over two or more operands."""

    op: str
    operands: tuple[Expression, ...]

    def __post_init__(self):
        if self.op not in ("&&", "||"):
            raise ValueError(f"invalid boolean operator {self.op!r}")
        if len(self.operands) < 2:
            raise ValueError("BoolOp requires at least two operands")

    def to_sparql(self) -> str:
        return "(" + f" {self.op} ".join(o.to_sparql() for o in self.operands) + ")"

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for operand in self.operands:
            result |= operand.variables()
        return result


@dataclass(frozen=True)
class NotExpr(Expression):
    """Logical negation ``!expr``."""

    operand: Expression

    def to_sparql(self) -> str:
        return f"(! {self.operand.to_sparql()})"

    def variables(self) -> set[Variable]:
        return self.operand.variables()


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A built-in call such as ``REGEX(?x, "pat")`` or ``isLiteral(?x)``."""

    name: str
    args: tuple[Expression, ...]

    def to_sparql(self) -> str:
        return f"{self.name}(" + ", ".join(a.to_sparql() for a in self.args) + ")"

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for arg in self.args:
            result |= arg.variables()
        return result


@dataclass(frozen=True)
class InExpr(Expression):
    """``expr IN (a, b, ...)`` or its NOT IN negation."""

    operand: Expression
    options: tuple[Expression, ...]
    negated: bool = False

    def to_sparql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        options = ", ".join(o.to_sparql() for o in self.options)
        return f"({self.operand.to_sparql()} {keyword} ({options}))"

    def variables(self) -> set[Variable]:
        result = self.operand.variables()
        for option in self.options:
            result |= option.variables()
        return result


@dataclass(frozen=True)
class Aggregate(Expression):
    """An aggregate such as ``SUM(?v)`` or ``COUNT(*)`` (arg ``None``)."""

    func: str
    arg: Expression | None
    distinct: bool = False

    _FUNCS = ("COUNT", "SUM", "MIN", "MAX", "AVG", "SAMPLE", "GROUP_CONCAT")

    def __post_init__(self):
        func = self.func.upper()
        if func not in self._FUNCS:
            raise ValueError(f"unsupported aggregate {self.func!r}")
        object.__setattr__(self, "func", func)
        if self.arg is None and func != "COUNT":
            raise ValueError(f"{func} requires an argument expression")

    def to_sparql(self) -> str:
        inner = "*" if self.arg is None else self.arg.to_sparql()
        if self.distinct:
            inner = "DISTINCT " + inner
        return f"{self.func}({inner})"

    def variables(self) -> set[Variable]:
        return set() if self.arg is None else self.arg.variables()


# --------------------------------------------------------------------------
# Graph patterns
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Filter:
    """A FILTER constraint inside a group graph pattern."""

    expression: Expression

    def to_sparql(self) -> str:
        return f"FILTER {self.expression.to_sparql()}"


@dataclass(frozen=True)
class ValuesClause:
    """Inline data: ``VALUES (?a ?b) { (x y) (z UNDEF) }``.

    ``None`` inside a row stands for UNDEF (leaves the variable unbound).
    """

    variables_: tuple[Variable, ...]
    rows: tuple[tuple[Term | None, ...], ...]

    def __post_init__(self):
        for row in self.rows:
            if len(row) != len(self.variables_):
                raise ValueError("VALUES row width does not match variable list")

    def to_sparql(self) -> str:
        vars_text = " ".join(v.n3() for v in self.variables_)
        rows_text = " ".join(
            "(" + " ".join("UNDEF" if t is None else t.n3() for t in row) + ")"
            for row in self.rows
        )
        return f"VALUES ({vars_text}) {{ {rows_text} }}"


@dataclass(frozen=True)
class BindClause:
    """``BIND(expr AS ?var)`` — compute a new binding per solution."""

    expression: Expression
    variable: Variable

    def to_sparql(self) -> str:
        return f"BIND({self.expression.to_sparql()} AS {self.variable.n3()})"


@dataclass(frozen=True)
class ExistsFilter:
    """``FILTER [NOT] EXISTS { ... }`` — pattern-existence constraint."""

    pattern: "GroupGraphPattern"
    negated: bool = False

    def to_sparql(self) -> str:
        keyword = "FILTER NOT EXISTS " if self.negated else "FILTER EXISTS "
        return keyword + self.pattern.to_sparql()


@dataclass(frozen=True)
class MinusPattern:
    """``MINUS { ... }`` — remove solutions compatible with the pattern."""

    pattern: "GroupGraphPattern"

    def to_sparql(self) -> str:
        return "MINUS " + self.pattern.to_sparql()


@dataclass(frozen=True)
class SubSelect:
    """``{ SELECT ... }`` — a subquery evaluated independently and joined.

    Per SPARQL semantics, subqueries are evaluated bottom-up: the inner
    SELECT runs against the whole graph and its solutions join with the
    enclosing group on shared projected variables.
    """

    query: "SelectQuery"

    def to_sparql(self) -> str:
        inner = "\n".join("  " + line for line in self.query.to_sparql().splitlines())
        return "{\n" + inner + "\n}"


@dataclass(frozen=True)
class OptionalPattern:
    """``OPTIONAL { ... }`` — a left join with the enclosing pattern."""

    pattern: "GroupGraphPattern"

    def to_sparql(self) -> str:
        return "OPTIONAL " + self.pattern.to_sparql()


@dataclass(frozen=True)
class UnionPattern:
    """``{ ... } UNION { ... }`` over two or more branches."""

    branches: tuple["GroupGraphPattern", ...]

    def __post_init__(self):
        if len(self.branches) < 2:
            raise ValueError("UnionPattern requires at least two branches")

    def to_sparql(self) -> str:
        return " UNION ".join(b.to_sparql() for b in self.branches)


GroupElement = Union[
    TriplePattern, Filter, ValuesClause, OptionalPattern, UnionPattern,
    BindClause, ExistsFilter, MinusPattern, SubSelect,
]


@dataclass(frozen=True)
class GroupGraphPattern:
    """The body of a WHERE clause: an ordered list of group elements."""

    elements: tuple[GroupElement, ...] = ()

    def to_sparql(self, indent: str = "  ") -> str:
        if not self.elements:
            return "{ }"
        lines = [indent + e.to_sparql() for e in self.elements]
        return "{\n" + "\n".join(lines) + "\n}"

    def triple_patterns(self) -> list[TriplePattern]:
        return [e for e in self.elements if isinstance(e, TriplePattern)]

    def filters(self) -> list[Filter]:
        return [e for e in self.elements if isinstance(e, Filter)]

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for element in self.elements:
            if isinstance(element, TriplePattern):
                result |= element.variables()
            elif isinstance(element, Filter):
                result |= element.expression.variables()
            elif isinstance(element, ValuesClause):
                result |= set(element.variables_)
            elif isinstance(element, OptionalPattern):
                result |= element.pattern.variables()
            elif isinstance(element, UnionPattern):
                for branch in element.branches:
                    result |= branch.variables()
            elif isinstance(element, BindClause):
                result.add(element.variable)
                result |= element.expression.variables()
            elif isinstance(element, SubSelect):
                result |= set(element.query.output_variables())
            # ExistsFilter / MinusPattern variables are scoped to their own
            # group and do not join the enclosing pattern.
        return result


# --------------------------------------------------------------------------
# Queries
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Projection:
    """One SELECT item: a bare variable or ``(expr AS ?alias)``."""

    expression: Expression
    alias: Variable | None = None

    @property
    def variable(self) -> Variable:
        """The output variable this projection binds."""
        if self.alias is not None:
            return self.alias
        if isinstance(self.expression, TermExpr) and isinstance(self.expression.term, Variable):
            return self.expression.term
        raise ValueError("non-variable projection requires an AS alias")

    @property
    def is_aggregate(self) -> bool:
        return _contains_aggregate(self.expression)

    def to_sparql(self) -> str:
        if self.alias is None:
            return self.expression.to_sparql()
        return f"({self.expression.to_sparql()} AS {self.alias.n3()})"


def _contains_aggregate(expression: Expression) -> bool:
    if isinstance(expression, Aggregate):
        return True
    if isinstance(expression, (Comparison, Arithmetic)):
        return _contains_aggregate(expression.left) or _contains_aggregate(expression.right)
    if isinstance(expression, BoolOp):
        return any(_contains_aggregate(o) for o in expression.operands)
    if isinstance(expression, NotExpr):
        return _contains_aggregate(expression.operand)
    if isinstance(expression, FunctionCall):
        return any(_contains_aggregate(a) for a in expression.args)
    if isinstance(expression, InExpr):
        return _contains_aggregate(expression.operand) or any(
            _contains_aggregate(o) for o in expression.options
        )
    return False


@dataclass(frozen=True)
class OrderCondition:
    """One ORDER BY key with direction."""

    expression: Expression
    ascending: bool = True

    def to_sparql(self) -> str:
        rendered = self.expression.to_sparql()
        if isinstance(self.expression, TermExpr) and not self.ascending:
            return f"DESC({rendered})"
        if not self.ascending:
            return f"DESC({rendered})"
        return rendered


@dataclass(frozen=True)
class SelectQuery:
    """A ``SELECT ... WHERE ... [GROUP BY ... HAVING ... ORDER BY ...]``."""

    projections: tuple[Projection, ...]
    where: GroupGraphPattern
    distinct: bool = False
    group_by: tuple[Variable, ...] = ()
    having: tuple[Expression, ...] = ()
    order_by: tuple[OrderCondition, ...] = ()
    limit: int | None = None
    offset: int | None = None
    select_all: bool = False

    def __post_init__(self):
        if not self.select_all and not self.projections:
            raise ValueError("SELECT requires projections or *")

    @property
    def is_aggregate_query(self) -> bool:
        return bool(self.group_by) or any(p.is_aggregate for p in self.projections)

    def output_variables(self) -> list[Variable]:
        if self.select_all:
            return sorted(self.where.variables(), key=lambda v: v.name)
        return [p.variable for p in self.projections]

    def to_sparql(self) -> str:
        head = "SELECT "
        if self.distinct:
            head += "DISTINCT "
        head += "*" if self.select_all else " ".join(p.to_sparql() for p in self.projections)
        parts = [head, "WHERE " + self.where.to_sparql()]
        if self.group_by:
            parts.append("GROUP BY " + " ".join(v.n3() for v in self.group_by))
        if self.having:
            parts.append("HAVING " + " ".join(f"({h.to_sparql()})" for h in self.having))
        if self.order_by:
            parts.append("ORDER BY " + " ".join(o.to_sparql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return "\n".join(parts)


@dataclass(frozen=True)
class AskQuery:
    """An ``ASK WHERE { ... }`` existence test."""

    where: GroupGraphPattern

    def to_sparql(self) -> str:
        return "ASK " + self.where.to_sparql()


@dataclass(frozen=True)
class ConstructQuery:
    """``CONSTRUCT { template } WHERE { ... }`` — build a graph from matches.

    The template holds plain triple patterns (no paths); each solution of
    the WHERE clause instantiates it, skipping triples left incomplete by
    unbound variables (per the SPARQL spec).
    """

    template: tuple[TriplePattern, ...]
    where: GroupGraphPattern
    limit: int | None = None

    def __post_init__(self):
        for pattern in self.template:
            if isinstance(pattern.p, PropertyPath):
                raise ValueError("CONSTRUCT templates cannot contain property paths")

    def to_sparql(self) -> str:
        body = "\n".join("  " + p.to_sparql() for p in self.template)
        text = "CONSTRUCT {\n" + body + "\n}\nWHERE " + self.where.to_sparql()
        if self.limit is not None:
            text += f"\nLIMIT {self.limit}"
        return text


Query = Union[SelectQuery, AskQuery, ConstructQuery]
